#!/usr/bin/env bash
# Offline CI: build, test, lint. No network access required — all external
# dependencies are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== test =="
cargo test -q

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
