#!/usr/bin/env bash
# Offline CI: build, test, lint. No network access required — all external
# dependencies are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== test =="
cargo test -q

echo "== crash matrix (sealed WAL, crash injection, recovery; >=8 seeds) =="
cargo test -q --test crash_recovery

echo "== failover chaos matrix (replicated VM, node loss, oracle divergence; >=10 seeds) =="
cargo test -q --test replication

echo "== store replay properties (idempotence, prefix consistency, torn tails) =="
cargo test -q --test store_props

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --exclude rand \
  --exclude proptest --exclude criterion --exclude crossbeam --exclude parking_lot -q

echo "== api hygiene: no positional 'now: u64' params in core =="
# The manager/remote/lifecycle API injects time via SimClock; the *_at shim
# pairs are gone and no new explicit-time entry point may appear.
violations=$(awk '
  /fn [a-z_0-9]+/ {
    name = $0; sub(/\(.*/, "", name); sub(/.*fn /, "", name)
    is_pub = ($0 ~ /pub fn/)
  }
  /now: u64/ {
    if (is_pub) print FILENAME ":" FNR ": fn " name
  }
' crates/core/src/*.rs)
if [ -n "$violations" ]; then
  echo "found pub fns taking a positional 'now: u64' (inject the SimClock instead):"
  echo "$violations"
  exit 1
fi

echo "== shard hygiene: no shard lock held across a network call =="
# The VmService contract: one shard lock per manager call, never around
# network I/O. Two sides of the gate:
#  - service.rs (where the shard locks live) must never reach the fabric;
#  - the /vm/ route handlers in serve_vm_api must not take any lock other
#    than the IAS handle — shard locking happens inside VmService methods.
violations=$(grep -n -e 'HttpClient' -e 'connect(' -e 'Network' crates/core/src/service.rs || true)
if [ -n "$violations" ]; then
  echo "core/src/service.rs touches the network fabric under shard locks:"
  echo "$violations"
  exit 1
fi
violations=$(awk '
  /^pub fn serve_vm_api/ { in_region = 1 }
  in_region && /^(pub )?fn / && $0 !~ /serve_vm_api/ { in_region = 0 }
  in_region && /\.lock\(\)/ && $0 !~ /ias\.lock\(\)/ {
    print "crates/core/src/remote.rs:" FNR ": " $0
  }
' crates/core/src/remote.rs)
if [ -n "$violations" ]; then
  echo "found /vm/ route handlers taking a non-IAS lock (shard locks belong inside VmService):"
  echo "$violations"
  exit 1
fi

echo "== deadline hygiene: /vm/ routes must honor request deadlines or opt out =="
# Every /vm/ route registration in serve_vm_api must install the request's
# propagated deadline budget (enter_deadline) or carry an explicit
# 'deadline-opt-out' comment explaining why it stays exempt (diagnostics
# endpoints that must remain readable under overload). Keeps new routes
# from silently ignoring caller budgets.
violations=$(awk '
  /^pub fn serve_vm_api/ { in_region = 1 }
  in_region && /^(pub )?fn / && $0 !~ /serve_vm_api/ { in_region = 0; flush() }
  function flush() {
    if (route != "" && body !~ /enter_deadline|deadline-opt-out/)
      print "crates/core/src/remote.rs: route " route " neither enters the deadline scope nor opts out"
    route = ""; body = ""
  }
  in_region && /router\.(get|post|delete)_api\("\/vm\// {
    flush()
    route = $0; sub(/.*_api\("/, "", route); sub(/".*/, "", route)
  }
  in_region { body = body "\n" $0 }
  END { flush() }
' crates/core/src/remote.rs)
if [ -n "$violations" ]; then
  echo "found /vm/ routes ignoring the x-vnfguard-deadline budget:"
  echo "$violations"
  exit 1
fi

echo "== wal hygiene: manager mutations must journal before mutating =="
# WAL-before-response: any pub fn in the manager that issues/revokes through
# the CA or touches the enrollment maps must have a journal call in its body
# (WalRecord append). Keeps new workflow endpoints from bypassing the WAL.
violations=$(awk '
  function flush() {
    if (is_pub && body ~ /\.ca\.(issue|revoke|issue_crl|rotate_to)\(|enrollments\.(insert|remove)\(/ \
        && body !~ /journal/)
      print "crates/core/src/manager.rs: pub fn " name " mutates authority state without a WAL append"
    body = ""; is_pub = 0; name = ""
  }
  /^    (pub )?fn [a-z_0-9]+/ {
    flush()
    name = $0; sub(/\(.*/, "", name); sub(/.*fn /, "", name)
    is_pub = ($0 ~ /pub fn/)
  }
  { body = body "\n" $0 }
  END { flush() }
' crates/core/src/manager.rs)
if [ -n "$violations" ]; then
  echo "found manager entry points bypassing the write-ahead log:"
  echo "$violations"
  exit 1
fi

echo "== trace hygiene: REST surfaces must propagate trace context or opt out =="
# Every library file that builds a Router or an HTTP client must either
# thread the distributed-trace context (instrument_traces / with_trace /
# trace_context / traceparent) or carry an explicit 'trace-opt-out' marker
# explaining why it stays untraced. Keeps new routes and clients from
# silently breaking trace propagation.
violations=""
for f in $(grep -rl --include='*.rs' -e 'Router::new()' -e 'HttpClient::new(' crates/*/src src 2>/dev/null || true); do
  if ! grep -q -e 'instrument_traces' -e 'with_trace' -e 'trace_context' \
       -e 'traceparent' -e 'trace-opt-out' "$f"; then
    violations="$violations$f
"
  fi
done
if [ -n "$violations" ]; then
  echo "found REST surfaces that neither propagate trace context nor opt out:"
  echo "$violations"
  exit 1
fi

echo "== metric hygiene: exported series must carry their crate's namespace =="
# Every metric literal registered in a library crate (.counter("...") /
# .gauge("...") / .histogram("...")) must be prefixed vnfguard_<crate>_ so
# fleet-level scrapes stay collision-free, or sit within eight lines after a
# 'metric-name-opt-out' comment explaining the shared namespace.
# Test modules are exempt (throwaway series names).
violations=""
for dir in crates/*/src; do
  crate=$(basename "$(dirname "$dir")")
  for f in "$dir"/*.rs; do
    [ -f "$f" ] || continue
    found=$(awk -v prefix="vnfguard_${crate}_" -v file="$f" '
      /^mod tests|^#\[cfg\(test\)\]/ { in_tests = 1 }
      in_tests { next }
      {
        if (index($0, "metric-name-opt-out") != 0) allow = NR + 8
        if (match($0, /\.(counter|gauge|histogram)\((&format!\()?"[a-z_{]+/)) {
          name = substr($0, RSTART, RLENGTH)
          sub(/.*"/, "", name)
          if (index(name, prefix) != 1 && NR > allow)
            print file ":" NR ": series \"" name "...\" lacks prefix " prefix
        }
      }
    ' "$f")
    if [ -n "$found" ]; then
      violations="$violations$found
"
    fi
  done
done
if [ -n "$violations" ]; then
  echo "found exported metrics outside their crate namespace:"
  echo "$violations"
  exit 1
fi

echo "== backend hygiene: core appraises through vnfguard-attest, not raw SGX/IAS =="
# The AttestationBackend seam: relying-party code in vnfguard-core must not
# name vnfguard_sgx:: / vnfguard_ias:: types directly. The adapter module
# (backend.rs) is the one sanctioned home; any other reference needs a
# 'backend-opt-out' rationale within the 8 preceding lines (agent-side
# platform plumbing, IAS transport, testbed assembly). Test modules are
# exempt (they build fixtures, not appraisal paths).
violations=""
for f in crates/core/src/*.rs; do
  [ "$f" = "crates/core/src/backend.rs" ] && continue
  found=$(awk -v file="$f" '
    /^mod tests|^#\[cfg\(test\)\]/ { in_tests = 1 }
    in_tests { next }
    {
      if (index($0, "backend-opt-out") != 0) allow = NR + 8
      if ($0 ~ /vnfguard_(sgx|ias)::/ && NR > allow)
        print file ":" NR ": " $0
    }
  ' "$f")
  if [ -n "$found" ]; then
    violations="$violations$found
"
  fi
done
if [ -n "$violations" ]; then
  echo "found raw SGX/IAS references outside the backend adapter (route through vnfguard-attest or add a backend-opt-out rationale):"
  echo "$violations"
  exit 1
fi

echo "== attest refusal properties (forged/stale/truncated/cross-backend evidence) =="
cargo test -q --test attest_props

echo "== e12: tracing overhead bar (<=5% vs disabled telemetry) =="
cargo bench -p vnfguard-bench --bench e12_tracing

echo "== e13: lifecycle (renewal vs enrollment, rotation, CRL lookup) =="
cargo bench -p vnfguard-bench --bench e13_lifecycle

echo "== e14: failover time + replication overhead bar (<=10% vs unreplicated) =="
cargo bench -p vnfguard-bench --bench e14_failover

echo "== e15: shard saturation (4-shard >= 2x 1-shard) + crash-under-load matrix =="
cargo bench -p vnfguard-bench --bench e15_saturation

echo "== e16: overload (admitted p99 <= 5x unloaded, goodput >= 60% while shedding) + storm chaos matrix =="
cargo bench -p vnfguard-bench --bench e16_overload

echo "== e17: health plane (overhead <=5%, burn-rate alert fires in-window, exemplar resolvable, partition staleness) =="
cargo bench -p vnfguard-bench --bench e17_health

echo "== e18: attestation backends (SNP offline <= SGX/IAS remote, zero forged/cross-backend acceptances over >=10 seeds) =="
cargo bench -p vnfguard-bench --bench e18_backends

echo "CI OK"
