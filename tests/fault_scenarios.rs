//! Chaos scenarios: the attestation/enrollment pipeline under injected
//! network faults.
//!
//! Each scenario assembles the distributed deployment (Verification
//! Manager, remote IAS, host agent on the fabric), installs a seeded
//! [`FaultPlan`], and asserts the resilience contract:
//!
//! - transient IAS refusals are absorbed by retries;
//! - a hard IAS partition opens the circuit breaker, degraded verdicts
//!   are policy-gated and audit-logged, and credential issuance fails
//!   closed;
//! - a connection cut mid-provisioning leaves zero half-provisioned
//!   enclaves (prepare → commit with rollback);
//! - revocation notices to an unreachable host queue and drain on heal;
//! - the same fault-plan seed replays the same failure sequence.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::core::remote::{
    remote_attest_host, remote_enroll_vnf, serve_ias, HostAgent, HostAgentState, RemoteIas,
};
use vnfguard::core::resilience::{BreakerState, CircuitBreaker, RetryPolicy};
use vnfguard::core::revocation::{revocation_message, RevocationNotifier};
use vnfguard::core::CoreError;
use vnfguard::net::{FaultEvent, FaultPlan, NetError};

/// The distributed deployment under test: testbed + remote IAS + one host
/// agent, with a fault plan installed on the shared fabric.
struct ChaosWorld {
    testbed: vnfguard::core::deployment::Testbed,
    agent: HostAgent,
    remote_ias: RemoteIas,
    plan: FaultPlan,
    _ias_handle: vnfguard::net::server::ServerHandle,
}

fn chaos_world(
    seed: &[u8],
    plan_seed: u64,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
) -> ChaosWorld {
    chaos_world_with(seed, plan_seed, retry, breaker, |b| b)
}

fn chaos_world_with(
    seed: &[u8],
    plan_seed: u64,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
    configure: impl FnOnce(TestbedBuilder) -> TestbedBuilder,
) -> ChaosWorld {
    let mut testbed = configure(TestbedBuilder::new(seed)).build();
    let plan = FaultPlan::seeded(plan_seed);
    testbed.network.install_faults(&plan);

    // IAS onto the fabric; the client handle shares the deployment clock.
    let ias = std::mem::replace(
        &mut testbed.ias,
        vnfguard::ias::AttestationService::new(b"placeholder"),
    );
    let report_key = ias.report_signing_key();
    let (_ias_handle, _shared) = serve_ias(&testbed.network, "ias:443", ias).unwrap();
    let remote_ias = RemoteIas::new(&testbed.network, "ias:443", report_key)
        .with_resilience(testbed.clock.clone(), retry, breaker);

    // An agent in front of host 0, holding one deployable VNF guard. The
    // agent knows the VM's HMAC key so it can authenticate revocations.
    let host = testbed.hosts.remove(0);
    let guard = vnfguard::vnf::VnfGuard::load(
        &host.platform,
        &testbed.network,
        &testbed.enclave_author,
        "vnf-chaos",
        1,
    )
    .unwrap();
    testbed.vm.trust_enclave(guard.mrenclave(), "vnf-chaos-v1");
    let mut guards = HashMap::new();
    guards.insert("vnf-chaos".to_string(), Arc::new(guard));
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(guards),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(testbed.vm.share_hmac_key()),
    });
    let agent = HostAgent::serve(&testbed.network, state).unwrap();

    ChaosWorld {
        testbed,
        agent,
        remote_ias,
        plan,
        _ias_handle,
    }
}

fn attest_host0(world: &mut ChaosWorld) -> Result<vnfguard::ima::appraisal::Verdict, CoreError> {
    remote_attest_host(
        &world.testbed.vm,
        &mut world.remote_ias,
        &world.testbed.network,
        "host-0",
    )
}

fn enroll_vnf(world: &mut ChaosWorld) -> Result<vnfguard::pki::Certificate, CoreError> {
    remote_enroll_vnf(
        &world.testbed.vm,
        &mut world.remote_ias,
        &world.testbed.network,
        "host-0",
        "vnf-chaos",
        "controller",
    )
}

// ---------------------------------------------------------------------------
// Scenario 1: probabilistic IAS refusals are absorbed by retries.
// ---------------------------------------------------------------------------

#[test]
fn enrollment_completes_despite_ias_refusals() {
    // Generous retry budget, breaker slack enough not to open.
    let mut world = chaos_world(
        b"chaos: flaky ias",
        7,
        RetryPolicy::new(8, 1, 16).with_seed(7),
        CircuitBreaker::new(32, 600),
    );
    world.plan.refuse_connections("ias:443", 0.30);

    // Several host attestations plus an enrollment, each crossing the
    // faulty VM → IAS link.
    for _ in 0..3 {
        assert!(attest_host0(&mut world).unwrap().is_trusted());
    }
    let certificate = enroll_vnf(&mut world).expect("retries should absorb 30% refusals");
    assert_eq!(certificate.subject_cn(), "vnf-chaos");

    // The enclave really holds the credentials.
    let guards = world.agent.state.guards.read();
    assert!(guards["vnf-chaos"].status().unwrap().provisioned);
    drop(guards);

    // The faults were real: the plan refused at least one connection, and
    // the client logged retried attempts.
    let refusals = world
        .plan
        .events()
        .iter()
        .filter(|e| matches!(e, FaultEvent::Refused { addr, .. } if addr == "ias:443"))
        .count();
    assert!(refusals > 0, "fault plan never fired; scenario is vacuous");
    assert!(
        !world.remote_ias.last_attempts().is_empty(),
        "attempt log missing"
    );
    assert_eq!(world.remote_ias.breaker_state(), BreakerState::Closed);
}

// ---------------------------------------------------------------------------
// Scenario 2: hard IAS partition → breaker opens, degradation is gated
// and audited, issuance fails closed.
// ---------------------------------------------------------------------------

#[test]
fn ias_partition_opens_breaker_and_gates_degradation() {
    // Graceful degradation is a build-time policy decision now: the
    // manager config opts in before the deployment exists.
    let mut world = chaos_world_with(
        b"chaos: ias partition",
        11,
        RetryPolicy::new(2, 1, 4).with_seed(11),
        CircuitBreaker::new(2, 3600),
        |b| b.degraded(true, 900),
    );

    // Healthy attestation first: the VM caches a trusted verdict.
    assert!(attest_host0(&mut world).unwrap().is_trusted());

    // Partition the VM away from IAS.
    world.plan.partition(&["vm"], &["ias:443"]);

    // Two failed operations (each a full retried POST) trip the breaker.
    for _ in 0..2 {
        let err = attest_host0(&mut world).unwrap_err();
        assert!(
            matches!(err, CoreError::AttestationFailed(_)),
            "unverifiable fallback report must fail closed, got: {err}"
        );
    }
    assert_eq!(world.remote_ias.breaker_state(), BreakerState::Open);

    // Open circuit + degradation policy: the cached verdict stands in and
    // the decision is audit-logged as a DegradedVerdict event.
    let verdict = attest_host0(&mut world).expect("degraded verdict should apply");
    assert!(verdict.is_trusted());
    let degraded_events = world
        .testbed
        .vm
        .events()
        .iter()
        .filter(|e| e.kind == "DegradedVerdict")
        .count();
    assert_eq!(degraded_events, 1);

    // Credential issuance has no degraded mode: fail fast, fail closed.
    let err = enroll_vnf(&mut world).unwrap_err();
    assert!(matches!(err, CoreError::ServiceUnavailable(_)), "got: {err}");
    assert_eq!(world.testbed.vm.enrollments().count(), 0);

    // A host whose last real appraisal failed gets nothing under
    // degradation, trusted cache or not.
    world.testbed.vm.revoke_host("host-0");
    let err = attest_host0(&mut world).unwrap_err();
    assert!(matches!(err, CoreError::ServiceUnavailable(_)), "got: {err}");
    assert_eq!(
        world.testbed.vm.events().iter().filter(|e| e.kind == "DegradedVerdict").count(),
        1,
        "no degraded verdict for a failed appraisal"
    );

    // Heal the partition: the half-open probe recovers the breaker.
    world.plan.heal_partition();
    world.testbed.clock.advance(3600);
    assert_eq!(world.remote_ias.breaker_state(), BreakerState::HalfOpen);
    // host-0's record is now Mismatch, so re-attest through the healed
    // link: IAS answers again and the fresh appraisal restores trust.
    assert!(attest_host0(&mut world).unwrap().is_trusted());
    assert_eq!(world.remote_ias.breaker_state(), BreakerState::Closed);
    let certificate = enroll_vnf(&mut world).unwrap();
    assert_eq!(certificate.subject_cn(), "vnf-chaos");
}

// ---------------------------------------------------------------------------
// Scenario 3: a link cut mid-provisioning never leaves a half-provisioned
// enclave: either commit (delivered) or rollback (revoked serial).
// ---------------------------------------------------------------------------

#[test]
fn mid_provision_drop_never_half_provisions() {
    // Sweep cut points from "dies during the attest exchange" to "survives
    // everything". The invariant must hold at every cut point.
    let mut rolled_back = 0;
    let mut delivered = 0;
    for (i, budget) in [900u64, 2500, 4500, 9000, 200_000].into_iter().enumerate() {
        let mut world = chaos_world(
            format!("chaos: drop {i}").as_bytes(),
            23 + i as u64,
            RetryPolicy::new(1, 0, 0),
            CircuitBreaker::new(32, 600),
        );
        assert!(attest_host0(&mut world).unwrap().is_trusted());

        // Cut every future VM → agent connection after `budget` bytes.
        world.plan.drop_after_bytes("agent:host-0", budget);
        let result = enroll_vnf(&mut world);
        let vm = &world.testbed.vm;
        assert_eq!(
            vm.pending_enrollments().count(),
            0,
            "budget {budget}: a pending enrollment survived"
        );
        let guards = world.agent.state.guards.read();
        let provisioned = guards["vnf-chaos"].status().unwrap().provisioned;
        match result {
            Ok(certificate) => {
                delivered += 1;
                assert!(provisioned, "budget {budget}: committed but undelivered");
                assert_eq!(vm.enrollments().count(), 1);
                assert!(vm
                    .current_crl(3600)
                    .lookup(certificate.serial())
                    .is_none());
            }
            Err(CoreError::ProvisioningRolledBack(detail)) => {
                rolled_back += 1;
                assert!(!provisioned, "budget {budget}: rollback but enclave provisioned");
                assert_eq!(vm.enrollments().count(), 0, "budget {budget}");
                // The issued-then-rolled-back serial is on the CRL.
                let serial: u64 = detail
                    .split("serial ")
                    .nth(1)
                    .and_then(|s| s.split(':').next())
                    .and_then(|s| s.trim().parse().ok())
                    .expect("rollback error names the serial");
                assert!(
                    vm.current_crl(3600)
                        .lookup(serial)
                        .is_some(),
                    "budget {budget}: rolled-back serial {serial} missing from CRL"
                );
            }
            Err(other) => {
                // Cut before issuance (e.g. during the attest exchange):
                // nothing was prepared, nothing to roll back.
                assert!(
                    matches!(other, CoreError::HostUnreachable(_) | CoreError::Encoding(_)),
                    "budget {budget}: unexpected error {other}"
                );
                assert!(!provisioned, "budget {budget}");
                assert_eq!(vm.enrollments().count(), 0, "budget {budget}");
            }
        }
    }
    assert!(delivered >= 1, "sweep never delivered; budgets too small");
    assert!(
        rolled_back >= 1,
        "sweep never cut between issuance and delivery; adjust budgets"
    );
}

// ---------------------------------------------------------------------------
// Scenario 4: revocation notices queue while the host is unreachable and
// drain once it heals.
// ---------------------------------------------------------------------------

#[test]
fn revocations_queue_and_drain_after_heal() {
    let mut world = chaos_world(
        b"chaos: revocation queue",
        31,
        RetryPolicy::new(2, 1, 4).with_seed(31),
        CircuitBreaker::new(8, 600),
    );
    assert!(attest_host0(&mut world).unwrap().is_trusted());
    let certificate = enroll_vnf(&mut world).unwrap();
    let serial = certificate.serial();
    let now = world.testbed.clock.now();
    world
        .testbed
        .vm
        .revoke_credential(serial, vnfguard::pki::crl::RevocationReason::KeyCompromise)
        .unwrap();
    let tag = world.testbed.vm.hmac_tag(&revocation_message("host-0", serial));

    // Host-0 drops off the network; the notice queues instead of failing.
    world.plan.isolate("agent:host-0");
    let mut notifier = RevocationNotifier::new(&world.testbed.network);
    assert!(!notifier.notify("host-0", serial, tag, now));
    assert_eq!(notifier.pending().len(), 1);
    assert!(world.agent.state.revoked_serials.read().is_empty());

    // Still down: drain delivers nothing, the notice stays queued.
    assert_eq!(notifier.drain(now), 0);
    assert_eq!(notifier.pending().len(), 1);
    assert!(notifier.pending()[0].attempts >= 2);

    // Heal: the queue drains and the agent evicts the serial.
    world.plan.heal("agent:host-0");
    assert_eq!(notifier.drain(now), 1);
    assert!(notifier.pending().is_empty());
    assert!(world.agent.state.revoked_serials.read().contains(&serial));

    // Forged notices are refused even when the host is reachable.
    let mut forger = RevocationNotifier::new(&world.testbed.network);
    assert!(!forger.notify("host-0", serial + 1, [0xAA; 32], now));
    assert!(!world.agent.state.revoked_serials.read().contains(&(serial + 1)));
}

// ---------------------------------------------------------------------------
// Scenario 5: determinism — the same fault-plan seed replays the same
// failure sequence; a different seed diverges.
// ---------------------------------------------------------------------------

#[test]
fn same_fault_seed_replays_same_failure_sequence() {
    let run = |seed: u64| -> (Vec<bool>, Vec<FaultEvent>) {
        let network = vnfguard::net::Network::new();
        let plan = FaultPlan::seeded(seed);
        network.install_faults(&plan);
        let _listener = network.listen("svc:1").unwrap();
        plan.refuse_connections("svc:1", 0.5);
        let outcomes = (0..24)
            .map(|_| match network.connect_from("vm", "svc:1") {
                Ok(_) => true,
                Err(NetError::ConnectionRefused(_)) => false,
                Err(other) => panic!("unexpected error: {other}"),
            })
            .collect();
        (outcomes, plan.events())
    };

    let (outcomes_a, events_a) = run(1234);
    let (outcomes_b, events_b) = run(1234);
    assert_eq!(outcomes_a, outcomes_b, "same seed must replay admissions");
    assert_eq!(events_a, events_b, "same seed must replay the event log");
    assert!(
        outcomes_a.iter().any(|ok| *ok) && outcomes_a.iter().any(|ok| !*ok),
        "p=0.5 over 24 draws should mix admissions and refusals"
    );

    let (outcomes_c, _) = run(4321);
    assert_ne!(outcomes_a, outcomes_c, "different seeds should diverge");
}
