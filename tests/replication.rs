//! Replicated Verification Manager: streaming, catch-up, failover chaos
//! matrix, and zombie-primary fencing.
//!
//! The scenarios cover the replication subsystem end to end:
//!
//! - steady-state streaming keeps every standby byte-equivalent to the
//!   primary's journaled state;
//! - a standby cut off long enough to outrun the resend buffer is caught
//!   up with a sealed snapshot and converges anyway;
//! - the failover chaos matrix kills the primary mid-enrollment,
//!   mid-renewal, and mid-rotation under seeded load, promotes a standby,
//!   and asserts **zero divergence** against an uncrashed oracle twin
//!   recovered from the dead primary's own media — plus a bounded
//!   promotion time;
//! - a deposed primary that keeps appending after its partition heals is
//!   fenced by the epoch check, its operation fails, and the rejection is
//!   journaled;
//! - the failed primary's undelivered revocation notices survive node
//!   loss inside the replicated state and drain at promotion.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vnfguard::core::crash::CrashPlan;
use vnfguard::core::deployment::{Testbed, TestbedBuilder};
use vnfguard::core::service::VmService;
use vnfguard::core::remote::{serve_vm_api, HostAgent, HostAgentState};
use vnfguard::core::replication::ReplicationConfig;
use vnfguard::core::revocation::revocation_message;
use vnfguard::core::CoreError;
use vnfguard::encoding::Json;
use vnfguard::ias::QuoteVerifier;
use vnfguard::net::http::Request;
use vnfguard::net::server::HttpClient;
use vnfguard::net::FaultPlan;
use vnfguard::pki::crl::RevocationReason;

/// Promotion must complete well under this (wall-clock) bound; the sim
/// does no real I/O waiting, so seconds of slack absorb CI noise.
const MAX_FAILOVER: Duration = Duration::from_secs(2);

/// Everything two managers must agree on for "zero certificate
/// divergence": CA root bytes, key epoch, serial high-water, CRL number,
/// committed enrollment records, and prepared-but-uncommitted serials.
#[allow(clippy::type_complexity)]
fn authority_view(
    vm: &VmService,
) -> (
    Vec<u8>,
    u64,
    u64,
    u64,
    Vec<(u64, String, String, bool)>,
    Vec<u64>,
) {
    (
        vm.ca_certificate().encode(),
        vm.ca_epoch(),
        vm.issued_count(),
        vm.lifecycle_status().crl_number,
        vm.enrollments()
            .map(|e| (e.serial, e.vnf_name.clone(), e.host_id.clone(), e.revoked))
            .collect(),
        vm.pending_enrollments().map(|p| p.serial).collect(),
    )
}

// ---------------------------------------------------------------------------
// Steady state: standbys mirror the primary's journaled state exactly.
// ---------------------------------------------------------------------------

#[test]
fn standbys_mirror_the_primary_in_steady_state() {
    let mut tb = TestbedBuilder::new(b"replication steady state")
        .replicas(2)
        .build();
    tb.attest_host(0).unwrap();
    let mut serials = Vec::new();
    for i in 0..3 {
        let guard = tb.deploy_guard(0, &format!("vnf-{i}"), 1).unwrap();
        serials.push(tb.enroll(0, &guard).unwrap().serial());
    }
    tb.vm
        .revoke_credential(serials[0], RevocationReason::KeyCompromise)
        .unwrap();
    tb.push_crl().unwrap();
    let rotation = tb.rotate_ca().unwrap();
    tb.distribute_ca(&rotation).unwrap();

    let a = tb.standbys[0].store().replay().unwrap().state;
    let b = tb.standbys[1].store().replay().unwrap().state;
    assert_eq!(a, b, "standbys diverged from each other");
    assert_eq!(a.max_serial, serials[2] + 2, "rotation serials missing");
    assert_eq!(a.enrollments.len(), 3);
    assert!(a.revoked.contains_key(&serials[0]));
    assert_eq!(a.crl_number, 1);
    assert_eq!(a.ca_epoch, 1);

    let status = tb.vm.replication_status().expect("replicated deployment");
    assert_eq!(status.role, "primary");
    assert_eq!(status.epoch, 0);
    assert!(!status.fenced);
    assert_eq!(status.standbys.len(), 2);
    for standby in &status.standbys {
        assert_eq!(
            standby.lag_records, 0,
            "{} lagging after synchronous streaming",
            standby.addr
        );
        assert_eq!(standby.acked_seq, status.head_seq);
    }
}

// ---------------------------------------------------------------------------
// Catch-up: a severed standby that outruns the resend buffer converges
// via snapshot; one within the buffer converges via retransmission.
// ---------------------------------------------------------------------------

#[test]
fn severed_standby_catches_up_with_a_snapshot() {
    let plan = FaultPlan::seeded(11);
    let mut tb = TestbedBuilder::new(b"replication catch-up")
        .replicas(2)
        .replication_config(ReplicationConfig {
            window: 2,
            retain: 2,
            ..ReplicationConfig::default()
        })
        .faults(plan.clone())
        .build();
    tb.attest_host(0).unwrap();

    // Cut standby 1 off and push far more records than the retain budget.
    plan.isolate("vm-standby-1:7600");
    let mut serials = Vec::new();
    for i in 0..4 {
        let guard = tb.deploy_guard(0, &format!("vnf-{i}"), 1).unwrap();
        serials.push(tb.enroll(0, &guard).unwrap().serial());
    }
    let behind = tb.standbys[1].status();
    let ahead = tb.standbys[0].status();
    assert!(
        behind.next_seq < ahead.next_seq,
        "severed standby should have fallen behind"
    );

    // Heal; the next heartbeat drives catch-up. The gap outruns the
    // 2-record buffer, so the standby must be caught up by snapshot.
    plan.heal("vm-standby-1:7600");
    tb.vm.replication_heartbeat();
    let caught_up = tb.standbys[1].status();
    assert_eq!(caught_up.next_seq, ahead.next_seq, "standby still behind");
    assert!(
        caught_up.snapshots_installed >= 1,
        "a gap beyond the resend buffer must be closed by snapshot"
    );
    assert_eq!(
        tb.standbys[0].store().replay().unwrap().state,
        tb.standbys[1].store().replay().unwrap().state,
        "snapshot catch-up diverged from record-by-record apply"
    );

    // And the converged standby keeps tracking normal streaming.
    let guard = tb.deploy_guard(0, "vnf-after", 1).unwrap();
    tb.enroll(0, &guard).unwrap();
    assert_eq!(
        tb.standbys[0].store().replay().unwrap().state,
        tb.standbys[1].store().replay().unwrap().state,
    );
    let status = tb.vm.replication_status().unwrap();
    assert!(status.standbys.iter().all(|s| s.lag_records == 0));
}

// ---------------------------------------------------------------------------
// Failover chaos matrix.
// ---------------------------------------------------------------------------

struct Outcome {
    crashes: usize,
    promotions: usize,
    issued: u64,
    ca_epoch: u64,
    fingerprint: String,
}

/// Ride out a primary loss: divergence-check a promoted standby against
/// an oracle twin recovered from the dead primary's own media, inside a
/// bounded failover window, then re-attest so the workload can continue.
fn ride_out(tb: &mut Testbed, seed: u64, promotions: &mut usize) {
    if tb.standbys.is_empty() {
        // Standbys exhausted (multiple crashes in one seed): restart in
        // place from the current primary's own WAL.
        tb.recover_vm().unwrap();
    } else {
        let oracle = tb.oracle_twin().unwrap_or_else(|e| {
            panic!("seed {seed}: oracle twin recovery failed: {e}")
        });
        let started = Instant::now();
        let report = tb.promote().unwrap_or_else(|e| {
            panic!("seed {seed}: promotion failed: {e}")
        });
        let elapsed = started.elapsed();
        assert!(
            elapsed < MAX_FAILOVER,
            "seed {seed}: failover took {elapsed:?} (bound {MAX_FAILOVER:?})"
        );
        *promotions += 1;
        assert_eq!(
            authority_view(&VmService::single(oracle)),
            authority_view(&tb.vm),
            "seed {seed}: promoted standby diverged from the oracle twin \
             (epoch {}, high-water {})",
            report.epoch,
            report.high_water
        );
    }
    tb.attest_host(0).unwrap();
}

/// One full scenario: enrollments, a renewal, a CA rotation, a CRL push,
/// and a revocation, with the crash plan killing the primary at journal-
/// adjacent sites throughout. Every node loss is ridden out by promotion.
fn run_failover_scenario(seed: u64) -> Outcome {
    let plan = CrashPlan::seeded(seed);
    plan.crash_with_probability("enrollment.prepare", 0.12)
        .crash_with_probability("enrollment.commit", 0.12)
        .crash_with_probability("revocation.revoke", 0.15)
        .crash_with_probability("renewal.issue", 0.25)
        .crash_with_probability("rotation.commit", 0.25);
    let mut tb = TestbedBuilder::new(format!("failover matrix {seed}").as_bytes())
        .replicas(2)
        // Half the seeds exercise snapshot-seeded promotion, half replay
        // the standby's full log.
        .wal_compaction(if seed.is_multiple_of(2) { 6 } else { 0 })
        .crash_plan(plan)
        .pending_enrollment_ttl(600)
        .build();
    tb.attest_host(0).unwrap();

    let mut crashes = 0;
    let mut promotions = 0;
    let mut guards = Vec::new();
    let mut serials = Vec::new();

    // Enroll three VNFs to acknowledged completion.
    for i in 0..3 {
        let guard = tb.deploy_guard(0, &format!("vnf-{i}"), 1).unwrap();
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts <= 24, "seed {seed}: enrollment livelocked");
            match tb.enroll(0, &guard) {
                Ok(certificate) => {
                    serials.push(certificate.serial());
                    break;
                }
                Err(CoreError::VmCrashed(_)) => {
                    crashes += 1;
                    ride_out(&mut tb, seed, &mut promotions);
                }
                Err(other) => panic!("seed {seed}: enrollment error: {other}"),
            }
        }
        guards.push(guard);
    }

    // Renew the first credential (mid-renewal crashes fail over too).
    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(attempts <= 24, "seed {seed}: renewal livelocked");
        match tb.renew(&guards[0], serials[0]) {
            Ok(certificate) => {
                serials.push(certificate.serial());
                break;
            }
            Err(CoreError::VmCrashed(_)) => {
                crashes += 1;
                ride_out(&mut tb, seed, &mut promotions);
            }
            Err(other) => panic!("seed {seed}: renewal error: {other}"),
        }
    }

    // Rotate the CA (a crash after the committed record still rotates —
    // the retried call simply opens the next epoch).
    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(attempts <= 24, "seed {seed}: rotation livelocked");
        match tb.rotate_ca() {
            Ok(_) => {
                // The controller must learn every rotated root before it
                // can validate anything the new CA signs (CRLs included) —
                // a crash after the commit record still rotates, so the
                // retry may leave more than one epoch to catch up on.
                tb.distribute_ca_chain().unwrap();
                break;
            }
            Err(CoreError::VmCrashed(_)) => {
                crashes += 1;
                ride_out(&mut tb, seed, &mut promotions);
            }
            Err(other) => panic!("seed {seed}: rotation error: {other}"),
        }
    }

    // Publish a CRL and revoke one credential.
    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(attempts <= 24, "seed {seed}: crl livelocked");
        match tb.push_crl() {
            Ok(()) => break,
            Err(CoreError::VmCrashed(_)) => {
                crashes += 1;
                ride_out(&mut tb, seed, &mut promotions);
            }
            Err(other) => panic!("seed {seed}: crl error: {other}"),
        }
    }
    match tb
        .vm
        .revoke_credential(serials[1], RevocationReason::KeyCompromise)
    {
        Ok(()) => {}
        Err(CoreError::VmCrashed(_)) => {
            crashes += 1;
            ride_out(&mut tb, seed, &mut promotions);
            // WAL-before-response: the journaled revocation survived the
            // node, not just the process.
            assert!(
                tb.vm.credential_is_revoked(serials[1]),
                "seed {seed}: replicated revocation lost in failover"
            );
        }
        Err(other) => panic!("seed {seed}: revocation error: {other}"),
    }

    // Closing divergence check: an oracle recovered from the live
    // primary's current media agrees with the primary's actual authority
    // state (replication never forked the timeline).
    let oracle = tb.oracle_twin().unwrap();
    assert_eq!(
        authority_view(&VmService::single(oracle)),
        authority_view(&tb.vm),
        "seed {seed}: final state diverged from the oracle twin"
    );

    Outcome {
        crashes,
        promotions,
        issued: tb.vm.issued_count(),
        ca_epoch: tb.vm.ca_epoch(),
        fingerprint: tb.vm.fingerprint(),
    }
}

/// The chaos matrix: ten seeds of kill-the-primary-under-load, each
/// promotion divergence-checked against an oracle twin. Non-vacuous: the
/// matrix as a whole must actually crash and actually promote.
#[test]
fn failover_matrix_preserves_authority_state_across_seeds() {
    let mut total_crashes = 0;
    let mut total_promotions = 0;
    for seed in 0..10 {
        let outcome = run_failover_scenario(seed);
        total_crashes += outcome.crashes;
        total_promotions += outcome.promotions;
    }
    assert!(
        total_crashes >= 5,
        "matrix is vacuous: only {total_crashes} crashes fired"
    );
    assert!(
        total_promotions >= 3,
        "matrix is vacuous: only {total_promotions} promotions ran"
    );
}

/// Same seed, same failure schedule, same promoted state — failover is
/// deterministic end to end.
#[test]
fn failover_scenarios_are_deterministic_per_seed() {
    let a = run_failover_scenario(4);
    let b = run_failover_scenario(4);
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.promotions, b.promotions);
    assert_eq!(a.issued, b.issued);
    assert_eq!(a.ca_epoch, b.ca_epoch);
    assert_eq!(a.fingerprint, b.fingerprint);
}

// ---------------------------------------------------------------------------
// Zombie fencing.
// ---------------------------------------------------------------------------

#[test]
fn zombie_primary_is_fenced_after_partition_heals() {
    let plan = FaultPlan::seeded(5);
    let mut tb = TestbedBuilder::new(b"replication zombie")
        .replicas(2)
        .faults(plan.clone())
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-z", 1).unwrap();
    let serial = tb.enroll(0, &guard).unwrap().serial();

    // Partition the primary away from both standbys. It keeps serving —
    // this revocation lands only in its own, soon-to-be-dead timeline.
    plan.isolate("vm-standby-0:7600");
    plan.isolate("vm-standby-1:7600");
    tb.vm
        .revoke_credential(serial, RevocationReason::KeyCompromise)
        .unwrap();
    assert!(tb.vm.credential_is_revoked(serial));

    // Operators declare the partitioned primary dead and fail over.
    let zombie_handle = tb.detach_primary();
    plan.heal("vm-standby-0:7600");
    plan.heal("vm-standby-1:7600");
    let report = tb.promote().unwrap();
    assert_eq!(report.epoch, 1);
    // The promoted timeline never saw the partitioned-away revocation.
    assert!(!tb.vm.credential_is_revoked(serial));

    // The partition heals and the zombie tries to keep being primary.
    // Its append is rejected by the surviving standby's epoch check; the
    // operation fails instead of committing into the dead timeline.
    let mut zombie = zombie_handle;
    let err = zombie.issue_crl().unwrap_err();
    assert!(
        matches!(err, CoreError::Store(_)),
        "zombie append should fail at the journal layer, got: {err}"
    );
    let status = zombie.replication_status().unwrap();
    assert!(status.fenced);
    assert_eq!(status.role, "fenced");
    // Once fenced, the zombie fast-fails before touching any state.
    assert!(matches!(
        zombie.issue_crl().unwrap_err(),
        CoreError::ServiceUnavailable(_)
    ));

    // The survivor counted and journaled the rejection.
    assert!(tb.standbys[0].status().fenced_rejections >= 1);
    assert!(
        tb.telemetry
            .journal()
            .events()
            .iter()
            .any(|e| e.kind == "replication_fenced"),
        "fencing must leave an audit event"
    );
    // The zombie's stale records never reached the survivor's store.
    let survivor_state = tb.standbys[0].store().replay().unwrap().state;
    assert!(!survivor_state.revoked.contains_key(&serial));

    // And the rightful primary keeps serving.
    tb.attest_host(0).unwrap();
    let guard2 = tb.deploy_guard(0, "vnf-after-fence", 1).unwrap();
    tb.enroll(0, &guard2).unwrap();
}

// ---------------------------------------------------------------------------
// Missed-heartbeat promotion trigger.
// ---------------------------------------------------------------------------

#[test]
fn missed_heartbeats_trigger_promotion() {
    let mut tb = TestbedBuilder::new(b"replication heartbeat")
        .replicas(2)
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-hb", 1).unwrap();
    tb.enroll(0, &guard).unwrap();

    tb.vm.replication_heartbeat();
    assert!(!tb.failover_due(300), "fresh heartbeat must not be suspect");

    // The primary goes silent past the timeout.
    tb.kill_primary("node loss");
    tb.clock.advance(301);
    assert!(tb.failover_due(300), "silent primary must become suspect");

    let report = tb.promote().unwrap();
    assert_eq!(report.epoch, 1);
    tb.attest_host(0).unwrap();
    let guard2 = tb.deploy_guard(0, "vnf-hb2", 1).unwrap();
    tb.enroll(0, &guard2).unwrap();
}

// ---------------------------------------------------------------------------
// Satellite: undelivered revocation notices survive the node.
// ---------------------------------------------------------------------------

#[test]
fn promotion_requeues_and_drains_undelivered_notices() {
    let mut tb = TestbedBuilder::new(b"replication notices")
        .replicas(2)
        .build();
    let plan = FaultPlan::seeded(9);
    tb.network.install_faults(&plan);
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-notice", 1).unwrap();
    let serial = tb.enroll(0, &guard).unwrap().serial();
    tb.vm
        .revoke_credential(serial, RevocationReason::KeyCompromise)
        .unwrap();
    let now = tb.clock.now();
    let tag = tb.vm.hmac_tag(&revocation_message("host-0", serial));

    // An agent that knows the VM's HMAC key fronts host 0, but is
    // unreachable when the notice goes out: the notice enters the
    // store-and-forward queue — which journals into the replicated WAL.
    let host = tb.hosts.remove(0);
    let agent_state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(HashMap::new()),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(tb.vm.share_hmac_key()),
    });
    let _agent = HostAgent::serve(&tb.network, agent_state.clone()).unwrap();
    plan.isolate("agent:host-0");
    assert!(!tb.notifier.notify("host-0", serial, tag, now));
    assert_eq!(tb.notifier.pending().len(), 1);

    // The primary dies with the notice still queued; the host heals.
    tb.kill_primary("node loss");
    plan.heal("agent:host-0");
    let report = tb.promote().unwrap();

    // The queue was part of the replicated state: promotion requeues it
    // from the replayed WAL and the drain delivers it. The agent accepts
    // the tag because the promoted manager re-derived the same HMAC key.
    assert_eq!(report.notices_requeued, 1, "notice lost with the node");
    assert_eq!(report.notices_delivered, 1, "requeued notice not drained");
    assert!(tb.notifier.pending().is_empty());
    assert!(
        agent_state.revoked_serials.read().contains(&serial),
        "agent never learned of the revocation"
    );
}

// ---------------------------------------------------------------------------
// Satellite: operator route and gauges.
// ---------------------------------------------------------------------------

#[test]
fn replication_status_is_served_over_the_operator_api() {
    let mut tb = TestbedBuilder::new(b"replication api")
        .replicas(2)
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-api", 1).unwrap();
    tb.enroll(0, &guard).unwrap();

    let network = tb.network.clone();
    let telemetry = tb.telemetry.clone();
    let vm = tb.vm_service();
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(tb.ias));
    let _api = serve_vm_api(&network, "vm:8443", vm, ias, "controller").unwrap();
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());

    let body = client
        .request(&Request::get("/vm/replication"))
        .unwrap()
        .parse_json()
        .unwrap();
    assert_eq!(body.get("role").and_then(Json::as_str), Some("primary"));
    assert_eq!(body.get("epoch").and_then(Json::as_i64), Some(0));
    assert_eq!(body.get("fenced").and_then(Json::as_bool), Some(false));
    let head = body.get("head_seq").and_then(Json::as_i64).unwrap();
    assert!(head > 0, "enrollment records must have streamed");
    let standbys = body.get("standbys").and_then(Json::as_array).unwrap();
    assert_eq!(standbys.len(), 2);
    for standby in standbys {
        assert_eq!(
            standby.get("acked_seq").and_then(Json::as_i64),
            Some(head),
            "standby behind over the operator surface"
        );
        assert_eq!(standby.get("lag_records").and_then(Json::as_i64), Some(0));
    }

    // The status read refreshed the gauges; the Prometheus exposition
    // must carry them (satellite metric names are part of the contract).
    let metrics = String::from_utf8(
        client.request(&Request::get("/vm/metrics")).unwrap().body,
    )
    .unwrap();
    assert!(metrics.contains("vnfguard_core_replication_lag_records 0"));
    assert!(metrics.contains("vnfguard_core_replication_heartbeat_age_seconds"));
    assert!(metrics.contains("vnfguard_core_replication_records_total"));
    drop(telemetry);
}

/// An unreplicated deployment answers the route too — dashboards need no
/// special-casing.
#[test]
fn replication_route_reports_unreplicated_deployments() {
    let tb = TestbedBuilder::new(b"replication api bare").durable().build();
    let network = tb.network.clone();
    let vm = tb.vm_service();
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(tb.ias));
    let _api = serve_vm_api(&network, "vm:8443", vm, ias, "controller").unwrap();
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());
    let body = client
        .request(&Request::get("/vm/replication"))
        .unwrap()
        .parse_json()
        .unwrap();
    assert_eq!(body.get("role").and_then(Json::as_str), Some("unreplicated"));
    assert!(body.get("epoch").is_none());
}
