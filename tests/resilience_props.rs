//! Property tests for the resilience primitives: RetryPolicy backoff math
//! and CircuitBreaker state transitions under a simulated clock.

use proptest::collection::vec;
use proptest::prelude::*;
use vnfguard::controller::SimClock;
use vnfguard::core::resilience::{BreakerState, CircuitBreaker, RetryPolicy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The pre-jitter backoff bound never exceeds the cap, is monotone in
    /// the attempt index, and is exactly `base * 2^n` while under the cap.
    #[test]
    fn backoff_bound_is_capped_and_monotone(
        base in 0u64..1_000,
        cap in 0u64..100_000,
        attempt in 0u32..80,
    ) {
        let policy = RetryPolicy::new(4, base, cap);
        let bound = policy.backoff_bound(attempt);
        prop_assert!(bound <= cap);
        if attempt > 0 {
            prop_assert!(bound >= policy.backoff_bound(attempt - 1));
        }
        if attempt < 63 {
            let exact = base.saturating_mul(1u64 << attempt);
            if exact < cap {
                prop_assert_eq!(bound, exact);
            }
        }
    }

    /// Every jittered delay in a run lies in `[0, backoff_bound(n)]`, the
    /// attempt count is exactly `max_attempts` on total failure, and the
    /// clock advances by exactly the sum of the delays.
    #[test]
    fn jitter_stays_within_bounds_and_drives_the_clock(
        max_attempts in 1u32..10,
        base in 0u64..100,
        cap in 0u64..500,
        seed in any::<u64>(),
        start in 0u64..1_000_000,
    ) {
        let policy = RetryPolicy::new(max_attempts, base, cap).with_seed(seed);
        let clock = SimClock::at(start);
        let outcome = policy.run(&clock, |_| Err::<(), _>("down"));
        prop_assert!(outcome.result.is_err());
        prop_assert_eq!(outcome.attempts.len(), max_attempts as usize);
        prop_assert_eq!(outcome.attempts[0].delay_before_secs, 0);
        for record in &outcome.attempts[1..] {
            prop_assert!(
                record.delay_before_secs <= policy.backoff_bound(record.attempt - 1),
                "attempt {} waited {} > bound {}",
                record.attempt,
                record.delay_before_secs,
                policy.backoff_bound(record.attempt - 1)
            );
        }
        let waited: u64 = outcome.attempts.iter().map(|a| a.delay_before_secs).sum();
        prop_assert_eq!(clock.now(), start + waited);
    }

    /// The same policy seed replays the same delay sequence.
    #[test]
    fn retry_delays_replay_from_seed(seed in any::<u64>()) {
        let delays = |s: u64| {
            let clock = SimClock::at(0);
            RetryPolicy::new(6, 1, 30)
                .with_seed(s)
                .run(&clock, |_| Err::<(), _>("x"))
                .attempts
                .iter()
                .map(|a| a.delay_before_secs)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(delays(seed), delays(seed));
    }

    /// Circuit-breaker invariants under arbitrary interleavings of clock
    /// advances, successes and failures:
    /// - a success always leaves the breaker Closed;
    /// - the breaker only opens once `threshold` consecutive failures
    ///   accumulate (or a half-open probe fails);
    /// - while Open, `allows` refuses; once the cooldown elapses the state
    ///   reads HalfOpen and `allows` admits the probe.
    #[test]
    fn breaker_transitions_are_sound(
        threshold in 1u32..6,
        cooldown in 1u64..100,
        ops in vec((0u64..50, any::<bool>()), 1..60),
    ) {
        let clock = SimClock::at(0);
        let mut breaker = CircuitBreaker::new(threshold, cooldown);
        let mut streak = 0u32; // consecutive failures, model side
        let mut opened_at: Option<u64> = None;
        for (advance, success) in ops {
            clock.advance(advance);
            let now = clock.now();

            // `allows` must agree with `state` before the event.
            prop_assert_eq!(breaker.allows(now), breaker.state(now) != BreakerState::Open);

            let state_before = breaker.state(now);
            if success {
                breaker.record_success(now);
                streak = 0;
                opened_at = None;
                prop_assert_eq!(breaker.state(now), BreakerState::Closed);
                prop_assert_eq!(breaker.consecutive_failures(), 0);
            } else {
                breaker.record_failure(now);
                match state_before {
                    BreakerState::Closed => {
                        streak += 1;
                        if streak >= threshold {
                            opened_at = Some(now);
                            prop_assert_eq!(breaker.state(now), BreakerState::Open);
                        } else {
                            prop_assert_eq!(breaker.state(now), BreakerState::Closed);
                        }
                    }
                    BreakerState::HalfOpen => {
                        // Failed probe: re-opened, cooldown restarted.
                        opened_at = Some(now);
                        prop_assert_eq!(breaker.state(now), BreakerState::Open);
                    }
                    BreakerState::Open => {
                        // Bypassed-`allows` failure: no cooldown restart.
                        prop_assert!(opened_at.is_some());
                    }
                }
            }

            // Open/HalfOpen timing must follow the recorded open instant.
            if let Some(t) = opened_at {
                let now = clock.now();
                if now >= t + cooldown {
                    prop_assert_eq!(breaker.state(now), BreakerState::HalfOpen);
                    prop_assert!(breaker.allows(now));
                } else {
                    prop_assert_eq!(breaker.state(now), BreakerState::Open);
                    prop_assert!(!breaker.allows(now));
                }
            } else {
                prop_assert_eq!(breaker.state(clock.now()), BreakerState::Closed);
            }
        }
    }

    /// A failed half-open probe re-opens the breaker with a *fresh*
    /// cooldown: it refuses for a full `cooldown` measured from the probe
    /// failure (not the original open), reads HalfOpen exactly at the new
    /// boundary, and logs the re-open as its latest transition.
    #[test]
    fn failed_probe_reopens_with_fresh_cooldown(
        threshold in 1u32..6,
        cooldown in 1u64..100,
        wait_extra in 0u64..50,
        mid in 0u64..1_000,
    ) {
        let mut breaker = CircuitBreaker::new(threshold, cooldown);
        for _ in 0..threshold {
            breaker.record_failure(10);
        }
        prop_assert_eq!(breaker.state(10), BreakerState::Open);

        let probe_time = 10 + cooldown + wait_extra;
        prop_assert_eq!(breaker.state(probe_time), BreakerState::HalfOpen);
        breaker.record_failure(probe_time);

        // The whole window [probe_time, probe_time + cooldown) refuses,
        // even instants that the original cooldown would already admit.
        let in_window = probe_time + mid % cooldown;
        prop_assert_eq!(breaker.state(probe_time), BreakerState::Open);
        prop_assert_eq!(breaker.state(in_window), BreakerState::Open);
        prop_assert!(!breaker.allows(in_window));
        prop_assert_eq!(breaker.state(probe_time + cooldown), BreakerState::HalfOpen);
        prop_assert!(breaker.allows(probe_time + cooldown));

        prop_assert_eq!(
            breaker.transitions().last().copied(),
            Some((probe_time, BreakerState::Open))
        );
    }

    /// A successful half-open probe *fully* closes the breaker: the failure
    /// streak resets to zero, so re-opening takes a complete fresh run of
    /// `threshold` consecutive failures, and the close is logged.
    #[test]
    fn successful_probe_fully_closes(
        threshold in 1u32..6,
        cooldown in 1u64..100,
        wait_extra in 0u64..50,
    ) {
        let mut breaker = CircuitBreaker::new(threshold, cooldown);
        for _ in 0..threshold {
            breaker.record_failure(5);
        }
        let probe_time = 5 + cooldown + wait_extra;
        prop_assert_eq!(breaker.state(probe_time), BreakerState::HalfOpen);

        breaker.record_success(probe_time);
        prop_assert_eq!(breaker.state(probe_time), BreakerState::Closed);
        prop_assert_eq!(breaker.consecutive_failures(), 0);
        prop_assert_eq!(
            breaker.transitions().last().copied(),
            Some((probe_time, BreakerState::Closed))
        );

        // Closed is not "half-closed": threshold - 1 fresh failures leave
        // it Closed, and only the threshold-th opens it again.
        for i in 0..threshold - 1 {
            let at = probe_time + 1 + u64::from(i);
            breaker.record_failure(at);
            prop_assert_eq!(breaker.state(at), BreakerState::Closed);
            prop_assert!(breaker.allows(at));
        }
        let at = probe_time + 1 + u64::from(threshold);
        breaker.record_failure(at);
        prop_assert_eq!(breaker.state(at), BreakerState::Open);
    }

    /// The transition log is a faithful, ordered journal: timestamps are
    /// non-decreasing, the first entry is always an Open (a breaker starts
    /// Closed), and no two consecutive entries are both Closed (a close is
    /// only ever recorded when leaving an open period; consecutive Opens
    /// are legal — a failed half-open probe re-opens).
    #[test]
    fn transition_log_is_ordered(
        threshold in 1u32..6,
        cooldown in 1u64..100,
        ops in vec((0u64..50, any::<bool>()), 1..80),
    ) {
        let clock = SimClock::at(0);
        let mut breaker = CircuitBreaker::new(threshold, cooldown);
        for (advance, success) in ops {
            clock.advance(advance);
            if success {
                breaker.record_success(clock.now());
            } else {
                breaker.record_failure(clock.now());
            }
        }
        let transitions = breaker.transitions();
        if let Some((_, first)) = transitions.first() {
            prop_assert_eq!(*first, BreakerState::Open);
        }
        for pair in transitions.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "transition timestamps went backwards");
            prop_assert!(
                !(pair[0].1 == BreakerState::Closed && pair[1].1 == BreakerState::Closed),
                "two consecutive Closed entries"
            );
        }
    }
}
