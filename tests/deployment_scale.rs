//! Cross-crate integration: multi-host, multi-VNF deployments at (small)
//! scale, exercising the whole stack through the umbrella crate.

use vnfguard::controller::SecurityMode;
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::encoding::Json;
use vnfguard::net::http::Request;

#[test]
fn three_hosts_nine_vnfs() {
    let mut testbed = TestbedBuilder::new(b"scale test").hosts(3).build();
    for host in 0..3 {
        assert!(testbed.attest_host(host).unwrap().is_trusted());
    }

    let mut guards = Vec::new();
    for host in 0..3 {
        for i in 0..3 {
            let name = format!("vnf-{host}-{i}");
            let guard = testbed.deploy_guard(host, &name, 1).unwrap();
            let cert = testbed.enroll(host, &guard).unwrap();
            assert_eq!(cert.subject_cn(), name);
            guards.push(guard);
        }
    }
    assert_eq!(testbed.vm.issued_count(), 9 + 1); // +1 controller cert

    // Every VNF can reach the controller, each with its own identity.
    for guard in &mut guards {
        let session = guard
            .open_session(&testbed.controller_addr, testbed.clock.now())
            .unwrap();
        let response = guard
            .request(session, &Request::get("/wm/core/health/json"))
            .unwrap();
        assert!(response.status.is_success());
        guard.close_session(session).unwrap();
    }
    assert_eq!(testbed.controller.requests_served(), 9);

    // All enrollments are recorded with the right hosts.
    let per_host = |host: &str| {
        testbed
            .vm
            .enrollments()
            .filter(|e| e.host_id == host)
            .count()
    };
    assert_eq!(per_host("host-0"), 3);
    assert_eq!(per_host("host-1"), 3);
    assert_eq!(per_host("host-2"), 3);
}

#[test]
fn session_survives_many_requests() {
    let mut testbed = TestbedBuilder::new(b"session endurance").build();
    testbed.attest_host(0).unwrap();
    let mut guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    testbed.enroll(0, &guard).unwrap();
    let session = testbed.open_session(&mut guard).unwrap();

    guard
        .request(
            session,
            &Request::post("/wm/core/switch/register").with_json(
                &Json::object()
                    .with("dpid", "01")
                    .with("ports", vec![Json::from(1i64)]),
            ),
        )
        .unwrap();
    // 50 flow pushes over one in-enclave session: record sequence numbers
    // keep advancing, keys stay inside.
    for i in 0..50i64 {
        let response = guard
            .request(
                session,
                &Request::post("/wm/staticflowpusher/json").with_json(
                    &Json::object()
                        .with("switch", "01")
                        .with("name", format!("flow-{i}"))
                        .with("priority", i)
                        .with("actions", "output=1"),
                ),
            )
            .unwrap();
        assert!(response.status.is_success(), "request {i}");
    }
    let summary = guard
        .request(session, &Request::get("/wm/core/controller/summary/json"))
        .unwrap()
        .parse_json()
        .unwrap();
    assert_eq!(
        summary.get("# static flows").and_then(Json::as_i64),
        Some(50)
    );
}

#[test]
fn mixed_mode_deployments_coexist() {
    // Two independent fabrics: an HTTP controller and a trusted one.
    let http = TestbedBuilder::new(b"mixed http")
        .mode(SecurityMode::Http)
        .build();
    let mut trusted = TestbedBuilder::new(b"mixed trusted").build();

    let mut plain_client = vnfguard::controller::NorthboundClient::connect_plain(
        &http.network,
        &http.controller_addr,
    )
    .unwrap();
    plain_client.summary().unwrap();

    trusted.attest_host(0).unwrap();
    let mut guard = trusted.deploy_guard(0, "vnf", 1).unwrap();
    trusted.enroll(0, &guard).unwrap();
    let session = trusted.open_session(&mut guard).unwrap();
    guard
        .request(session, &Request::get("/wm/core/health/json"))
        .unwrap();
}

#[test]
fn sealed_restore_then_session() {
    // Restart persistence feeding directly into step 6.
    let mut testbed = TestbedBuilder::new(b"seal to session").build();
    testbed.attest_host(0).unwrap();
    let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    testbed.enroll(0, &guard).unwrap();
    let sealed = guard.export_sealed().unwrap();
    drop(guard);

    // New enclave instance (same image, same platform) restores and
    // connects without re-enrollment.
    let mut restarted = testbed.deploy_guard(0, "vnf", 1).unwrap();
    restarted.import_sealed(&sealed).unwrap();
    let session = testbed.open_session(&mut restarted).unwrap();
    let response = restarted
        .request(session, &Request::get("/wm/core/health/json"))
        .unwrap();
    assert!(response.status.is_success());
}

#[test]
fn ecall_accounting_reflects_activity() {
    let mut testbed = TestbedBuilder::new(b"accounting").build();
    testbed.attest_host(0).unwrap();
    let before = testbed.hosts[0].platform.ecall_count();
    let mut guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    testbed.enroll(0, &guard).unwrap();
    let session = testbed.open_session(&mut guard).unwrap();
    guard
        .request(session, &Request::get("/wm/core/health/json"))
        .unwrap();
    let after = testbed.hosts[0].platform.ecall_count();
    assert!(
        after > before + 5,
        "enrollment + session should cross the boundary many times ({before} → {after})"
    );
}
