//! Crash-fault tolerance chaos matrix.
//!
//! A durable testbed runs the Figure 1 workflow while a seeded
//! [`CrashPlan`] kills the Verification Manager at WAL-adjacent injection
//! sites. After every crash the testbed restarts the manager from the
//! sealed snapshot + log ([`Testbed::recover_vm`]) and the scenario keeps
//! going. The crash-consistency contract checked for every seed:
//!
//! - **no acknowledged enrollment is lost** — a certificate handed to the
//!   caller survives any later crash;
//! - **every orphaned prepare is eventually revoked** — a serial issued by
//!   a dead incarnation either completes or ends up on the CRL;
//! - **no serial is both active and revoked** — the in-memory `revoked`
//!   flag and the CA agree at all times;
//! - **every issued leaf serial is accounted for** — enrolled, revoked, or
//!   the controller's own server certificate; nothing leaks.

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use vnfguard::core::crash::CrashPlan;
use vnfguard::core::deployment::{Testbed, TestbedBuilder};
use vnfguard::core::remote::serve_vm_api;
use vnfguard::core::CoreError;
use vnfguard::encoding::Json;
use vnfguard::ias::QuoteVerifier;
use vnfguard::net::http::Request;
use vnfguard::net::server::HttpClient;
use vnfguard::pki::crl::RevocationReason;

/// How long a prepared enrollment may sit uncommitted before the sweep (or
/// a recovery past the grace window) aborts it.
const PENDING_TTL: u64 = 600;

/// Enrollments driven to acknowledged completion per seed.
const VNFS_PER_SEED: usize = 5;

struct Outcome {
    committed: BTreeSet<u64>,
    crashes: usize,
    recoveries: usize,
}

/// One full chaos scenario: enroll [`VNFS_PER_SEED`] VNFs and revoke half,
/// riding out every injected crash via recovery, then age and sweep the
/// orphans and check the consistency contract.
fn run_crash_scenario(seed: u64) -> Outcome {
    let plan = CrashPlan::seeded(seed);
    plan.crash_with_probability("enrollment.prepare", 0.20)
        .crash_with_probability("enrollment.commit", 0.20)
        .crash_with_probability("revocation.revoke", 0.25)
        .crash_with_probability("enrollment.expire", 0.20);
    let mut tb = TestbedBuilder::new(format!("crash matrix {seed}").as_bytes())
        .durable()
        // Half the seeds recover through a snapshot, half replay the
        // full log from frame zero.
        .wal_compaction(if seed.is_multiple_of(2) { 6 } else { 0 })
        .crash_plan(plan.clone())
        .pending_enrollment_ttl(PENDING_TTL)
        .build();
    tb.attest_host(0).unwrap();

    let mut committed = BTreeSet::new();
    let mut crashes = 0;
    let mut recoveries = 0;

    // Phase 1: enroll until every VNF holds an acknowledged certificate.
    for i in 0..VNFS_PER_SEED {
        let name = format!("vnf-{i}");
        let guard = tb.deploy_guard(0, &name, 1).unwrap();
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts <= 24, "seed {seed}: enrollment of {name} livelocked");
            match tb.enroll(0, &guard) {
                Ok(certificate) => {
                    committed.insert(certificate.serial());
                    break;
                }
                Err(CoreError::VmCrashed(site)) => {
                    crashes += 1;
                    let report = tb.recover_vm().unwrap_or_else(|e| {
                        panic!("seed {seed}: recovery after crash at {site} failed: {e}")
                    });
                    recoveries += 1;
                    assert_eq!(
                        report.generation as usize, recoveries,
                        "seed {seed}: recovery generations must count up"
                    );
                    for serial in &committed {
                        assert!(
                            tb.vm.enrollments().any(|e| e.serial == *serial),
                            "seed {seed}: committed serial {serial} lost in crash at {site}"
                        );
                    }
                    // Host attestations die with the incarnation; the new
                    // one only trusts hosts that re-attest to it.
                    tb.attest_host(0).unwrap();
                }
                Err(other) => panic!("seed {seed}: unexpected enrollment error: {other}"),
            }
        }
    }
    assert_eq!(committed.len(), VNFS_PER_SEED);

    // Phase 2: revoke half of the acknowledged credentials. A crash at the
    // revocation site strikes *after* the WAL append, so the revocation
    // must be visible in the recovered incarnation even though the caller
    // saw an error.
    let to_revoke: Vec<u64> = committed.iter().copied().take(VNFS_PER_SEED / 2).collect();
    for serial in &to_revoke {
        match tb.vm.revoke_credential(*serial, RevocationReason::KeyCompromise) {
            Ok(()) => {}
            Err(CoreError::VmCrashed(_)) => {
                crashes += 1;
                tb.recover_vm().unwrap();
                recoveries += 1;
                assert!(
                    tb.vm.credential_is_revoked(*serial),
                    "seed {seed}: WAL-journaled revocation of {serial} lost in crash"
                );
            }
            Err(other) => panic!("seed {seed}: unexpected revocation error: {other}"),
        }
    }

    // Phase 3: age every orphaned prepare past its TTL and sweep. A crash
    // mid-sweep is fine — recovery aborts expired orphans itself.
    tb.clock.advance(PENDING_TTL + 1);
    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(attempts <= 24, "seed {seed}: sweep livelocked");
        match tb.vm.sweep_pending_enrollments() {
            Ok(_) => break,
            Err(CoreError::VmCrashed(_)) => {
                crashes += 1;
                tb.recover_vm().unwrap();
                recoveries += 1;
            }
            Err(other) => panic!("seed {seed}: unexpected sweep error: {other}"),
        }
    }
    assert_eq!(
        tb.vm.pending_enrollments().count(),
        0,
        "seed {seed}: orphaned prepares survived the sweep"
    );

    // The contract.
    for serial in &committed {
        let record = tb
            .vm
            .enrollments()
            .find(|e| e.serial == *serial)
            .unwrap_or_else(|| panic!("seed {seed}: committed serial {serial} missing"));
        assert_eq!(
            record.revoked,
            to_revoke.contains(serial),
            "seed {seed}: serial {serial} revocation flag wrong"
        );
    }
    for record in tb.vm.enrollments() {
        assert_eq!(
            record.revoked,
            tb.vm.credential_is_revoked(record.serial),
            "seed {seed}: serial {} disagrees with the CA",
            record.serial
        );
    }
    // Serial 2 is the controller's server certificate; every later leaf
    // serial must be an enrollment or on the CRL.
    let max_serial = tb.vm.issued_count() + 1;
    for serial in 3..=max_serial {
        let enrolled = tb.vm.enrollments().any(|e| e.serial == serial && !e.revoked);
        let revoked = tb.vm.credential_is_revoked(serial);
        assert!(
            enrolled || revoked,
            "seed {seed}: serial {serial} leaked — neither enrolled nor revoked"
        );
    }

    Outcome {
        committed,
        crashes,
        recoveries,
    }
}

/// The chaos matrix: ten seeds, each a full crash/recover scenario. The
/// matrix must be non-vacuous — across the seeds a healthy number of
/// crashes actually fire, and every crash is matched by a recovery.
#[test]
fn crash_matrix_preserves_consistency_across_seeds() {
    let mut total_crashes = 0;
    let mut total_committed = 0;
    for seed in 0..10 {
        let outcome = run_crash_scenario(seed);
        assert_eq!(outcome.crashes, outcome.recoveries, "seed {seed}");
        total_crashes += outcome.crashes;
        total_committed += outcome.committed.len();
    }
    assert!(
        total_crashes >= 8,
        "matrix too tame: only {total_crashes} crashes fired across all seeds"
    );
    assert_eq!(total_committed, 10 * VNFS_PER_SEED);
}

/// The same crash-plan seed replays the same crash schedule and converges
/// to the same recovered state — the crash matrix is a deterministic
/// regression witness, not a flaky fuzzer.
#[test]
fn same_crash_seed_replays_the_same_schedule() {
    let run = |seed: u64| {
        let outcome = run_crash_scenario(seed);
        (outcome.committed, outcome.crashes)
    };
    assert_eq!(run(3), run(3));
}

/// A torn WAL tail (the medium lost the end of the final append) rolls the
/// log back to the last intact record. The dropped record was never
/// acknowledged-and-persisted as a unit, so the recovered state is a
/// consistent prefix: earlier enrollments intact, the torn commit demoted
/// to a pending prepare.
#[test]
fn torn_wal_tail_recovers_to_a_consistent_prefix() {
    let mut tb = TestbedBuilder::new(b"torn tail")
        .durable()
        .pending_enrollment_ttl(PENDING_TTL)
        .build();
    tb.attest_host(0).unwrap();
    let guard_a = tb.deploy_guard(0, "vnf-a", 1).unwrap();
    let cert_a = tb.enroll(0, &guard_a).unwrap();
    let guard_b = tb.deploy_guard(0, "vnf-b", 1).unwrap();
    let cert_b = tb.enroll(0, &guard_b).unwrap();

    // Clip bytes off the final frame — vnf-b's EnrollmentCommitted record.
    tb.store_media().unwrap().tear_tail(3);
    let report = tb.recover_vm().unwrap();
    assert!(report.truncated_tail, "the torn tail must be detected");

    // vnf-a's enrollment is intact; vnf-b rolled back to prepared (its
    // commit never fully reached the medium) and will be aborted by the
    // sweep if nobody completes it.
    assert!(tb.vm.enrollments().any(|e| e.serial == cert_a.serial()));
    assert!(!tb.vm.enrollments().any(|e| e.serial == cert_b.serial()));
    assert!(tb
        .vm
        .pending_enrollments()
        .any(|p| p.serial == cert_b.serial()));

    tb.clock.advance(PENDING_TTL + 1);
    assert_eq!(tb.vm.sweep_pending_enrollments().unwrap(), 1);
    assert!(tb.vm.credential_is_revoked(cert_b.serial()));
    assert!(!tb.vm.credential_is_revoked(cert_a.serial()));
}

/// A crash that strands a prepared enrollment past the grace window:
/// recovery itself aborts the orphan, puts its serial on the CRL, and
/// queues a store-and-forward revocation notice for the host. The new
/// incarnation refuses VNF work for the host until it re-attests.
#[test]
fn recovery_aborts_expired_orphans_and_queues_notices() {
    let plan = CrashPlan::seeded(9);
    plan.crash_once("enrollment.prepare");
    let mut tb = TestbedBuilder::new(b"orphan abort")
        .durable()
        .crash_plan(plan)
        .pending_enrollment_ttl(120)
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-orphan", 1).unwrap();
    let err = tb.enroll(0, &guard).unwrap_err();
    assert!(matches!(err, CoreError::VmCrashed(ref s) if s == "enrollment.prepare"));
    // The dead incarnation refuses everything.
    assert!(matches!(
        tb.vm.sweep_pending_enrollments(),
        Err(CoreError::VmCrashed(_))
    ));

    // The manager stays down well past the orphan grace window.
    tb.clock.advance(600);
    let report = tb.recover_vm().unwrap();
    assert_eq!(report.orphans_aborted, 1);
    assert_eq!(report.pending_restored, 0);
    assert_eq!(report.enrollments_restored, 0);

    // Serial 3 (the first leaf after the controller cert) was orphaned:
    // revoked, with its notice queued (no agent is listening here).
    assert!(tb.vm.credential_is_revoked(3));
    assert!(tb
        .notifier
        .pending()
        .iter()
        .any(|n| n.serial == 3 && n.host_id == "host-0"));

    // Fresh incarnation, fresh trust: the host must re-attest first.
    let err = tb.vm.begin_vnf_attestation("host-0", "vnf-orphan").unwrap_err();
    assert!(matches!(err, CoreError::WorkflowViolation(_)));
    tb.attest_host(0).unwrap();
    let certificate = tb.enroll(0, &guard).unwrap();
    assert!(certificate.serial() > 3, "the orphaned serial is never reused");
}

/// Snapshot-seeded recovery and full-log replay converge to the same
/// state; only the replay work differs.
#[test]
fn snapshot_and_full_replay_agree() {
    let run = |compaction: u64| {
        let mut tb = TestbedBuilder::new(b"snapshot equivalence")
            .durable()
            .wal_compaction(compaction)
            .build();
        tb.attest_host(0).unwrap();
        for i in 0..5 {
            let guard = tb.deploy_guard(0, &format!("vnf-{i}"), 1).unwrap();
            tb.enroll(0, &guard).unwrap();
        }
        tb.vm
            .revoke_credential(3, RevocationReason::KeyCompromise)
            .unwrap();
        let report = tb.recover_vm().unwrap();
        (tb, report)
    };
    let (tb_snap, report_snap) = run(4);
    let (tb_full, report_full) = run(0);

    assert!(report_snap.from_snapshot);
    assert!(!report_full.from_snapshot);
    assert!(
        report_snap.replayed_records < report_full.replayed_records,
        "the snapshot must absorb most of the log"
    );

    let view = |tb: &Testbed| {
        tb.vm
            .enrollments()
            .map(|e| (e.serial, e.vnf_name.clone(), e.host_id.clone(), e.revoked))
            .collect::<Vec<_>>()
    };
    assert_eq!(view(&tb_snap), view(&tb_full));
    assert_eq!(tb_snap.vm.issued_count(), tb_full.vm.issued_count());
    assert!(tb_snap.vm.credential_is_revoked(3));
    assert!(tb_full.vm.credential_is_revoked(3));
}

/// `GET /vm/recovery` serves the last recovery report and live WAL
/// occupancy to operators, exactly as a collector would scrape it.
#[test]
fn recovery_report_is_served_over_the_operator_api() {
    let plan = CrashPlan::seeded(42);
    plan.crash_once("revocation.revoke");
    let mut tb = TestbedBuilder::new(b"recovery api")
        .durable()
        .crash_plan(plan)
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-api", 1).unwrap();
    let certificate = tb.enroll(0, &guard).unwrap();

    let err = tb
        .vm
        .revoke_credential(certificate.serial(), RevocationReason::KeyCompromise)
        .unwrap_err();
    assert!(matches!(err, CoreError::VmCrashed(_)));
    let report = tb.recover_vm().unwrap();
    assert_eq!(report.generation, 1);
    // WAL-before-response: the revocation the caller never saw confirmed
    // still survived the crash.
    assert!(tb.vm.credential_is_revoked(certificate.serial()));

    let network = tb.network.clone();
    let vm = tb.vm_service();
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(tb.ias));
    let _api = serve_vm_api(&network, "vm:8443", vm, ias, "controller").unwrap();
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());

    let body = client
        .request(&Request::get("/vm/recovery"))
        .unwrap()
        .parse_json()
        .unwrap();
    assert_eq!(body.get("recovered").and_then(Json::as_bool), Some(true));
    assert_eq!(body.get("generation").and_then(Json::as_i64), Some(1));
    assert_eq!(body.get("orphans_aborted").and_then(Json::as_i64), Some(0));
    assert_eq!(body.get("enrollments_restored").and_then(Json::as_i64), Some(1));
    let store = body.get("store").expect("store occupancy block");
    assert!(store.get("log_frames").and_then(Json::as_i64).unwrap() > 0);
}

/// A never-crashed manager reports `recovered: false` — the route is
/// always live, so dashboards need no special-casing.
#[test]
fn recovery_route_on_a_fresh_manager_reports_nothing() {
    let tb = TestbedBuilder::new(b"fresh vm api").durable().build();
    let network = tb.network.clone();
    let vm = tb.vm_service();
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(tb.ias));
    let _api = serve_vm_api(&network, "vm:8443", vm, ias, "controller").unwrap();
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());
    let body = client
        .request(&Request::get("/vm/recovery"))
        .unwrap()
        .parse_json()
        .unwrap();
    assert_eq!(body.get("recovered").and_then(Json::as_bool), Some(false));
    assert!(body.get("generation").is_none());
}
