//! End-to-end distributed tracing over the fault-injected fabric.
//!
//! One operator-rooted trace follows an enrollment across every process
//! boundary in Figure 1: the VM's REST API, the Verification Manager's
//! workflow spans, the remote IAS round-trips (with per-attempt retry
//! children while the IAS link is stalled), the host agent, and the SDN
//! controller's north-bound API — through a mid-enrollment crash of the
//! manager and its recovery into a new incarnation. The assembled trace
//! must come back from `GET /vm/traces/{id}` as a *single connected tree*
//! whose annotations name the fault site and the recovery generation.

use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use vnfguard::controller::{NorthboundClient, SecurityMode};
use vnfguard::core::crash::CrashPlan;
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::core::remote::{serve_ias, serve_vm_api, HostAgent, HostAgentState};
use vnfguard::core::remote::RemoteIas;
use vnfguard::core::resilience::{CircuitBreaker, RetryPolicy};
use vnfguard::encoding::Json;
use vnfguard::ias::QuoteVerifier;
use vnfguard::net::http::Request;
use vnfguard::net::server::HttpClient;
use vnfguard::net::FaultPlan;
use vnfguard::telemetry::Telemetry;

/// Walk a `/vm/traces/{id}` span tree, collecting the services, span names
/// and `(kind, detail)` annotation pairs of every node.
fn collect(
    node: &Json,
    services: &mut BTreeSet<String>,
    names: &mut Vec<String>,
    annotations: &mut Vec<(String, String)>,
) {
    if let Some(service) = node.get("service").and_then(Json::as_str) {
        services.insert(service.to_string());
    }
    if let Some(name) = node.get("name").and_then(Json::as_str) {
        names.push(name.to_string());
    }
    if let Some(list) = node.get("annotations").and_then(Json::as_array) {
        for a in list {
            let kind = a.get("kind").and_then(Json::as_str).unwrap_or("");
            let detail = a.get("detail").and_then(Json::as_str).unwrap_or("");
            annotations.push((kind.to_string(), detail.to_string()));
        }
    }
    if let Some(children) = node.get("children").and_then(Json::as_array) {
        for child in children {
            collect(child, services, names, annotations);
        }
    }
}

#[test]
fn faulted_crashed_enrollment_assembles_one_connected_trace() {
    let crash = CrashPlan::seeded(11);
    crash.crash_once("enrollment.commit");
    let telemetry = Telemetry::new();
    let mut tb = TestbedBuilder::new(b"tracing drill")
        .mode(SecurityMode::Http)
        .telemetry(telemetry.clone())
        .tracing(1.0)
        .durable()
        .crash_plan(crash)
        .build();
    let network = tb.network.clone();
    let clock = tb.clock.clone();
    let faults = FaultPlan::seeded(5);
    network.install_faults(&faults);

    // IAS as its own HTTP service, reached through a resilient client.
    let ias_service = std::mem::replace(
        &mut tb.ias,
        vnfguard::ias::AttestationService::new(b"placeholder"),
    );
    let report_key = ias_service.report_signing_key();
    let (_ias_handle, _ias_shared) = serve_ias(&network, "ias:443", ias_service).unwrap();
    let remote_ias = RemoteIas::new(&network, "ias:443", report_key)
        .with_resilience(
            clock.clone(),
            RetryPolicy::new(6, 1, 8).with_seed(5),
            CircuitBreaker::new(32, 600),
        )
        .with_telemetry(&telemetry);

    // Host agent serving host-0's enclaves, with trace instrumentation.
    // `deploy_guard` (not a bare `trust_enclave`) so the whitelist entry
    // lands in the trust log and survives manager recovery.
    let guard = tb.deploy_guard(0, "vnf-traced", 1).unwrap();
    let host = tb.hosts.remove(0);
    let mut guards = HashMap::new();
    guards.insert("vnf-traced".to_string(), Arc::new(guard));
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(guards),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(tb.vm.share_hmac_key()),
    });
    let agent_clock = clock.clone();
    let _agent =
        HostAgent::serve_traced(&network, state, &telemetry, move || agent_clock.now()).unwrap();

    // The manager behind its REST API: the server routes against a clone
    // of the testbed's service handle.
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(remote_ias));
    let _api = serve_vm_api(&network, "vm:8443", tb.vm_service(), ias, "controller").unwrap();
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());

    // The operator's root span: everything below joins this trace.
    let (root, root_span) = telemetry.trace_root("operator", "enrollment_drill", clock.now());
    assert!(root.is_recording(), "sample rate 1.0 must record the root");
    let root_hex = format!("{:032x}", root.trace_id);

    // Stall the IAS link so the first round-trip times out and retries;
    // a background hand lifts the stall while the retry is in flight.
    faults.stall("ias:443");
    let lift = faults.clone();
    let unstaller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(1100));
        lift.unstall("ias:443");
    });
    let response = client
        .request(&Request::post("/vm/hosts/host-0/attest").with_trace(&root))
        .unwrap();
    assert!(response.status.is_success(), "{:?}", response.status);
    unstaller.join().unwrap();

    // Enrollment crashes the manager at the commit site.
    let response = client
        .request(&Request::post("/vm/hosts/host-0/vnfs/vnf-traced/enroll").with_trace(&root))
        .unwrap();
    assert!(!response.status.is_success(), "the crash plan must fire");
    // The error response still echoes the request's trace id so the
    // operator can jump from the failure to its trace.
    assert_eq!(
        response.headers.get("x-vnfguard-trace"),
        Some(&root_hex),
        "error responses must carry x-vnfguard-trace"
    );

    // Restart the manager in place: recovery swaps the incarnation inside
    // the shared service handle, so HTTP clients keep the same address and
    // reach the recovered incarnation.
    let report = tb.recover_vm().unwrap();
    assert_eq!(report.generation, 1);

    // The new incarnation trusts no host until it re-attests; then the
    // enrollment goes through.
    let response = client
        .request(&Request::post("/vm/hosts/host-0/attest").with_trace(&root))
        .unwrap();
    assert!(response.status.is_success(), "{:?}", response.status);
    let response = client
        .request(&Request::post("/vm/hosts/host-0/vnfs/vnf-traced/enroll").with_trace(&root))
        .unwrap();
    assert!(response.status.is_success(), "{:?}", response.status);

    // One controller hop in the same trace, via the north-bound client.
    let mut northbound = NorthboundClient::connect_plain(&network, &tb.controller_addr).unwrap();
    northbound.set_trace_context(Some(root.clone()));
    northbound.summary().unwrap();

    // Close the root span, then read the assembled trace back over HTTP.
    drop(root_span);
    let index = client
        .request(&Request::get("/vm/traces"))
        .unwrap()
        .parse_json()
        .unwrap();
    let traces = index.get("traces").and_then(Json::as_array).unwrap();
    let summary = traces
        .iter()
        .find(|t| t.get("trace_id").and_then(Json::as_str) == Some(root_hex.as_str()))
        .expect("the drill's trace is listed");
    assert_eq!(
        summary.get("root").and_then(Json::as_str),
        Some("enrollment_drill")
    );

    let tree = client
        .request(&Request::get(&format!("/vm/traces/{root_hex}")))
        .unwrap()
        .parse_json()
        .unwrap();
    let roots = tree.get("roots").and_then(Json::as_array).unwrap();
    assert_eq!(roots.len(), 1, "the trace must be one connected tree");

    let mut services = BTreeSet::new();
    let mut names = Vec::new();
    let mut annotations = Vec::new();
    collect(&roots[0], &mut services, &mut names, &mut annotations);

    // Every tier of the deployment contributed spans to the one trace.
    for service in ["operator", "vm_api", "vm", "ias", "agent", "controller"] {
        assert!(services.contains(service), "missing {service}: {services:?}");
    }
    for name in ["host_attestation", "vnf_enrollment", "ias_roundtrip"] {
        assert!(names.iter().any(|n| n == name), "missing span {name}: {names:?}");
    }
    // The stalled round-trip produced per-attempt retry children.
    let attempts = names.iter().filter(|n| n.starts_with("ias_attempt_")).count();
    assert!(attempts >= 2, "expected retry attempts, got {names:?}");

    // Annotations name the fault site, the crash site and the recovery
    // generation.
    assert!(
        annotations
            .iter()
            .any(|(kind, detail)| kind == "fault" && detail.contains("ias:443")),
        "no fault annotation naming ias:443: {annotations:?}"
    );
    assert!(
        annotations
            .iter()
            .any(|(kind, detail)| kind == "crash" && detail.contains("enrollment.commit")),
        "no crash annotation naming the site: {annotations:?}"
    );
    assert!(
        annotations
            .iter()
            .any(|(kind, detail)| kind == "recovery" && detail.contains("generation 1")),
        "no recovery annotation naming the generation: {annotations:?}"
    );

    // The alternative renderings serve from the same route.
    let ascii = client
        .request(&Request::get(&format!("/vm/traces/{root_hex}?format=ascii")))
        .unwrap();
    let waterfall = String::from_utf8(ascii.body).unwrap();
    assert!(waterfall.contains("enrollment_drill"));
    assert!(waterfall.contains('#'), "waterfall bars missing:\n{waterfall}");
    let chrome = client
        .request(&Request::get(&format!("/vm/traces/{root_hex}?format=chrome")))
        .unwrap();
    let chrome_doc = chrome.parse_json().unwrap();
    assert!(
        chrome_doc.as_array().map(|a| a.len()).unwrap_or(0) >= names.len(),
        "chrome export must carry one event per span"
    );
}

#[test]
fn trace_ids_are_deterministic_per_deployment_seed() {
    let roots: Vec<u128> = (0..2)
        .map(|_| {
            let telemetry = Telemetry::new();
            let _tb = TestbedBuilder::new(b"trace determinism")
                .telemetry(telemetry.clone())
                .tracing(1.0)
                .build();
            let (ctx, span) = telemetry.trace_root("operator", "probe", 0);
            drop(span);
            ctx.trace_id
        })
        .collect();
    assert_eq!(roots[0], roots[1], "same seed, same trace ids");

    let telemetry = Telemetry::new();
    let _tb = TestbedBuilder::new(b"a different seed")
        .telemetry(telemetry.clone())
        .tracing(1.0)
        .build();
    let (ctx, span) = telemetry.trace_root("operator", "probe", 0);
    drop(span);
    assert_ne!(roots[0], ctx.trace_id, "different seed, different ids");
}

#[test]
fn untraced_requests_stay_untraced_and_the_surface_validates_input() {
    let telemetry = Telemetry::new();
    let mut tb = TestbedBuilder::new(b"tracing off")
        .telemetry(telemetry.clone())
        .build();
    let network = tb.network.clone();
    tb.attest_host(0).unwrap();
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(std::mem::replace(
        &mut tb.ias,
        vnfguard::ias::AttestationService::new(b"placeholder"),
    )));
    let _api = serve_vm_api(&network, "vm:8443", tb.vm_service(), ias, "controller").unwrap();
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());

    // A request without a traceparent makes no server span and gets no
    // trace echo header.
    let response = client.request(&Request::get("/vm/status")).unwrap();
    assert!(response.status.is_success());
    assert!(!response.headers.contains_key("x-vnfguard-trace"));
    assert_eq!(telemetry.traces().span_count(), 0);

    // The trace surface rejects garbage and misses cleanly.
    let bad = client.request(&Request::get("/vm/traces/zzz")).unwrap();
    assert_eq!(bad.status.code(), 400);
    let missing = client
        .request(&Request::get(&format!("/vm/traces/{:032x}", 0xdead_beefu128)))
        .unwrap();
    assert_eq!(missing.status.code(), 404);
    let unknown_format = client
        .request(&Request::get(&format!(
            "/vm/traces/{:032x}?format=svg",
            0xdead_beefu128
        )))
        .unwrap();
    assert!(unknown_format.status.code() == 400 || unknown_format.status.code() == 404);
}
