//! Property tests for the sealed store's replay semantics — the invariant
//! the replication standby apply path relies on.
//!
//! A standby never applies a frame twice (duplicates are skipped by
//! sequence number) and may be promoted at any point in the stream, so
//! two properties carry the whole failover design:
//!
//! - **replay idempotence**: replaying the same log is a pure read —
//!   doing it twice (before or after compaction, or through a snapshot
//!   round-trip) yields the same `ManagerState`;
//! - **prefix consistency**: every strict prefix of a valid WAL replays
//!   to a valid *earlier* manager state — `check_invariants` passes and
//!   the monotone counters (serials, issuance, CRL number, CA epoch)
//!   never run backwards along the prefix chain.

use proptest::collection::vec;
use proptest::prelude::*;
use vnfguard::sgx::platform::SgxPlatform;
use vnfguard::sgx::sigstruct::EnclaveAuthor;
use vnfguard::store::{ManagerState, Media, StateStore, StateVault, WalRecord};

/// Model of what the live manager would journal: tracks enough state to
/// only ever emit record sequences a real deployment could produce (the
/// prefix-consistency property is about valid logs, not arbitrary ones).
#[derive(Default)]
struct ScriptModel {
    next_serial: u64,
    pending: Vec<u64>,
    committed: Vec<u64>,
    revoked: Vec<u64>,
    queued_notices: Vec<u64>,
    ca_epoch: u64,
    rotation_prepared: bool,
    crl_number: u64,
    generation: u64,
}

impl ScriptModel {
    fn issue(&mut self, at: u64) -> WalRecord {
        self.next_serial += 1;
        WalRecord::CertIssued {
            serial: self.next_serial,
            subject: format!("cn-{}", self.next_serial),
            at,
        }
    }
}

/// Deterministically expand opcode bytes into a valid journal script. Each
/// opcode picks the next action *admissible in the current model state*;
/// inadmissible picks fall through to a plain issuance so every byte
/// produces at least one record.
fn script(ops: &[u8]) -> Vec<WalRecord> {
    let mut model = ScriptModel::default();
    let mut records = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let at = 1_000 + i as u64;
        match op % 10 {
            // Two-phase enrollment: issue + prepare (serials must exist
            // before any record names them).
            0 | 1 => {
                records.push(model.issue(at));
                let serial = model.next_serial;
                records.push(WalRecord::EnrollmentPrepared {
                    serial,
                    vnf_name: format!("vnf-{serial}"),
                    host_id: format!("host-{}", serial % 3),
                    mrenclave: [serial as u8; 32],
                    provisioning_key_hash: [!(serial as u8); 32],
                    backend: (serial % 2) as u8,
                    at,
                });
                model.pending.push(serial);
            }
            2 | 3 if !model.pending.is_empty() => {
                let serial = model.pending.remove((*op as usize) % model.pending.len());
                records.push(WalRecord::EnrollmentCommitted { serial, at });
                model.committed.push(serial);
            }
            4 if !model.pending.is_empty() => {
                let serial = model.pending.remove((*op as usize) % model.pending.len());
                records.push(WalRecord::EnrollmentAborted {
                    serial,
                    reason: "provisioning rolled back".into(),
                    at,
                });
                model.revoked.push(serial);
            }
            5 if !model.committed.is_empty() => {
                let serial = model.committed.remove((*op as usize) % model.committed.len());
                records.push(WalRecord::CredentialRevoked {
                    serial,
                    reason_code: 1,
                    at,
                });
                records.push(WalRecord::RevocationQueued {
                    host_id: format!("host-{}", serial % 3),
                    serial,
                    tag: [serial as u8; 32],
                    at,
                });
                model.revoked.push(serial);
                model.queued_notices.push(serial);
            }
            6 if !model.queued_notices.is_empty() => {
                let serial = model
                    .queued_notices
                    .remove((*op as usize) % model.queued_notices.len());
                records.push(WalRecord::RevocationDelivered {
                    host_id: format!("host-{}", serial % 3),
                    serial,
                    at,
                });
            }
            7 => {
                model.crl_number += 1;
                records.push(WalRecord::CrlIssued {
                    number: model.crl_number,
                    at,
                });
            }
            // CA rotation: prepare, then commit naming freshly issued
            // root + cross serials (epochs stay contiguous).
            8 => {
                if model.rotation_prepared {
                    records.push(model.issue(at));
                    let root_serial = model.next_serial;
                    records.push(model.issue(at));
                    let cross_serial = model.next_serial;
                    model.ca_epoch += 1;
                    model.rotation_prepared = false;
                    records.push(WalRecord::CaRotationCommitted {
                        epoch: model.ca_epoch,
                        root_serial,
                        cross_serial,
                        at,
                    });
                } else {
                    model.rotation_prepared = true;
                    records.push(WalRecord::CaRotationPrepared {
                        epoch: model.ca_epoch + 1,
                        at,
                    });
                }
            }
            9 if !model.committed.is_empty() => {
                let old = model.committed[(*op as usize) % model.committed.len()];
                records.push(model.issue(at));
                let serial = model.next_serial;
                records.push(WalRecord::CredentialRenewed {
                    old_serial: old,
                    new_serial: serial,
                    vnf_name: format!("vnf-{old}"),
                    host_id: format!("host-{}", old % 3),
                    mrenclave: [old as u8; 32],
                    provisioning_key_hash: [!(old as u8); 32],
                    backend: (old % 2) as u8,
                    at,
                });
                model.committed.push(serial);
            }
            _ => {
                model.generation += 1;
                records.push(WalRecord::RecoveryCompleted {
                    generation: model.generation,
                    at,
                });
            }
        }
    }
    records
}

fn fresh_store(compaction: u64) -> StateStore {
    let platform = SgxPlatform::new(b"store props vm");
    let author = EnclaveAuthor::from_seed(&[7; 32]);
    let vault = StateVault::load(&platform, &author).expect("vault loads");
    StateStore::new(Media::new(), vault).with_compaction(compaction)
}

/// Fold a record slice directly (the reference replay, no sealing).
fn fold(records: &[WalRecord]) -> ManagerState {
    let mut state = ManagerState::default();
    for record in records {
        state.apply(record);
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying the same log twice is a no-op: `replay` is a pure read,
    /// before and after compaction, and a snapshot round-trip through
    /// `install_state` reproduces the same state byte-for-byte.
    #[test]
    fn replay_is_idempotent(ops in vec(any::<u8>(), 1..60), compaction in 0u64..20) {
        let records = script(&ops);
        let store = fresh_store(compaction);
        for record in &records {
            store.append(record).unwrap();
        }
        let first = store.replay().unwrap().state;
        let second = store.replay().unwrap().state;
        prop_assert_eq!(&first, &second, "replay mutated the log");
        prop_assert_eq!(&first, &fold(&records), "sealed replay diverged from direct fold");

        // Forced compaction folds the log into a sealed snapshot; the
        // replayed state must not change.
        store.compact().unwrap();
        let compacted = store.replay().unwrap().state;
        prop_assert_eq!(&first, &compacted, "compaction changed the replayed state");

        // Snapshot round-trip (the standby catch-up path).
        let catch_up = fresh_store(0);
        catch_up.install_state(&first).unwrap();
        prop_assert_eq!(&first, &catch_up.replay().unwrap().state, "install_state round-trip diverged");
    }

    /// Every strict prefix of a valid WAL replays to a valid earlier
    /// state: invariants hold and the monotone counters never regress as
    /// the prefix grows — which is why a standby frozen at any ack
    /// boundary is a legal promotion candidate.
    #[test]
    fn prefixes_replay_to_valid_earlier_states(ops in vec(any::<u8>(), 1..40)) {
        let records = script(&ops);
        let mut state = ManagerState::default();
        let mut prev = state.clone();
        for (i, record) in records.iter().enumerate() {
            state.apply(record);
            state
                .check_invariants()
                .unwrap_or_else(|e| panic!("prefix {}: {e}", i + 1));
            prop_assert!(state.max_serial >= prev.max_serial, "max_serial regressed");
            prop_assert!(state.issued >= prev.issued, "issued regressed");
            prop_assert!(state.crl_number >= prev.crl_number, "crl_number regressed");
            prop_assert!(state.ca_epoch >= prev.ca_epoch, "ca_epoch regressed");
            prop_assert!(state.generation >= prev.generation, "generation regressed");
            prop_assert!(
                state.rotations.len() >= prev.rotations.len(),
                "committed rotations regressed"
            );
            // A serial that reached the committed-or-revoked frontier
            // never leaves it (enrollments stay, revocations are final).
            for serial in prev.revoked.keys() {
                prop_assert!(state.revoked.contains_key(serial), "revocation forgotten");
            }
            for serial in prev.enrollments.keys() {
                prop_assert!(
                    state.enrollments.contains_key(serial),
                    "committed enrollment vanished"
                );
            }
            prev = state.clone();
        }
    }

    /// A torn tail replays to exactly the state of some strict prefix —
    /// never a mixture, never garbage (the rule that lets a standby treat
    /// its own torn log as merely "behind" at promotion time).
    #[test]
    fn torn_tail_replays_to_a_prefix_state(ops in vec(any::<u8>(), 2..30), tear in 1usize..64) {
        let records = script(&ops);
        let store = fresh_store(0);
        for record in &records {
            store.append(record).unwrap();
        }
        store.media().tear_tail(tear);
        let replayed = store.replay().unwrap().state;
        let mut prefix_states = Vec::with_capacity(records.len() + 1);
        let mut state = ManagerState::default();
        prefix_states.push(state.clone());
        for record in &records {
            state.apply(record);
            prefix_states.push(state.clone());
        }
        prop_assert!(
            prefix_states.contains(&replayed),
            "torn-tail replay is not any prefix state"
        );
    }

    /// A coalesced flush is byte-equivalent to sequential appends on
    /// replay: the same record sequence pushed through `append_group` in
    /// arbitrary chunkings replays to the same state (and the same frame
    /// accounting) as one-record-per-flush appends. Group commit changes
    /// *when* the medium is flushed, never *what* the log means.
    #[test]
    fn group_commit_replay_matches_sequential(
        ops in vec(any::<u8>(), 1..50),
        chunk_sizes in vec(1usize..6, 1..50),
    ) {
        let records = script(&ops);
        let sequential = fresh_store(0);
        for record in &records {
            sequential.append(record).unwrap();
        }
        let grouped = fresh_store(0).with_group_commit(true);
        let mut cursor = 0;
        let mut chunks = chunk_sizes.iter().cycle();
        while cursor < records.len() {
            let take = (*chunks.next().unwrap()).min(records.len() - cursor);
            grouped.append_group(&records[cursor..cursor + take]).unwrap();
            cursor += take;
        }
        let grouped_state = grouped.replay().unwrap().state;
        let sequential_state = sequential.replay().unwrap().state;
        prop_assert_eq!(&grouped_state, &sequential_state, "group-commit replay diverged");
        prop_assert_eq!(&grouped_state, &fold(&records), "group-commit replay diverged from fold");
        // Frame accounting counts group members individually, so the two
        // logs agree on how many records they hold.
        prop_assert_eq!(
            grouped.stats().log_frames,
            sequential.stats().log_frames,
            "group frames not counted per member"
        );
    }

    /// A tear inside a group frame truncates to the last *whole group*:
    /// the replayed state always sits on a group-commit boundary, never in
    /// the middle of a coalesced batch. Each group is atomic — all of its
    /// records survive or none do — which is what lets a workflow coalesce
    /// its journal entries into one flush without weakening
    /// WAL-before-response.
    #[test]
    fn torn_group_truncates_to_whole_group_boundary(
        ops in vec(any::<u8>(), 2..40),
        chunk_sizes in vec(1usize..6, 1..40),
        tear in 1usize..96,
    ) {
        let records = script(&ops);
        let store = fresh_store(0).with_group_commit(true);
        let mut boundary_states = vec![ManagerState::default()];
        let mut cursor = 0;
        let mut chunks = chunk_sizes.iter().cycle();
        while cursor < records.len() {
            let take = (*chunks.next().unwrap()).min(records.len() - cursor);
            store.append_group(&records[cursor..cursor + take]).unwrap();
            cursor += take;
            boundary_states.push(fold(&records[..cursor]));
        }
        store.media().tear_tail(tear);
        let replayed = store.replay().unwrap().state;
        prop_assert!(
            boundary_states.contains(&replayed),
            "torn group frame replayed to a non-boundary state (partial group applied)"
        );
    }
}

/// Eight parallel clients against a four-shard service handle: every
/// enrollment succeeds, every serial is unique, and each serial lands in
/// the serial span owned by the shard that the VNF's identity routes to —
/// the store-level guarantee (disjoint per-shard sequence spaces) that
/// makes sharded WALs mergeable without coordination.
#[test]
fn concurrent_enrollments_issue_unique_serials_across_shards() {
    use std::sync::Arc;
    use vnfguard::core::deployment::TestbedBuilder;
    use vnfguard::core::service::shard_of_vnf;

    const CLIENTS: usize = 8;
    const SHARDS: usize = 4;
    const SHARD_SERIAL_SPAN: u64 = 1 << 40;

    let mut tb = TestbedBuilder::new(b"store-props-shards").shards(SHARDS).build();
    tb.attest_host(0).expect("host attestation");
    let mut guards = Vec::new();
    for i in 0..CLIENTS {
        guards.push(tb.deploy_guard(0, &format!("vnf-conc-{i}"), 1).expect("guard"));
    }
    let vm = tb.vm_service();
    let ias = Arc::new(parking_lot::Mutex::new(std::mem::replace(
        &mut tb.ias,
        vnfguard::ias::AttestationService::new(b"placeholder"),
    )));
    let platform = &tb.hosts[0].platform;
    let serials: Vec<(String, u64)> = std::thread::scope(|scope| {
        guards
            .iter()
            .map(|guard| {
                let vm = vm.clone();
                let ias = ias.clone();
                scope.spawn(move || {
                    let challenge = vm.begin_vnf_attestation("host-0", &guard.name).unwrap();
                    let key = guard.provisioning_key().unwrap();
                    let quote = guard
                        .quote(platform, &challenge.nonce, challenge.nonce)
                        .unwrap();
                    let (_, certificate) = vm
                        .complete_vnf_enrollment(
                            &mut *ias.lock(),
                            challenge.id,
                            &quote.encode(),
                            &key,
                            "controller",
                        )
                        .unwrap();
                    (guard.name.clone(), certificate.serial())
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });

    let mut seen = std::collections::HashSet::new();
    for (name, serial) in &serials {
        assert!(seen.insert(*serial), "serial {serial} issued twice");
        let shard = (serial / SHARD_SERIAL_SPAN) as usize;
        assert_eq!(
            shard,
            shard_of_vnf(name, SHARDS),
            "serial {serial} for {name} landed outside its shard's span"
        );
    }
    assert_eq!(seen.len(), CLIENTS, "expected one distinct serial per client");
}
