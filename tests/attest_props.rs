//! Property tests for the attestation backends — the cross-backend and
//! forged-evidence invariants the multi-TEE trust story rests on.
//!
//! The properties are all refusal-shaped: across arbitrary seeds,
//! measurements and mutations, evidence that is forged, stale, truncated,
//! bit-flipped, or presented to the wrong backend's appraiser can never
//! yield a `Verified`-grade appraisal. The positive path (a healthy
//! platform appraising cleanly) rides along in each property as the
//! control arm, so a vacuous rejection (e.g. a verifier that rejects
//! everything) fails the test too.

use proptest::collection::vec;
use proptest::prelude::*;
use vnfguard::attest::snp::{
    launch_measurement, normalize_measurement, AmdRoot, SnpFault, SnpPlatform, SnpVerifier,
};
use vnfguard::attest::{
    AppraisalPolicy, AttestError, AttestationBackend, BackendKind, TcbStatus,
};
use vnfguard::controller::clock::SimClock;
use vnfguard::ias::AttestationService;
use vnfguard::sgx::enclave::{EnclaveCode, EnclaveContext};
use vnfguard::sgx::platform::{PlatformConfig, SgxPlatform};
use vnfguard::sgx::sigstruct::EnclaveAuthor;
use vnfguard::sgx::transition::TransitionModel;
use vnfguard::sgx::SgxError;

struct Null(Vec<u8>);
impl EnclaveCode for Null {
    fn image(&self) -> Vec<u8> {
        self.0.clone()
    }
    fn on_call(
        &mut self,
        _ctx: &mut EnclaveContext,
        op: u16,
        _input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        Err(SgxError::BadCall(op))
    }
}

/// A real SGX quote from a platform seeded with `seed`, plus the IAS that
/// trusts it — the genuine article for cross-backend presentation.
fn sgx_quote(seed: &[u8]) -> (Vec<u8>, AttestationService) {
    let platform =
        SgxPlatform::with_config(seed, PlatformConfig::default(), TransitionModel::free());
    let author = EnclaveAuthor::from_seed(&[7; 32]);
    let image = b"cross-backend app";
    let mrenclave = SgxPlatform::measure_image(image, 4096);
    let signed = author.sign_enclave(mrenclave, 1, 1, false);
    let enclave = platform
        .load_enclave(&signed, 4096, Box::new(Null(image.to_vec())))
        .unwrap();
    let qe = platform.quoting_enclave();
    let report = enclave.create_report(&qe.target_info(), [0u8; 64]);
    let quote = qe.quote(&report, [1; 32]).unwrap().encode();
    let mut ias = AttestationService::new(b"attest-props ias");
    ias.register_member(platform.epid_group_id(), platform.attestation_public_key());
    (quote, ias)
}

fn snp_fixture(seed: u64, image: &[u8]) -> (SnpPlatform, SnpVerifier) {
    let root = AmdRoot::new(&seed.to_be_bytes());
    let platform = SnpPlatform::provision(
        &root,
        &[&seed.to_be_bytes()[..], b".chip"].concat(),
        launch_measurement(image),
        7,
    );
    let verifier = SnpVerifier::new(root.ark_public(), SimClock::at(1_700_000_000));
    (platform, verifier)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A forged report signature — signed by a key the VCEK chain does not
    /// endorse — is rejected for every platform seed, while the same
    /// platform without the fault appraises cleanly.
    #[test]
    fn forged_snp_signature_never_verifies(seed in any::<u64>(), rd in any::<u8>()) {
        let (platform, mut verifier) = snp_fixture(seed, b"forged-prop cvm");
        let report_data = [rd; 64];
        prop_assert!(verifier.appraise(&platform.attest_self(report_data), b"").is_ok());
        let forged = platform.with_fault(SnpFault::ForgedSignature);
        let err = verifier.appraise(&forged.attest_self(report_data), b"");
        prop_assert!(matches!(err, Err(AttestError::Rejected(_))), "{err:?}");
    }

    /// A stale VCEK endorsement fails closed once the deployment clock has
    /// passed its expiry, no matter the seed.
    #[test]
    fn stale_vcek_never_verifies(seed in any::<u64>(), now in 2u64..u64::MAX) {
        let root = AmdRoot::new(&seed.to_be_bytes());
        let platform = SnpPlatform::provision(
            &root,
            &seed.to_be_bytes(),
            launch_measurement(b"stale-prop cvm"),
            7,
        )
        .with_fault(SnpFault::StaleVcek);
        // The fault hook's stale VCEK expired at t=1; any later clock refuses.
        let mut verifier = SnpVerifier::new(root.ark_public(), SimClock::at(now));
        match verifier.appraise(&platform.attest_self([0; 64]), b"") {
            Err(AttestError::Rejected(msg)) => prop_assert!(msg.contains("expired"), "{msg}"),
            other => prop_assert!(false, "stale VCEK accepted: {other:?}"),
        }
    }

    /// Severing the evidence bundle at any point — which truncates the
    /// VCEK chain, the report, or the signatures — never appraises Ok.
    #[test]
    fn truncated_evidence_never_verifies(seed in any::<u64>(), cut in any::<u64>()) {
        let (platform, mut verifier) = snp_fixture(seed, b"truncate-prop cvm");
        let evidence = platform.attest_self([3; 64]);
        prop_assert!(verifier.appraise(&evidence, b"").is_ok());
        let len = (cut as usize) % evidence.len(); // strictly shorter than the full bundle
        prop_assert!(verifier.appraise(&evidence[..len], b"").is_err());
    }

    /// Flipping any single bit of a valid bundle lands in structure, a
    /// signed field, or a signature — none of which can still verify.
    #[test]
    fn bitflipped_evidence_never_verifies(seed in any::<u64>(), pos in any::<u64>(), bit in 0u8..8) {
        let (platform, mut verifier) = snp_fixture(seed, b"bitflip-prop cvm");
        let mut evidence = platform.attest_self([5; 64]);
        let i = (pos as usize) % evidence.len();
        evidence[i] ^= 1 << bit;
        prop_assert!(verifier.appraise(&evidence, b"").is_err());
    }

    /// Evidence for one CVM image never satisfies a relying party pinned
    /// to a different image's launch measurement: the normalized registers
    /// differ, so whitelist matching cannot cross images.
    #[test]
    fn mismatched_launch_measurement_never_matches(
        seed in any::<u64>(),
        img_a in vec(any::<u8>(), 1..48),
        img_b in vec(any::<u8>(), 1..48),
    ) {
        prop_assume!(img_a != img_b);
        let (platform, mut verifier) = snp_fixture(seed, &img_a);
        let appraisal = verifier.appraise(&platform.attest_self([0; 64]), b"").unwrap();
        let pinned = normalize_measurement(&launch_measurement(&img_b));
        prop_assert_ne!(appraisal.measurement, pinned);
        prop_assert_eq!(
            appraisal.measurement,
            normalize_measurement(&launch_measurement(&img_a))
        );
    }

    /// Arbitrary non-SNP bytes die as structural decode errors before any
    /// cryptography runs.
    #[test]
    fn arbitrary_bytes_are_encoding_errors(seed in any::<u64>(), bytes in vec(any::<u8>(), 0..200)) {
        prop_assume!(!bytes.starts_with(b"SNPE"));
        let (_platform, mut verifier) = snp_fixture(seed, b"garbage-prop cvm");
        let err = verifier.appraise(&bytes, b"");
        prop_assert!(matches!(err, Err(AttestError::Encoding(_))), "{err:?}");
    }

    /// Debug-policy evidence appraises (the fact is surfaced) but both the
    /// strict and lenient policies refuse it — the debug bit is never
    /// waivable by TCB leniency.
    #[test]
    fn debug_policy_always_refused(seed in any::<u64>()) {
        let (platform, mut verifier) = snp_fixture(seed, b"debug-prop cvm");
        let platform = platform.with_fault(SnpFault::DebugPolicy);
        let appraisal = verifier.appraise(&platform.attest_self([0; 64]), b"").unwrap();
        prop_assert!(appraisal.debug);
        prop_assert_eq!(appraisal.tcb, TcbStatus::UpToDate);
        prop_assert!(AppraisalPolicy::strict().check(&appraisal).is_err());
        prop_assert!(AppraisalPolicy::lenient().check(&appraisal).is_err());
    }
}

/// A genuine SGX quote presented to the SNP appraiser is refused
/// structurally (no SNP magic), and genuine SNP evidence presented to the
/// SGX/EPID appraiser is refused by IAS — cross-backend confusion fails
/// closed in both directions, while each backend accepts its own evidence.
#[test]
fn cross_backend_evidence_always_refused() {
    for seed in 0u64..16 {
        let (quote, ias) = sgx_quote(&seed.to_be_bytes());
        let (snp_platform, mut snp_verifier) = snp_fixture(seed, b"cross-prop cvm");
        let snp_evidence = snp_platform.attest_self([0; 64]);

        // Control arms: each backend accepts its own evidence.
        let mut sgx_backend = vnfguard::attest::SgxEpidBackend::new(ias);
        assert_eq!(
            sgx_backend.appraise(&quote, b"n").unwrap().backend,
            BackendKind::SgxEpid
        );
        assert_eq!(
            snp_verifier.appraise(&snp_evidence, b"").unwrap().backend,
            BackendKind::SevSnp
        );

        // SGX quote → SNP appraiser: structural refusal, pre-crypto.
        assert!(matches!(
            snp_verifier.appraise(&quote, b""),
            Err(AttestError::Encoding(_))
        ));

        // SNP evidence → SGX appraiser: IAS can't parse it as a quote and
        // the adapter refuses rather than appraising.
        assert!(sgx_backend.appraise(&snp_evidence, b"n").is_err());
    }
}
