//! Property tests for the health plane's exact histogram aggregation —
//! the invariant the fleet monitor's cross-node merge relies on.
//!
//! Fleet quantiles are computed by merging full log₂ bucket vectors, not
//! by averaging per-node percentiles, so three properties carry the
//! design:
//!
//! - **merge is associative and commutative**: the fleet view must not
//!   depend on scrape order or on how nodes are grouped (a monitor
//!   merging `(primary + standby) + agent-side` must equal
//!   `primary + (standby + agent-side)`);
//! - **merged quantiles are bounded**: a merged quantile never drops
//!   below every part's quantile and never exceeds the merged max —
//!   aggregation cannot invent latency that no node observed;
//! - **exemplars survive the merge**: the slowest observation's trace id
//!   is still attached after merging, so a fleet-wide tail number still
//!   links to `GET /vm/traces/{id}`.

use proptest::collection::vec;
use proptest::prelude::*;
use vnfguard::telemetry::{HistogramSnapshot, Telemetry, EXEMPLAR_CAP};

/// One node's worth of observations: latency values, each optionally
/// carrying a trace id (sampled requests carry one, unsampled don't).
type Part = Vec<(u64, Option<u128>)>;

fn part() -> impl Strategy<Value = Part> {
    vec(
        (
            0u64..2_000_000,
            prop_oneof![Just(None), (1u128..u128::MAX).prop_map(Some)],
        ),
        0..40,
    )
}

/// Record a part through a real [`Histogram`](vnfguard::telemetry::Histogram)
/// and snapshot it — properties run against the production record path,
/// not a reimplementation.
fn snapshot_of(values: &[(u64, Option<u128>)]) -> HistogramSnapshot {
    let telemetry = Telemetry::new();
    let histogram = telemetry.histogram("vnfguard_test_health_props");
    for (value, trace) in values {
        match trace {
            Some(id) => histogram.record_with_exemplar(*value, *id),
            None => histogram.record(*value),
        }
    }
    histogram.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in part(), b in part()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
    }

    #[test]
    fn merge_is_associative(a in part(), b in part(), c in part()) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let left = merged(&merged(&sa, &sb), &sc);
        let right = merged(&sa, &merged(&sb, &sc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_totals_are_exact(a in part(), b in part()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let m = merged(&sa, &sb);
        prop_assert_eq!(m.count, sa.count + sb.count);
        prop_assert_eq!(m.sum, sa.sum + sb.sum);
        prop_assert_eq!(m.max, sa.max.max(sb.max));
        for (i, &count) in m.buckets.iter().enumerate() {
            let a_i = sa.buckets.get(i).copied().unwrap_or(0);
            let b_i = sb.buckets.get(i).copied().unwrap_or(0);
            prop_assert_eq!(count, a_i + b_i, "bucket {}", i);
        }
    }

    #[test]
    fn merged_quantiles_are_bounded(a in part(), b in part()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let m = merged(&sa, &sb);
        for q in [0.5, 0.9, 0.99, 1.0] {
            let (qa, qb, qm) = (sa.quantile(q), sb.quantile(q), m.quantile(q));
            // The union's quantile can't lie below both parts' — merging
            // cannot make the fleet look faster than its fastest node...
            prop_assert!(qm >= qa.min(qb), "q={}: {} < min({}, {})", q, qm, qa, qb);
            // ...and can't exceed the slowest observation anyone made.
            prop_assert!(qm <= m.max, "q={}: {} > max {}", q, qm, m.max);
        }
        // Quantiles stay monotone in q after a merge.
        prop_assert!(m.quantile(0.5) <= m.quantile(0.99));
        prop_assert!(m.quantile(0.99) <= m.quantile(1.0));
    }

    #[test]
    fn slowest_exemplar_survives_merge(a in part(), b in part(), slow_id in 1u128..u128::MAX) {
        // Plant a traced observation strictly slower than everything else:
        // whatever else the nodes saw, the fleet view must keep its trace.
        let mut a = a;
        a.push((10_000_000, Some(slow_id)));
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let m = merged(&sa, &sb);
        prop_assert!(
            m.exemplars.iter().any(|e| e.trace_id == slow_id),
            "slowest trace id lost in merge: {:?}",
            m.exemplars
        );
        // Retention honors the cap and keeps exemplars rank-sorted, so
        // the first entry is always the slowest surviving observation.
        prop_assert!(m.exemplars.len() <= EXEMPLAR_CAP);
        prop_assert!(m
            .exemplars
            .windows(2)
            .all(|w| w[0].value >= w[1].value));
        prop_assert_eq!(m.exemplars[0].trace_id, slow_id);
        // Nothing is invented: every merged exemplar came from a part.
        for exemplar in &m.exemplars {
            prop_assert!(
                sa.exemplars.contains(exemplar) || sb.exemplars.contains(exemplar),
                "merge invented exemplar {:?}",
                exemplar
            );
        }
    }
}
