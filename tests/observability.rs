//! End-to-end observability: one shared [`Telemetry`] bundle wired through
//! the fabric, the IAS, the Verification Manager and its REST surface,
//! exercised over a fault-injected network so the resilience metrics are
//! non-trivial.
//!
//! The scenario drives the full Figure 1 workflow through the operator
//! API (host attestation, then VNF enrollment, with 30% of IAS
//! connections refused so retries fire), then scrapes `GET /vm/metrics`
//! and pages `GET /vm/events?since=` exactly as an external Prometheus /
//! audit collector would.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::core::remote::{serve_ias, serve_vm_api, HostAgent, HostAgentState, RemoteIas};
use vnfguard::core::resilience::{CircuitBreaker, RetryPolicy};
use vnfguard::encoding::Json;
use vnfguard::ias::QuoteVerifier;
use vnfguard::net::http::Request;
use vnfguard::net::server::HttpClient;
use vnfguard::net::{FaultEvent, FaultPlan};
use vnfguard::telemetry::Telemetry;

struct ObservedWorld {
    testbed: vnfguard::core::deployment::Testbed,
    remote_ias: RemoteIas,
    plan: FaultPlan,
    _agent: HostAgent,
    _ias_handle: vnfguard::net::server::ServerHandle,
}

/// A networked deployment sharing one telemetry bundle across every layer,
/// with a seeded fault plan installed on the fabric.
fn observed_world(seed: &[u8], plan_seed: u64) -> ObservedWorld {
    let telemetry = Telemetry::new();
    let mut testbed = TestbedBuilder::new(seed)
        .telemetry(telemetry.clone())
        .build();
    let plan = FaultPlan::seeded(plan_seed);
    testbed.network.install_faults(&plan);

    let ias = std::mem::replace(
        &mut testbed.ias,
        vnfguard::ias::AttestationService::new(b"placeholder"),
    );
    let report_key = ias.report_signing_key();
    let (_ias_handle, _shared) = serve_ias(&testbed.network, "ias:443", ias).unwrap();
    let remote_ias = RemoteIas::new(&testbed.network, "ias:443", report_key)
        .with_resilience(
            testbed.clock.clone(),
            RetryPolicy::new(8, 1, 16).with_seed(plan_seed),
            CircuitBreaker::new(32, 600),
        )
        .with_telemetry(&telemetry);

    let host = testbed.hosts.remove(0);
    let guard = vnfguard::vnf::VnfGuard::load(
        &host.platform,
        &testbed.network,
        &testbed.enclave_author,
        "vnf-obs",
        1,
    )
    .unwrap();
    testbed.vm.trust_enclave(guard.mrenclave(), "vnf-obs-v1");
    let mut guards = HashMap::new();
    guards.insert("vnf-obs".to_string(), Arc::new(guard));
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(guards),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(testbed.vm.share_hmac_key()),
    });
    let _agent = HostAgent::serve(&testbed.network, state).unwrap();

    ObservedWorld {
        testbed,
        remote_ias,
        plan,
        _agent,
        _ias_handle,
    }
}

fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find(|line| line.starts_with(name) && line[name.len()..].starts_with(' '))
        .and_then(|line| line[name.len() + 1..].trim().parse().ok())
}

#[test]
fn metrics_surface_reflects_a_fault_injected_enrollment() {
    let world = observed_world(b"observability e2e", 7);
    let network = world.testbed.network.clone();
    let telemetry = world.testbed.telemetry.clone();
    world.plan.refuse_connections("ias:443", 0.30);

    // Serve the operator API and drive the whole workflow through it.
    let vm = world.testbed.vm_service();
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(world.remote_ias));
    let _api = serve_vm_api(&network, "vm:8443", vm, ias, "controller").unwrap();
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());

    let response = client
        .request(&Request::post("/vm/hosts/host-0/attest"))
        .unwrap();
    assert!(response.status.is_success(), "{:?}", response.status);
    let response = client
        .request(&Request::post("/vm/hosts/host-0/vnfs/vnf-obs/enroll"))
        .unwrap();
    assert!(response.status.is_success(), "{:?}", response.status);

    // The fault plan really refused IAS connections, so the retry counter
    // must be non-trivial.
    let refusals = world
        .plan
        .events()
        .iter()
        .filter(|e| matches!(e, FaultEvent::Refused { addr, .. } if addr == "ias:443"))
        .count();
    assert!(refusals > 0, "fault plan never fired; scenario is vacuous");

    // Scrape the Prometheus surface like a collector would.
    let scrape = client.request(&Request::get("/vm/metrics")).unwrap();
    assert!(scrape.status.is_success());
    assert!(scrape
        .headers
        .iter()
        .any(|(k, v)| k.eq_ignore_ascii_case("content-type") && v.contains("text/plain")));
    let text = String::from_utf8(scrape.body.clone()).unwrap();

    // Workflow counters: one host attestation, one enrollment, no failures.
    assert_eq!(metric_value(&text, "vnfguard_core_host_attestations_total"), Some(1));
    assert_eq!(metric_value(&text, "vnfguard_core_enrollments_total"), Some(1));
    assert_eq!(metric_value(&text, "vnfguard_core_enrollment_failures_total"), Some(0));

    // Resilience counters: retries fired, nothing failed terminally.
    let retries = metric_value(&text, "vnfguard_core_ias_retries_total").unwrap();
    assert!(retries > 0, "30% IAS refusals should force retries:\n{text}");
    assert_eq!(metric_value(&text, "vnfguard_core_ias_failures_total"), Some(0));

    // Fabric + IAS service counters observed the same traffic.
    assert_eq!(
        metric_value(&text, "vnfguard_net_refusals_total"),
        Some(refusals as u64)
    );
    assert!(metric_value(&text, "vnfguard_net_connections_total").unwrap() > 0);
    assert!(metric_value(&text, "vnfguard_ias_requests_total").unwrap() >= 2);

    // Latency histograms carry real samples with full quantile companions.
    for h in [
        "vnfguard_core_host_attestation_micros",
        "vnfguard_core_enrollment_micros",
        "vnfguard_core_ias_roundtrip_micros",
    ] {
        assert!(metric_value(&text, &format!("{h}_count")).unwrap() > 0, "{h} empty");
        for q in ["p50", "p90", "p99", "max"] {
            assert!(text.contains(&format!("{h}_{q} ")), "{h}_{q} missing");
        }
    }

    // The API server metered its own dispatches (attest, enroll, and —
    // depending on when the router counts — this very scrape).
    assert!(metric_value(&text, "vnfguard_core_api_requests_total").unwrap() >= 2);

    // The journal pages through the same audit trail the manager kept.
    let page = client
        .request(&Request::get("/vm/events?since=0"))
        .unwrap()
        .parse_json()
        .unwrap();
    let events = page.get("events").and_then(Json::as_array).unwrap();
    assert!(!events.is_empty());
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"host_attested"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"vnf_enrolled"), "kinds: {kinds:?}");

    // Cursor semantics: `next_seq` resumes after everything served.
    let next_seq = page.get("next_seq").and_then(Json::as_i64).unwrap();
    assert!(next_seq > 0);
    let tail = client
        .request(&Request::get(&format!("/vm/events?since={next_seq}")))
        .unwrap()
        .parse_json()
        .unwrap();
    assert_eq!(
        tail.get("events").and_then(Json::as_array).map(|a| a.len()),
        Some(0)
    );

    // A malformed cursor is a client error, not a panic.
    let bad = client
        .request(&Request::get("/vm/events?since=banana"))
        .unwrap();
    assert_eq!(bad.status.code(), 400);

    // The REST surface and the in-process registry agree.
    assert_eq!(
        metric_value(&telemetry.render_prometheus(), "vnfguard_core_enrollments_total"),
        Some(1)
    );
}

#[test]
fn disabled_telemetry_keeps_the_workflow_silent() {
    // A testbed without explicit telemetry still works; building one with
    // a disabled bundle must record nothing while the workflow succeeds.
    let telemetry = Telemetry::disabled();
    let mut testbed = TestbedBuilder::new(b"observability disabled")
        .telemetry(telemetry.clone())
        .build();
    testbed.attest_host(0).unwrap();
    let deployed = testbed.deploy_guard(0, "vnf-quiet", 1).unwrap();
    testbed.enroll(0, &deployed).unwrap();

    assert_eq!(telemetry.render_prometheus(), "");
    assert!(testbed.vm.events().is_empty());
}
