//! # vnfguard
//!
//! Umbrella crate re-exporting the full vnfguard workspace: a from-scratch
//! reproduction of *"Safeguarding VNF Credentials with Intel SGX"*
//! (Paladi & Karlsson, SIGCOMM Posters & Demos 2017).
//!
//! The system safeguards the TLS client credentials that virtual network
//! functions (VNFs) use on the SDN north-bound interface, by keeping them
//! inside (simulated) SGX enclaves and only provisioning them after remote
//! attestation of both the container host and the VNF enclaves.
//!
//! See `DESIGN.md` for the crate inventory and `EXPERIMENTS.md` for the
//! reproduced measurements.
//!
//! ## Layering
//!
//! - [`encoding`] — JSON / hex / base64 / TLV codecs
//! - [`crypto`] — from-scratch primitives (SHA-2, HMAC, HKDF, AES-GCM,
//!   ChaCha20-Poly1305, X25519, Ed25519)
//! - [`pki`] — certificates, certificate authority, CRLs, keystores
//! - [`sgx`] — the software SGX model (enclaves, measurement, sealing, quotes)
//! - [`ias`] — the simulated Intel Attestation Service
//! - [`ima`] — the Linux IMA model (measurement lists, appraisal)
//! - [`net`] — in-memory network fabric and HTTP/1.1
//! - [`tls`] — the TLS-1.3-shaped secure channel
//! - [`dataplane`] — packet wire formats and flow tables
//! - [`container`] — images, registry and the container host
//! - [`controller`] — the Floodlight-model SDN controller
//! - [`vnf`] — the VNF framework and credential enclave
//! - [`store`] — the sealed write-ahead log behind the Verification Manager
//! - [`core`] — the Verification Manager (the paper's contribution)
//! - [`attest`] — multi-TEE attestation backends (SGX/EPID, SEV-SNP)
//! - [`telemetry`] — spans, metrics and the event journal

pub use vnfguard_attest as attest;
pub use vnfguard_container as container;
pub use vnfguard_controller as controller;
pub use vnfguard_core as core;
pub use vnfguard_crypto as crypto;
pub use vnfguard_dataplane as dataplane;
pub use vnfguard_encoding as encoding;
pub use vnfguard_ias as ias;
pub use vnfguard_ima as ima;
pub use vnfguard_net as net;
pub use vnfguard_pki as pki;
pub use vnfguard_sgx as sgx;
pub use vnfguard_store as store;
pub use vnfguard_telemetry as telemetry;
pub use vnfguard_tls as tls;
pub use vnfguard_vnf as vnf;
