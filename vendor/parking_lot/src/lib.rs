//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the small API subset it actually uses. Semantics
//! match parking_lot where they matter to callers: `lock()`/`read()`/
//! `write()` return guards directly (no `Result`), and a panicked holder
//! does not poison the lock for subsequent users.

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
