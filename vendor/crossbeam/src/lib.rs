//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` module subset the workspace uses: unbounded MPMC
//! channels with cloneable senders *and* receivers, disconnect detection on
//! both ends, and timed receives. Built on `std::sync::{Mutex, Condvar}`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.lock().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.chan.ready.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .chan
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.lock();
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut state = self.chan.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout) = self
                    .chan
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.lock().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_detection() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            // Buffered data still delivered, then disconnect.
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn try_recv_and_timeout() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            t.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
