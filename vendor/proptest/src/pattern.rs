//! String generation from the small regex subset used as strategies.
//!
//! Supported syntax — enough for every pattern in this workspace, and the
//! parser panics loudly on anything else so silent misgeneration cannot
//! creep in:
//!
//! - literal characters (including raw control characters);
//! - `[...]` classes with ranges and `&&[^...]` subtraction;
//! - `\PC` (any printable, non-control character) and common `\x` escapes;
//! - `{n}` / `{m,n}` repetition suffixes.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct CharSet {
    ranges: Vec<(char, char)>,
    minus: Vec<(char, char)>,
}

impl CharSet {
    fn single(c: char) -> CharSet {
        CharSet {
            ranges: vec![(c, c)],
            minus: Vec::new(),
        }
    }

    /// Printable characters: ASCII and a few BMP blocks, nothing from
    /// Unicode category C (control/format/unassigned).
    fn printable() -> CharSet {
        CharSet {
            ranges: vec![
                (' ', '~'),                 // ASCII printable
                ('\u{a1}', '\u{ff}'),       // Latin-1 supplement (printable)
                ('\u{100}', '\u{17f}'),     // Latin extended-A
                ('\u{391}', '\u{3a9}'),     // Greek capitals
                ('\u{3b1}', '\u{3c9}'),     // Greek minuscules
                ('\u{410}', '\u{44f}'),     // Cyrillic
            ],
            minus: Vec::new(),
        }
    }

    fn contains(&self, c: char) -> bool {
        self.ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi)
            && !self.minus.iter().any(|&(lo, hi)| c >= lo && c <= hi)
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        let total: u64 = self
            .ranges
            .iter()
            .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
            .sum();
        assert!(total > 0, "empty character class");
        for _ in 0..64 {
            let mut idx = rng.below(total);
            for &(lo, hi) in &self.ranges {
                let span = (hi as u64) - (lo as u64) + 1;
                if idx < span {
                    let c = char::from_u32(lo as u32 + idx as u32)
                        .expect("character ranges contain only valid scalars");
                    if !self.minus.iter().any(|&(mlo, mhi)| c >= mlo && c <= mhi) {
                        return c;
                    }
                    break; // excluded: resample
                }
                idx -= span;
            }
        }
        // Exclusions dominated the class; fall back to a linear scan.
        for &(lo, hi) in &self.ranges {
            for code in lo as u32..=hi as u32 {
                if let Some(c) = char::from_u32(code) {
                    if self.contains(c) {
                        return c;
                    }
                }
            }
        }
        panic!("character class excludes every member");
    }
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

#[derive(Debug, Clone)]
pub struct Pattern {
    atoms: Vec<Atom>,
}

fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> CharSet {
    match chars.next() {
        Some('P') => match chars.next() {
            Some('C') => CharSet::printable(),
            other => panic!("unsupported \\P class {other:?} in pattern {pattern:?}"),
        },
        Some('r') => CharSet::single('\r'),
        Some('n') => CharSet::single('\n'),
        Some('t') => CharSet::single('\t'),
        Some(c @ ('\\' | '.' | '/' | '-' | '[' | ']' | '{' | '}')) => CharSet::single(c),
        other => panic!("unsupported escape \\{other:?} in pattern {pattern:?}"),
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> CharSet {
    let mut set = CharSet {
        ranges: Vec::new(),
        minus: Vec::new(),
    };
    let negated = chars.peek() == Some(&'^');
    if negated {
        chars.next();
    }
    loop {
        match chars.next() {
            None => panic!("unterminated class in pattern {pattern:?}"),
            Some(']') => break,
            Some('&') if chars.peek() == Some(&'&') => {
                chars.next();
                assert_eq!(
                    chars.next(),
                    Some('['),
                    "only `&&[^...]` intersections are supported in {pattern:?}"
                );
                assert_eq!(
                    chars.next(),
                    Some('^'),
                    "only `&&[^...]` intersections are supported in {pattern:?}"
                );
                loop {
                    match chars.next() {
                        None => panic!("unterminated class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('\\') => {
                            set.minus.extend(parse_escape(chars, pattern).ranges)
                        }
                        Some(c) => set.minus.push((c, c)),
                    }
                }
            }
            Some('\\') => set.ranges.extend(parse_escape(chars, pattern).ranges),
            Some(c) => {
                if chars.peek() == Some(&'-') {
                    let mut probe = chars.clone();
                    probe.next();
                    match probe.peek() {
                        Some(&']') | None => set.ranges.push((c, c)), // trailing '-'
                        Some(&hi) => {
                            chars.next();
                            chars.next();
                            assert!(c <= hi, "inverted range in pattern {pattern:?}");
                            set.ranges.push((c, hi));
                        }
                    }
                } else {
                    set.ranges.push((c, c));
                }
            }
        }
    }
    if negated {
        let mut printable = CharSet::printable();
        printable.minus = set.ranges;
        printable
    } else {
        set
    }
}

fn parse_repeat(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let parse = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition {spec:?} in {pattern:?}"))
            };
            return match spec.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => {
                    let n = parse(&spec);
                    (n, n)
                }
            };
        }
        spec.push(c);
    }
    panic!("unterminated repetition in pattern {pattern:?}");
}

impl Pattern {
    pub fn compile(pattern: &str) -> Pattern {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars, pattern),
                '\\' => parse_escape(&mut chars, pattern),
                '(' | ')' | '*' | '+' | '?' | '|' => {
                    panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
                }
                literal => CharSet::single(literal),
            };
            let (min, max) = parse_repeat(&mut chars, pattern);
            atoms.push(Atom { set, min, max });
        }
        Pattern { atoms }
    }

    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = if atom.max > atom.min {
                atom.min + rng.below_usize(atom.max - atom.min + 1)
            } else {
                atom.min
            };
            for _ in 0..count {
                out.push(atom.set.sample(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        Pattern::compile(pattern).generate(&mut TestRng::from_seed(seed))
    }

    #[test]
    fn literal_and_class() {
        for seed in 0..50 {
            let s = gen("/[a-z]{1,8}", seed);
            assert!(s.starts_with('/'));
            assert!(s.len() >= 2 && s.len() <= 9, "{s:?}");
            assert!(s[1..].chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn subtraction_class() {
        for seed in 0..200 {
            let s = gen("[ -~&&[^\r\n]]{0,30}", seed);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_escape() {
        for seed in 0..200 {
            let s = gen("\\PC{0,8}", seed);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            assert!(s.chars().count() <= 8);
        }
    }

    #[test]
    fn header_name_shapes() {
        for seed in 0..100 {
            let s = gen("[a-z][a-z0-9-]{0,15}", seed);
            assert!(!s.is_empty() && s.len() <= 16);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn exact_repetition_and_ranges() {
        assert_eq!(gen("a{3}", 1), "aaa");
        let s = gen("[a-zA-Z0-9 ._-]{1,24}", 9);
        assert!(!s.is_empty() && s.len() <= 24);
    }
}
