//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal property-testing harness exposing the API subset its tests use:
//! the `proptest!` macro, `any::<T>()`, ranges and regex-literal string
//! strategies, `Just`, `prop_oneof!`, `prop_map`/`prop_filter`/
//! `prop_recursive`, and the `collection`/`option`/`array` helper modules.
//!
//! Generation is deterministic (per-test seeds) and there is **no
//! shrinking** — a failing case prints as-is. That trades minimal
//! counterexamples for a zero-dependency build.

pub mod pattern;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::ProptestConfig;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};

    /// Accepted element-count specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub min: usize,
        pub max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        let size = size.into();
        BoxedStrategy::new(move |rng| {
            let count = size.min + rng.below_usize(size.max_inclusive - size.min + 1);
            (0..count).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod option {
    use crate::strategy::{BoxedStrategy, Strategy};

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy::new(move |rng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        })
    }
}

pub mod array {
    use crate::strategy::{BoxedStrategy, Strategy};

    /// `[T; 32]` with each element drawn from `element`.
    pub fn uniform32<S>(element: S) -> BoxedStrategy<[S::Value; 32]>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy::new(move |rng| std::array::from_fn(|_| element.generate(rng)))
    }
}

/// Define property tests. Mirrors real proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop_name(x in any::<u8>(), s in "[a-z]{1,8}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng); )+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        $crate::strategy::BoxedStrategy::one_of(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    }};
}

/// Assertion macros: plain panics (no shrinking to feed a failure back into).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current generated case when its precondition fails.
/// Expands to `continue` targeting the case loop in `proptest!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, String)> {
        (any::<u8>(), "[a-z]{1,4}").prop_map(|(n, s)| (n, s))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(
            n in 0u32..100,
            v in crate::collection::vec(any::<u8>(), 0..8),
            pair in arb_pair(),
            opt in crate::option::of(any::<u16>()),
        ) {
            prop_assert!(n < 100);
            prop_assert!(v.len() < 8);
            prop_assert!(!pair.1.is_empty());
            prop_assume!(opt.is_none() || opt.unwrap() < u16::MAX);
            prop_assert_ne!(pair.1.len(), 0);
        }

        #[test]
        fn oneof_picks_all_variants(choice in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&choice));
        }
    }

    #[test]
    fn deterministic_between_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = crate::collection::vec(any::<u8>(), 0..16);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
