//! Deterministic RNG and per-test configuration.

/// Configuration accepted by the `proptest!` macro.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64-based RNG, seeded deterministically per test so failures
/// reproduce run to run (there is no shrinking in this stand-in).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x5bf0_3635_16f1_7c3d,
        }
    }

    /// Deterministic seed derived from the test name (FNV-1a).
    pub fn for_test(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(hash)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping is fine for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    pub fn below_u128(&mut self, bound: u128) -> u128 {
        if bound == 0 {
            return 0;
        }
        self.next_u128() % bound
    }

    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    pub fn gen_bool(&mut self, probability: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
            assert!(rng.below_u128(u128::MAX) < u128::MAX);
        }
    }
}
