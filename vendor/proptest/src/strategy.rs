//! The `Strategy` trait and the combinators the workspace uses.
//!
//! Unlike real proptest there is no shrinking: a strategy is just a
//! deterministic generator over a [`TestRng`]. Failures therefore reproduce
//! (fixed per-test seeds) but are not minimized.

use crate::pattern::Pattern;
use crate::test_runner::TestRng;
use std::rc::Rc;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, map: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::new(move |rng| map(self.generate(rng)))
    }

    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        BoxedStrategy::new(move |rng| {
            for _ in 0..1_000 {
                let value = self.generate(rng);
                if predicate(&value) {
                    return value;
                }
            }
            panic!("prop_filter({whence:?}) rejected 1000 consecutive values");
        })
    }

    /// Recursive strategies: `depth` levels of branching above the leaf.
    /// The size-tuning parameters of real proptest are accepted and
    /// ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            let leaf = self.clone().boxed();
            current = BoxedStrategy::new(move |rng| {
                if rng.gen_bool(0.5) {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(move |rng| self.generate(rng))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    generator: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generator: self.generator.clone(),
        }
    }
}

impl<T> BoxedStrategy<T> {
    pub fn new(generator: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy {
            generator: Rc::new(generator),
        }
    }

    /// Uniform choice among already-boxed strategies (`prop_oneof!`).
    pub fn one_of(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        BoxedStrategy::new(move |rng| {
            let pick = rng.below_usize(options.len());
            options[pick].generate(rng)
        })
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generator)(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>() via Arbitrary
// ---------------------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias occasionally toward boundary values, like proptest.
                match rng.below(16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u128() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(8) {
            0 => 0.0,
            1 => -1.5,
            2 => f64::from_bits(rng.next_u64()) % 1e6, // modest magnitudes
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xd800u64) as u32).unwrap_or('a')
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + rng.below_u128(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any value works.
                    return rng.next_u128() as $t;
                }
                start.wrapping_add(rng.below_u128(span) as $t)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        if start == 0 && end == u128::MAX {
            return rng.next_u128();
        }
        let span = end.wrapping_sub(start).wrapping_add(1);
        if span == 0 {
            return rng.next_u128();
        }
        start.wrapping_add(rng.below_u128(span))
    }
}

// ---------------------------------------------------------------------------
// Strings from regex-like patterns
// ---------------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::compile(self).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_any() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            let v = (5u32..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (1u128..=u128::MAX).generate(&mut rng);
            assert!(w >= 1);
            let _: [u8; 32] = any::<[u8; 32]>().generate(&mut rng);
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut rng = TestRng::from_seed(4);
        let even = any::<u8>().prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
        let doubled = (0u8..10).prop_map(|v| v * 2);
        assert!(doubled.generate(&mut rng) < 20);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn leaf_sum(tree: &Tree) -> u64 {
            match tree {
                Tree::Leaf(v) => *v as u64,
                Tree::Node(kids) => kids.iter().map(leaf_sum).sum(),
            }
        }
        let strategy = any::<u8>().prop_map(Tree::Leaf).prop_recursive(4, 64, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let _ = leaf_sum(&strategy.generate(&mut rng));
        }
    }
}
