//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the `vnfguard-bench` benches use — benchmark
//! groups, parameterized ids, throughput annotation, `iter` /
//! `iter_with_setup` — with a simple mean-of-batches timer instead of
//! criterion's statistical machinery. Output is one line per benchmark:
//!
//! ```text
//! e8_revocation/build_crl/100 ... 12.3 µs/iter (820 iters)
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Hard cap on iterations, for very fast routines.
const MAX_ITERS: u64 = 100_000;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Time `routine` repeatedly until the measurement target is reached.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up.
        black_box(routine());
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < TARGET && iters < MAX_ITERS {
            black_box(routine());
            iters += 1;
        }
        self.iters_done = iters.max(1);
        self.elapsed = started.elapsed();
    }

    /// Time `routine` with a fresh untimed `setup` product per iteration.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let started = Instant::now();
        while started.elapsed() < TARGET && iters < MAX_ITERS {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.iters_done = iters.max(1);
        self.elapsed = measured;
    }

    /// `iter_batched` in criterion's `PerIteration`-like mode.
    pub fn iter_batched<S, O>(
        &mut self,
        setup: impl FnMut() -> S,
        routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        self.iter_with_setup(setup, routine);
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn format_per_iter(elapsed: Duration, iters: u64) -> String {
    let nanos = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    if nanos >= 1e9 {
        format!("{:.3} s/iter", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.2} ms/iter", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.2} µs/iter", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns/iter")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        let mut line = format!(
            "{}/{} ... {} ({} iters)",
            self.name,
            id.id,
            format_per_iter(bencher.elapsed, bencher.iters_done),
            bencher.iters_done
        );
        if let Some(t) = self.throughput {
            let per_iter_secs =
                bencher.elapsed.as_secs_f64() / bencher.iters_done.max(1) as f64;
            match t {
                Throughput::Elements(n) => {
                    line += &format!(", {:.0} elem/s", n as f64 / per_iter_secs.max(1e-12));
                }
                Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                    line += &format!(
                        ", {:.1} MiB/s",
                        n as f64 / per_iter_secs.max(1e-12) / (1024.0 * 1024.0)
                    );
                }
            }
        }
        println!("{line}");
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        println!(
            "{} ... {} ({} iters)",
            name,
            format_per_iter(bencher.elapsed, bencher.iters_done),
            bencher.iters_done
        );
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
