//! Offline stand-in for the `rand` crate.
//!
//! The workspace only uses `rand::rngs::OsRng` as an entropy source behind
//! `RngCore::fill_bytes`. On Unix this reads `/dev/urandom`; if that is
//! unavailable it falls back to a SplitMix64 stream seeded from the clock,
//! the process id and ASLR — acceptable for the simulation workloads this
//! repository runs (no production key material leaves the process).

/// The subset of the `RngCore` trait the workspace uses.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

pub mod rngs {
    use super::RngCore;
    use std::io::Read;

    /// OS-backed entropy source.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct OsRng;

    fn fallback_seed() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let aslr = (&fallback_seed as *const _) as u64;
        nanos ^ aslr.rotate_left(32) ^ (std::process::id() as u64).wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn splitmix_fill(dest: &mut [u8]) {
        let mut state = fallback_seed();
        for chunk in dest.chunks_mut(8) {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut buf = [0u8; 8];
            self.fill_bytes(&mut buf);
            u64::from_le_bytes(buf)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let from_os = std::fs::File::open("/dev/urandom")
                .and_then(|mut f| f.read_exact(dest))
                .is_ok();
            if !from_os {
                splitmix_fill(dest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::OsRng;
    use super::RngCore;

    #[test]
    fn fills_and_varies() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        OsRng.fill_bytes(&mut a);
        OsRng.fill_bytes(&mut b);
        assert_ne!(a, b, "two 256-bit draws collided");
    }
}
