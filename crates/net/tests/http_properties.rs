//! Property tests: HTTP framing over the in-memory streams is lossless for
//! arbitrary header maps and binary bodies, and pipelining preserves order.

use proptest::prelude::*;
use vnfguard_net::http::{
    read_request, read_response, write_request, write_response, Method, Request, Response, Status,
};
use vnfguard_net::stream::Duplex;

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Get),
        Just(Method::Post),
        Just(Method::Put),
        Just(Method::Delete),
    ]
}

fn arb_headers() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[a-z][a-z0-9-]{0,15}", "[ -~&&[^\r\n]]{0,30}"), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_roundtrip(
        method in arb_method(),
        path in "/[a-zA-Z0-9/_.-]{0,40}",
        headers in arb_headers(),
        body in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let mut request = Request::new(method, &path);
        for (name, value) in &headers {
            request = request.with_header(name, value.trim());
        }
        request.body = body.clone();

        let (mut a, mut b) = Duplex::pipe();
        write_request(&mut a, &request).unwrap();
        let received = read_request(&mut b).unwrap();
        prop_assert_eq!(received.method, request.method);
        prop_assert_eq!(&received.path, &request.path);
        prop_assert_eq!(&received.body, &body);
        // Compare against the request's *final* header map (duplicate names
        // in the generated list collapse last-write-wins at construction).
        for (name, value) in &request.headers {
            prop_assert_eq!(received.header(name), Some(value.as_str()));
        }
    }

    #[test]
    fn response_roundtrip(
        code in prop_oneof![Just(200u16), Just(201), Just(204), Just(400), Just(401),
                            Just(403), Just(404), Just(409), Just(500)],
        body in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let mut response = Response::new(Status::from_code(code));
        response.body = body.clone();
        let (mut a, mut b) = Duplex::pipe();
        write_response(&mut a, &response).unwrap();
        let received = read_response(&mut b).unwrap();
        prop_assert_eq!(received.status.code(), code);
        prop_assert_eq!(received.body, body);
    }

    #[test]
    fn pipelined_requests_keep_order(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8)
    ) {
        let (mut a, mut b) = Duplex::pipe();
        for body in &bodies {
            let mut request = Request::post("/x");
            request.body = body.clone();
            write_request(&mut a, &request).unwrap();
        }
        for body in &bodies {
            let received = read_request(&mut b).unwrap();
            prop_assert_eq!(&received.body, body);
        }
    }

    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let (mut a, mut b) = Duplex::pipe();
        use std::io::Write as _;
        a.write_all(&bytes).unwrap();
        drop(a);
        let _ = read_request(&mut b);
        let (mut c, mut d) = Duplex::pipe();
        c.write_all(&bytes).unwrap();
        drop(c);
        let _ = read_response(&mut d);
    }
}
