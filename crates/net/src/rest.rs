//! Path-pattern REST routing and the `ApiResult` handler convention.

use crate::http::{Method, Request, Response, Status};
use std::collections::HashMap;
use std::sync::Arc;
use vnfguard_telemetry::{Counter, Telemetry};

/// Captured `:name` path parameters.
#[derive(Debug, Default, Clone)]
pub struct PathParams {
    values: HashMap<String, String>,
}

impl PathParams {
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }
}

/// A handler-level API error: a status code, a machine-readable error
/// code, and a human-readable detail. The single `From<ApiError> for
/// Response` mapping renders it as `{"code": code, "detail": detail}` —
/// clients branch on `code` (stable identifiers like `"fenced"` or
/// `"not_found"`) and log `detail`.
///
/// Handlers registered through [`Router::get_api`] and friends return
/// [`ApiResult`] and use `?` on fallible steps instead of hand-building
/// error responses at every exit point. Each constructor sets a default
/// code matching its status; [`with_code`](Self::with_code) refines it
/// when one status covers several client-distinguishable conditions (a
/// 503 from a fenced zombie is not a 503 from overload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    pub status: Status,
    pub code: String,
    pub message: String,
    /// When set, the response advertises how long the client should wait
    /// before retrying — both as a `retry-after` header and a
    /// `retry-after-secs` body field. Set by [`ApiError::overloaded`].
    pub retry_after_secs: Option<u64>,
}

impl ApiError {
    pub fn new(status: Status, message: impl Into<String>) -> ApiError {
        let code = match status {
            Status::BadRequest => "bad_request",
            Status::Unauthorized => "unauthorized",
            Status::Forbidden => "forbidden",
            Status::NotFound => "not_found",
            Status::Conflict => "conflict",
            Status::ServiceUnavailable => "unavailable",
            Status::GatewayTimeout => "deadline",
            _ => "server_error",
        };
        ApiError {
            status,
            code: code.to_string(),
            message: message.into(),
            retry_after_secs: None,
        }
    }

    /// Override the machine-readable code (e.g. `"fenced"` on a 503 from a
    /// deposed primary).
    pub fn with_code(mut self, code: impl Into<String>) -> ApiError {
        self.code = code.into();
        self
    }

    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(Status::BadRequest, message)
    }

    pub fn unauthorized(message: impl Into<String>) -> ApiError {
        ApiError::new(Status::Unauthorized, message)
    }

    pub fn forbidden(message: impl Into<String>) -> ApiError {
        ApiError::new(Status::Forbidden, message)
    }

    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError::new(Status::NotFound, message)
    }

    pub fn conflict(message: impl Into<String>) -> ApiError {
        ApiError::new(Status::Conflict, message)
    }

    pub fn server_error(message: impl Into<String>) -> ApiError {
        ApiError::new(Status::ServerError, message)
    }

    /// A 503 for a backend that cannot serve the request right now.
    pub fn unavailable(message: impl Into<String>) -> ApiError {
        ApiError::new(Status::ServiceUnavailable, message)
    }

    /// A 503 from admission control: the request was shed before any work
    /// was done. Carries a retry hint sized to the queue the request would
    /// have joined, so a storm of clients spreads out instead of hammering
    /// the same instant.
    pub fn overloaded(message: impl Into<String>, retry_after_secs: u64) -> ApiError {
        let mut error = ApiError::new(Status::ServiceUnavailable, message).with_code("overloaded");
        error.retry_after_secs = Some(retry_after_secs);
        error
    }

    /// A 504 for a request whose deadline budget ran out before the work
    /// completed — the caller has already given up, so nothing downstream
    /// should keep spending on it.
    pub fn deadline(message: impl Into<String>) -> ApiError {
        ApiError::new(Status::GatewayTimeout, message)
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} [{}]: {}",
            self.status.code(),
            self.status.reason(),
            self.code,
            self.message
        )
    }
}

impl From<ApiError> for Response {
    fn from(error: ApiError) -> Response {
        let mut body = vnfguard_encoding::Json::object()
            .with("code", error.code.as_str())
            .with("detail", error.message.as_str());
        if let Some(secs) = error.retry_after_secs {
            body = body.with("retry-after-secs", secs as i64);
        }
        let mut response = Response::json(error.status, &body);
        if let Some(secs) = error.retry_after_secs {
            response.headers.insert("retry-after".into(), secs.to_string());
        }
        response
    }
}

/// The return type of `*_api` route handlers.
pub type ApiResult<T> = Result<T, ApiError>;

type Handler = dyn Fn(&Request, &PathParams) -> Response + Send + Sync;

struct Route {
    method: Method,
    pattern: String,
    segments: Vec<Segment>,
    handler: Arc<Handler>,
}

/// Distributed-tracing hookup for a router: the telemetry bundle to record
/// server spans into, the logical service name they are attributed to, and
/// a clock closure supplying simulated unix seconds for span timestamps.
#[derive(Clone)]
struct RouterTracing {
    telemetry: Telemetry,
    service: String,
    now_fn: Arc<dyn Fn() -> u64 + Send + Sync>,
}

enum Segment {
    Literal(String),
    Param(String),
}

/// A REST router: register handlers on method + path patterns, then
/// [`Router::dispatch`] requests to them.
///
/// Patterns use `:name` segments for captures, e.g.
/// `/wm/device/:mac` or `/vm/vnf/:id/credentials`.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
    requests_total: Option<Counter>,
    request_errors_total: Option<Counter>,
    tracing: Option<RouterTracing>,
}

impl Router {
    pub fn new() -> Router {
        Router::default()
    }

    /// Attach telemetry counters: `requests` is bumped once per dispatched
    /// request, `errors` once per non-2xx response (including unmatched
    /// routes and handler-raised [`ApiError`]s).
    pub fn instrument(&mut self, requests: Counter, errors: Counter) -> &mut Self {
        self.requests_total = Some(requests);
        self.request_errors_total = Some(errors);
        self
    }

    /// Attach distributed tracing: requests that carry a `traceparent`
    /// header are dispatched under a server span (named `METHOD pattern`,
    /// attributed to `service`), the handler sees the server span's context
    /// so downstream calls chain onto it, and every response — including
    /// [`ApiError`] mappings and 404s — echoes the request's trace id in an
    /// `x-vnfguard-trace` header. `now_fn` supplies simulated unix seconds
    /// for span timestamps.
    pub fn instrument_traces(
        &mut self,
        telemetry: &Telemetry,
        service: &str,
        now_fn: impl Fn() -> u64 + Send + Sync + 'static,
    ) -> &mut Self {
        self.tracing = Some(RouterTracing {
            telemetry: telemetry.clone(),
            service: service.to_string(),
            now_fn: Arc::new(now_fn),
        });
        self
    }

    /// Register a handler. Later registrations do not shadow earlier ones;
    /// first match wins.
    pub fn route(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        let segments = pattern
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Segment::Param(name.to_string())
                } else {
                    Segment::Literal(s.to_string())
                }
            })
            .collect();
        self.routes.push(Route {
            method,
            pattern: pattern.to_string(),
            segments,
            handler: Arc::new(handler),
        });
        self
    }

    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Get, pattern, handler)
    }

    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Post, pattern, handler)
    }

    pub fn delete(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Delete, pattern, handler)
    }

    /// Register an [`ApiResult`]-returning handler: `Ok(response)` passes
    /// through, `Err(error)` goes through the single
    /// `From<ApiError> for Response` mapping.
    pub fn route_api(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> ApiResult<Response> + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(method, pattern, move |request, params| {
            match handler(request, params) {
                Ok(response) => response,
                Err(error) => error.into(),
            }
        })
    }

    pub fn get_api(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> ApiResult<Response> + Send + Sync + 'static,
    ) -> &mut Self {
        self.route_api(Method::Get, pattern, handler)
    }

    pub fn post_api(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> ApiResult<Response> + Send + Sync + 'static,
    ) -> &mut Self {
        self.route_api(Method::Post, pattern, handler)
    }

    pub fn delete_api(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> ApiResult<Response> + Send + Sync + 'static,
    ) -> &mut Self {
        self.route_api(Method::Delete, pattern, handler)
    }

    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    fn match_route<'a>(&'a self, method: Method, path: &str) -> Option<(&'a Route, PathParams)> {
        let path_segments: Vec<&str> = path
            .split('?')
            .next()
            .unwrap_or("")
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        'routes: for route in &self.routes {
            if route.method != method || route.segments.len() != path_segments.len() {
                continue;
            }
            let mut params = PathParams::default();
            for (segment, actual) in route.segments.iter().zip(&path_segments) {
                match segment {
                    Segment::Literal(expected) if expected == actual => {}
                    Segment::Literal(_) => continue 'routes,
                    Segment::Param(name) => {
                        params.values.insert(name.clone(), (*actual).to_string());
                    }
                }
            }
            return Some((route, params));
        }
        None
    }

    /// Dispatch a request, returning 404 for unmatched paths.
    pub fn dispatch(&self, request: &Request) -> Response {
        if let Some(counter) = &self.requests_total {
            counter.inc();
        }
        let incoming = self
            .tracing
            .as_ref()
            .and_then(|tracing| request.trace_context().map(|ctx| (tracing, ctx)));
        let mut response = match self.match_route(request.method, &request.path) {
            Some((route, params)) => match &incoming {
                Some((tracing, ctx)) => {
                    let name = format!("{} {}", request.method.as_str(), route.pattern);
                    let (server_ctx, _span) = tracing.telemetry.trace_child(
                        ctx,
                        &tracing.service,
                        &name,
                        (tracing.now_fn)(),
                    );
                    // Hand the handler the server span's context so its
                    // downstream clients chain onto this hop.
                    let traced = request.clone().with_trace(&server_ctx);
                    (route.handler)(&traced, &params)
                }
                None => (route.handler)(request, &params),
            },
            None => Response::error(
                Status::NotFound,
                &format!("no route for {} {}", request.method.as_str(), request.path),
            ),
        };
        if let Some((_, ctx)) = &incoming {
            response
                .headers
                .insert("x-vnfguard-trace".into(), format!("{:032x}", ctx.trace_id));
        }
        if !response.status.is_success() {
            if let Some(counter) = &self.request_errors_total {
                counter.inc();
            }
        }
        response
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.routes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_encoding::Json;

    fn router() -> Router {
        let mut router = Router::new();
        router.get("/health", |_, _| {
            Response::json(Status::Ok, &Json::object().with("status", "up"))
        });
        router.get("/wm/device/:mac", |_, params| {
            Response::json(
                Status::Ok,
                &Json::object().with("mac", params.get("mac").unwrap_or("")),
            )
        });
        router.post("/wm/staticflowpusher/json", |request, _| {
            match request.json() {
                Ok(body) => Response::json(Status::Created, &body),
                Err(_) => Response::error(Status::BadRequest, "bad json"),
            }
        });
        router.delete("/vm/vnf/:id/credentials", |_, params| {
            Response::json(
                Status::Ok,
                &Json::object().with("revoked", params.get("id").unwrap_or("")),
            )
        });
        router
    }

    #[test]
    fn literal_match() {
        let response = router().dispatch(&Request::get("/health"));
        assert_eq!(response.status, Status::Ok);
        assert_eq!(
            response.parse_json().unwrap().get("status").and_then(Json::as_str),
            Some("up")
        );
    }

    #[test]
    fn param_capture() {
        let response = router().dispatch(&Request::get("/wm/device/aa:bb:cc"));
        assert_eq!(
            response.parse_json().unwrap().get("mac").and_then(Json::as_str),
            Some("aa:bb:cc")
        );
        let response = router().dispatch(&Request::delete("/vm/vnf/vnf-7/credentials"));
        assert_eq!(
            response.parse_json().unwrap().get("revoked").and_then(Json::as_str),
            Some("vnf-7")
        );
    }

    #[test]
    fn method_mismatch_is_404() {
        let response = router().dispatch(&Request::post("/health"));
        assert_eq!(response.status, Status::NotFound);
    }

    #[test]
    fn length_mismatch_is_404() {
        assert_eq!(
            router().dispatch(&Request::get("/wm/device")).status,
            Status::NotFound
        );
        assert_eq!(
            router().dispatch(&Request::get("/wm/device/a/b")).status,
            Status::NotFound
        );
    }

    #[test]
    fn query_strings_ignored_for_matching() {
        let response = router().dispatch(&Request::get("/health?verbose=1"));
        assert_eq!(response.status, Status::Ok);
    }

    #[test]
    fn body_passes_through() {
        let request = Request::post("/wm/staticflowpusher/json")
            .with_json(&Json::object().with("name", "f1"));
        let response = router().dispatch(&request);
        assert_eq!(response.status, Status::Created);
        assert_eq!(
            response.parse_json().unwrap().get("name").and_then(Json::as_str),
            Some("f1")
        );
    }

    #[test]
    fn bad_json_rejected_by_handler() {
        let mut request = Request::post("/wm/staticflowpusher/json");
        request.body = b"{not json".to_vec();
        assert_eq!(router().dispatch(&request).status, Status::BadRequest);
    }

    #[test]
    fn first_match_wins() {
        let mut r = Router::new();
        r.get("/a/:x", |_, _| Response::new(Status::Ok));
        r.get("/a/b", |_, _| Response::new(Status::Conflict));
        // The param route was registered first and matches.
        assert_eq!(r.dispatch(&Request::get("/a/b")).status, Status::Ok);
    }

    #[test]
    fn api_error_maps_to_json_error_response() {
        let response: Response = ApiError::forbidden("quote rejected").into();
        assert_eq!(response.status, Status::Forbidden);
        let body = response.parse_json().unwrap();
        assert_eq!(body.get("code").and_then(Json::as_str), Some("forbidden"));
        assert_eq!(
            body.get("detail").and_then(Json::as_str),
            Some("quote rejected")
        );
    }

    #[test]
    fn api_error_codes_are_overridable() {
        let fenced = ApiError::unavailable("a newer primary holds the epoch").with_code("fenced");
        assert_eq!(fenced.status.code(), 503);
        let response: Response = fenced.into();
        assert_eq!(response.status, Status::ServiceUnavailable);
        let body = response.parse_json().unwrap();
        assert_eq!(body.get("code").and_then(Json::as_str), Some("fenced"));
        assert_eq!(
            body.get("detail").and_then(Json::as_str),
            Some("a newer primary holds the epoch")
        );
    }

    #[test]
    fn overloaded_error_advertises_retry_after() {
        let shed = ApiError::overloaded("renewal queue full", 4);
        assert_eq!(shed.status, Status::ServiceUnavailable);
        assert_eq!(shed.code, "overloaded");
        let response: Response = shed.into();
        assert_eq!(response.header("retry-after"), Some("4"));
        let body = response.parse_json().unwrap();
        assert_eq!(body.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(body.get("retry-after-secs").and_then(Json::as_i64), Some(4));
        assert_eq!(response.retry_after_secs(), Some(4));
    }

    #[test]
    fn deadline_error_is_504_with_deadline_code() {
        let late = ApiError::deadline("budget exhausted in shard queue");
        assert_eq!(late.status.code(), 504);
        let response: Response = late.into();
        assert_eq!(response.status, Status::GatewayTimeout);
        let body = response.parse_json().unwrap();
        assert_eq!(body.get("code").and_then(Json::as_str), Some("deadline"));
        // No retry hint: the caller's own budget decides whether to retry.
        assert_eq!(response.header("retry-after"), None);
        assert_eq!(response.retry_after_secs(), None);
    }

    #[test]
    fn api_handlers_use_question_mark() {
        fn lookup(id: &str) -> ApiResult<String> {
            if id == "vnf-1" {
                Ok("enrolled".to_string())
            } else {
                Err(ApiError::not_found(format!("unknown vnf {id}")))
            }
        }
        let mut r = Router::new();
        r.get_api("/vm/vnf/:id", |_, params| {
            let state = lookup(params.get("id").unwrap_or(""))?;
            Ok(Response::json(Status::Ok, &Json::object().with("state", state.as_str())))
        });
        assert_eq!(r.dispatch(&Request::get("/vm/vnf/vnf-1")).status, Status::Ok);
        let miss = r.dispatch(&Request::get("/vm/vnf/vnf-9"));
        assert_eq!(miss.status, Status::NotFound);
        assert_eq!(
            miss.parse_json().unwrap().get("detail").and_then(Json::as_str),
            Some("unknown vnf vnf-9")
        );
    }

    #[test]
    fn instrumented_router_counts_requests_and_errors() {
        use vnfguard_telemetry::Counter;
        let requests = Counter::detached();
        let errors = Counter::detached();
        let mut r = Router::new();
        r.instrument(requests.clone(), errors.clone());
        r.get("/ok", |_, _| Response::new(Status::Ok));
        r.get_api("/fail", |_, _| Err(ApiError::server_error("boom")));
        r.dispatch(&Request::get("/ok"));
        r.dispatch(&Request::get("/fail"));
        r.dispatch(&Request::get("/nope"));
        assert_eq!(requests.get(), 3);
        // /fail (500) and the unmatched route (404) both count as errors.
        assert_eq!(errors.get(), 2);
    }

    #[test]
    fn traced_dispatch_opens_server_span_and_rechains_handler() {
        let telemetry = Telemetry::new();
        let mut r = Router::new();
        r.instrument_traces(&telemetry, "vm_api", || 1_600_000_000);
        r.get("/chained", |request, _| {
            // The handler must see the server span's context, not the
            // caller's, so downstream hops parent correctly.
            let ctx = request.trace_context().expect("handler sees trace");
            assert!(ctx.parent_id.is_none(), "parent id is not wire-carried");
            Response::new(Status::Ok)
        });
        let (root, root_guard) = telemetry.trace_root("client", "drill", 0);
        let response = r.dispatch(&Request::get("/chained").with_trace(&root));
        drop(root_guard);
        assert_eq!(response.status, Status::Ok);
        assert_eq!(
            response.header("x-vnfguard-trace"),
            Some(format!("{:032x}", root.trace_id).as_str())
        );
        let spans = telemetry.traces().trace(root.trace_id);
        let server = spans.iter().find(|s| s.name == "GET /chained").unwrap();
        assert_eq!(server.service, "vm_api");
        assert_eq!(server.parent_id, Some(root.span_id));
    }

    #[test]
    fn api_errors_echo_trace_id_header() {
        let telemetry = Telemetry::new();
        let mut r = Router::new();
        r.instrument_traces(&telemetry, "vm_api", || 0);
        r.get_api("/fail", |_, _| Err(ApiError::forbidden("denied")));
        let (root, _guard) = telemetry.trace_root("client", "drill", 0);
        let expected = format!("{:032x}", root.trace_id);
        let failure = r.dispatch(&Request::get("/fail").with_trace(&root));
        assert_eq!(failure.status, Status::Forbidden);
        assert_eq!(failure.header("x-vnfguard-trace"), Some(expected.as_str()));
        // Unmatched routes echo the trace id too.
        let missing = r.dispatch(&Request::get("/nope").with_trace(&root));
        assert_eq!(missing.status, Status::NotFound);
        assert_eq!(missing.header("x-vnfguard-trace"), Some(expected.as_str()));
        // Requests without a traceparent get no echo header.
        assert_eq!(r.dispatch(&Request::get("/fail")).header("x-vnfguard-trace"), None);
    }
}
