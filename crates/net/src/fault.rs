//! Deterministic fault injection for the network fabric.
//!
//! A [`FaultPlan`] attaches to a [`Network`](crate::Network) and perturbs
//! traffic per destination address:
//!
//! - **connection refusal** — probabilistic (`refuse_connections`) or
//!   scheduled (`refuse_next`);
//! - **latency** — fixed extra delay plus uniform jitter per connection;
//! - **mid-stream drops** — the link is severed after a byte budget is
//!   spent (`drop_after_bytes`);
//! - **stalls** — delivery stops (reads hang) until the address is
//!   unstalled; observable with [`Duplex::set_read_timeout`](crate::Duplex::set_read_timeout);
//! - **partitions** — single addresses (`isolate`) or named endpoint
//!   groups (`partition` + [`Network::connect_from`](crate::Network::connect_from)).
//!
//! All probabilistic decisions draw from one seeded SplitMix64 stream and
//! every decision is appended to an event log, so a failure sequence
//! replays exactly under the same seed and call order.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Marker payload carried inside `io::Error`s produced by fault injection,
/// so the HTTP layer can map them to [`NetError::Injected`](crate::NetError::Injected)
/// instead of a generic I/O failure.
#[derive(Debug)]
pub struct InjectedFault(pub String);

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for InjectedFault {}

pub(crate) fn injected_io(kind: io::ErrorKind, message: &str) -> io::Error {
    io::Error::new(kind, InjectedFault(message.to_string()))
}

/// Per-link fault switches, shared by both [`Duplex`](crate::Duplex) halves
/// of a connection. Also used (without a plan) by the server to wake and
/// join blocked connection handlers on shutdown.
#[derive(Debug)]
pub struct LinkControl {
    severed: AtomicBool,
    stalled: AtomicBool,
    /// Remaining bytes before the link severs; `i64::MAX` means unlimited.
    write_budget: AtomicI64,
}

impl Default for LinkControl {
    fn default() -> LinkControl {
        LinkControl {
            severed: AtomicBool::new(false),
            stalled: AtomicBool::new(false),
            write_budget: AtomicI64::new(i64::MAX),
        }
    }
}

impl LinkControl {
    pub(crate) fn with_faults(stalled: bool, drop_after: Option<u64>) -> LinkControl {
        LinkControl {
            severed: AtomicBool::new(false),
            stalled: AtomicBool::new(stalled),
            write_budget: AtomicI64::new(
                drop_after.map_or(i64::MAX, |n| n.min(i64::MAX as u64) as i64),
            ),
        }
    }

    /// Tear the connection down: writes fail, reads error once buffered
    /// data is consumed, queued-but-undelivered frames are discarded.
    pub fn sever(&self) {
        self.severed.store(true, Ordering::SeqCst);
    }

    pub fn is_severed(&self) -> bool {
        self.severed.load(Ordering::SeqCst)
    }

    pub fn set_stalled(&self, stalled: bool) {
        self.stalled.store(stalled, Ordering::SeqCst);
    }

    pub fn is_stalled(&self) -> bool {
        self.stalled.load(Ordering::SeqCst)
    }

    /// Consume up to `wanted` bytes of the write budget, severing the link
    /// when the budget runs out. Returns how many bytes may still be sent.
    pub(crate) fn take_write_budget(&self, wanted: usize) -> usize {
        let wanted_i = wanted.min(i64::MAX as usize) as i64;
        let before = self.write_budget.fetch_sub(wanted_i, Ordering::SeqCst);
        if before >= wanted_i {
            wanted
        } else {
            self.sever();
            before.max(0) as usize
        }
    }
}

/// Why a connection attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefuseReason {
    /// The seeded coin said no (`refuse_connections`).
    Probabilistic,
    /// A scheduled refusal (`refuse_next`) consumed this attempt.
    Scheduled,
    /// The destination address is isolated.
    Isolated,
    /// Origin and destination are on opposite sides of a partition.
    Partitioned,
}

/// One entry in the fault event log. The log is the replay witness: the
/// same seed and call order produce the identical event sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A connection attempt to `addr` was refused.
    Refused { addr: String, reason: RefuseReason },
    /// A connection to `addr` was admitted, with the injected extra
    /// latency (microseconds) drawn for it.
    Admitted { addr: String, extra_latency_us: u64 },
    /// Existing links to `addr` were severed (isolation or partition).
    Severed { addr: String },
    /// Delivery to `addr` stopped / resumed.
    Stalled { addr: String },
    Unstalled { addr: String },
    /// `addr` entered / left single-address isolation.
    Isolated { addr: String },
    Healed { addr: String },
    /// A group partition was installed / removed.
    Partitioned { a: Vec<String>, b: Vec<String> },
    PartitionHealed,
}

/// Per-destination fault rules.
#[derive(Debug, Clone, Default)]
struct AddressFaults {
    refuse_probability: f64,
    refuse_next: u32,
    extra_latency: Duration,
    latency_jitter: Duration,
    drop_after_bytes: Option<u64>,
    stalled: bool,
}

/// What the fabric applies to an admitted connection.
#[derive(Debug)]
pub(crate) struct LinkSetup {
    pub extra_latency: Duration,
    pub drop_after_bytes: Option<u64>,
    pub stalled: bool,
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct LinkEntry {
    origin: String,
    addr: String,
    control: Weak<LinkControl>,
}

struct PlanInner {
    seed: u64,
    rng: SplitMix64,
    rules: HashMap<String, AddressFaults>,
    isolated: HashSet<String>,
    partition: Option<(HashSet<String>, HashSet<String>)>,
    links: Vec<LinkEntry>,
    events: Vec<FaultEvent>,
}

impl PlanInner {
    fn rule(&mut self, addr: &str) -> &mut AddressFaults {
        self.rules.entry(addr.to_string()).or_default()
    }

    fn sever_links(&mut self, matches: impl Fn(&LinkEntry) -> bool) -> Vec<String> {
        let mut severed = Vec::new();
        for entry in &self.links {
            if matches(entry) {
                if let Some(control) = entry.control.upgrade() {
                    if !control.is_severed() {
                        control.sever();
                        severed.push(entry.addr.clone());
                    }
                }
            }
        }
        self.links.retain(|entry| entry.control.strong_count() > 0);
        severed
    }
}

/// A deterministic, shareable fault schedule. Cloning shares the plan.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<Mutex<PlanInner>>,
}

impl FaultPlan {
    /// A plan whose probabilistic decisions replay under `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(Mutex::new(PlanInner {
                seed,
                rng: SplitMix64(seed),
                rules: HashMap::new(),
                isolated: HashSet::new(),
                partition: None,
                links: Vec::new(),
                events: Vec::new(),
            })),
        }
    }

    pub fn seed(&self) -> u64 {
        self.inner.lock().seed
    }

    /// Refuse each future connection to `addr` with probability `p`.
    pub fn refuse_connections(&self, addr: &str, probability: f64) {
        assert!(
            (0.0..=1.0).contains(&probability),
            "refusal probability must be in [0, 1]"
        );
        self.inner.lock().rule(addr).refuse_probability = probability;
    }

    /// Refuse exactly the next `count` connection attempts to `addr`.
    pub fn refuse_next(&self, addr: &str, count: u32) {
        self.inner.lock().rule(addr).refuse_next = count;
    }

    /// Add `extra` one-way latency to future connections to `addr`, plus a
    /// uniform draw from `[0, jitter]` per connection.
    pub fn add_latency(&self, addr: &str, extra: Duration, jitter: Duration) {
        let mut inner = self.inner.lock();
        let rule = inner.rule(addr);
        rule.extra_latency = extra;
        rule.latency_jitter = jitter;
    }

    /// Sever future connections to `addr` after `bytes` total bytes have
    /// crossed the link (both directions share the budget).
    pub fn drop_after_bytes(&self, addr: &str, bytes: u64) {
        self.inner.lock().rule(addr).drop_after_bytes = Some(bytes);
    }

    /// Stop delivering on existing and future connections to `addr`. Reads
    /// hang until [`unstall`](Self::unstall) — or fail with `TimedOut` when
    /// the reader set a deadline.
    pub fn stall(&self, addr: &str) {
        let mut inner = self.inner.lock();
        inner.rule(addr).stalled = true;
        for entry in &inner.links {
            if entry.addr == addr {
                if let Some(control) = entry.control.upgrade() {
                    control.set_stalled(true);
                }
            }
        }
        inner.events.push(FaultEvent::Stalled {
            addr: addr.to_string(),
        });
    }

    /// Resume delivery to `addr`.
    pub fn unstall(&self, addr: &str) {
        let mut inner = self.inner.lock();
        inner.rule(addr).stalled = false;
        for entry in &inner.links {
            if entry.addr == addr {
                if let Some(control) = entry.control.upgrade() {
                    control.set_stalled(false);
                }
            }
        }
        inner.events.push(FaultEvent::Unstalled {
            addr: addr.to_string(),
        });
    }

    /// Partition `addr` off: refuse new connections and sever existing ones.
    pub fn isolate(&self, addr: &str) {
        let mut inner = self.inner.lock();
        inner.isolated.insert(addr.to_string());
        inner.events.push(FaultEvent::Isolated {
            addr: addr.to_string(),
        });
        for severed in inner.sever_links(|entry| entry.addr == addr) {
            inner.events.push(FaultEvent::Severed { addr: severed });
        }
    }

    /// Lift single-address isolation of `addr`.
    pub fn heal(&self, addr: &str) {
        let mut inner = self.inner.lock();
        inner.isolated.remove(addr);
        inner.events.push(FaultEvent::Healed {
            addr: addr.to_string(),
        });
    }

    /// Install a partition between two named endpoint groups: connections
    /// whose origin (see [`Network::connect_from`](crate::Network::connect_from))
    /// and destination fall on opposite sides are refused, and existing
    /// cross-partition links are severed. Replaces any previous partition.
    pub fn partition(&self, group_a: &[&str], group_b: &[&str]) {
        let a: HashSet<String> = group_a.iter().map(|s| s.to_string()).collect();
        let b: HashSet<String> = group_b.iter().map(|s| s.to_string()).collect();
        let mut inner = self.inner.lock();
        inner.events.push(FaultEvent::Partitioned {
            a: {
                let mut v: Vec<String> = a.iter().cloned().collect();
                v.sort();
                v
            },
            b: {
                let mut v: Vec<String> = b.iter().cloned().collect();
                v.sort();
                v
            },
        });
        let (pa, pb) = (a.clone(), b.clone());
        inner.partition = Some((a, b));
        for severed in inner.sever_links(|entry| {
            (pa.contains(&entry.origin) && pb.contains(&entry.addr))
                || (pb.contains(&entry.origin) && pa.contains(&entry.addr))
        }) {
            inner.events.push(FaultEvent::Severed { addr: severed });
        }
    }

    /// Remove the group partition.
    pub fn heal_partition(&self) {
        let mut inner = self.inner.lock();
        inner.partition = None;
        inner.events.push(FaultEvent::PartitionHealed);
    }

    /// Drop all fault rules for `addr` (latency, refusals, stalls, drops).
    pub fn clear(&self, addr: &str) {
        let mut inner = self.inner.lock();
        inner.rules.remove(addr);
        inner.isolated.remove(addr);
        for entry in &inner.links {
            if entry.addr == addr {
                if let Some(control) = entry.control.upgrade() {
                    control.set_stalled(false);
                }
            }
        }
    }

    /// Snapshot of the event log so far.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.inner.lock().events.clone()
    }

    /// Decide the fate of a connection attempt `origin → addr`.
    pub(crate) fn admit(&self, origin: &str, addr: &str) -> Result<LinkSetup, RefuseReason> {
        let mut inner = self.inner.lock();
        let refusal = if inner.isolated.contains(addr) {
            Some(RefuseReason::Isolated)
        } else if inner.partition.as_ref().is_some_and(|(a, b)| {
            (a.contains(origin) && b.contains(addr)) || (b.contains(origin) && a.contains(addr))
        }) {
            Some(RefuseReason::Partitioned)
        } else {
            let rule = inner.rule(addr);
            if rule.refuse_next > 0 {
                rule.refuse_next -= 1;
                Some(RefuseReason::Scheduled)
            } else if rule.refuse_probability > 0.0 {
                let p = rule.refuse_probability;
                if inner.rng.next_f64() < p {
                    Some(RefuseReason::Probabilistic)
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some(reason) = refusal {
            inner.events.push(FaultEvent::Refused {
                addr: addr.to_string(),
                reason,
            });
            return Err(reason);
        }
        let rule = inner.rule(addr).clone();
        let jitter = if rule.latency_jitter > Duration::ZERO {
            rule.latency_jitter.mul_f64(inner.rng.next_f64())
        } else {
            Duration::ZERO
        };
        let extra = rule.extra_latency + jitter;
        inner.events.push(FaultEvent::Admitted {
            addr: addr.to_string(),
            extra_latency_us: extra.as_micros() as u64,
        });
        Ok(LinkSetup {
            extra_latency: extra,
            drop_after_bytes: rule.drop_after_bytes,
            stalled: rule.stalled,
        })
    }

    /// Track an admitted link so later `isolate`/`partition`/`stall` calls
    /// can reach it.
    pub(crate) fn register_link(&self, origin: &str, addr: &str, control: &Arc<LinkControl>) {
        let mut inner = self.inner.lock();
        inner.links.retain(|entry| entry.control.strong_count() > 0);
        inner.links.push(LinkEntry {
            origin: origin.to_string(),
            addr: addr.to_string(),
            control: Arc::downgrade(control),
        });
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FaultPlan")
            .field("seed", &inner.seed)
            .field("rules", &inner.rules.len())
            .field("isolated", &inner.isolated.len())
            .field("events", &inner.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilistic_refusal_replays_under_same_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed);
            plan.refuse_connections("ias:443", 0.5);
            (0..64)
                .map(|_| plan.admit("", "ias:443").is_err())
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed must replay identically");
        assert_ne!(run(7), run(8), "different seeds should diverge");
        let refusals = run(7).iter().filter(|&&r| r).count();
        assert!(
            (16..=48).contains(&refusals),
            "p=0.5 refusal count wildly off: {refusals}/64"
        );
    }

    #[test]
    fn scheduled_refusals_consume_exactly() {
        let plan = FaultPlan::seeded(1);
        plan.refuse_next("svc:1", 2);
        assert_eq!(plan.admit("", "svc:1").unwrap_err(), RefuseReason::Scheduled);
        assert_eq!(plan.admit("", "svc:1").unwrap_err(), RefuseReason::Scheduled);
        assert!(plan.admit("", "svc:1").is_ok());
    }

    #[test]
    fn isolation_refuses_and_severs() {
        let plan = FaultPlan::seeded(1);
        let control = Arc::new(LinkControl::default());
        plan.register_link("", "host:9", &control);
        plan.isolate("host:9");
        assert!(plan.admit("", "host:9").is_err());
        assert!(control.is_severed());
        plan.heal("host:9");
        assert!(plan.admit("", "host:9").is_ok());
    }

    #[test]
    fn partition_is_directionless_and_heals() {
        let plan = FaultPlan::seeded(1);
        plan.partition(&["vm"], &["ias:443"]);
        assert_eq!(
            plan.admit("vm", "ias:443").unwrap_err(),
            RefuseReason::Partitioned
        );
        assert_eq!(
            plan.admit("ias:443", "vm").unwrap_err(),
            RefuseReason::Partitioned
        );
        // Unnamed origins are outside every group.
        assert!(plan.admit("", "ias:443").is_ok());
        plan.heal_partition();
        assert!(plan.admit("vm", "ias:443").is_ok());
    }

    #[test]
    fn write_budget_severs_at_boundary() {
        let control = LinkControl::with_faults(false, Some(10));
        assert_eq!(control.take_write_budget(6), 6);
        assert!(!control.is_severed());
        assert_eq!(control.take_write_budget(6), 4);
        assert!(control.is_severed());
        assert_eq!(control.take_write_budget(1), 0);
    }

    #[test]
    fn latency_jitter_is_bounded_and_logged() {
        let plan = FaultPlan::seeded(9);
        plan.add_latency(
            "svc:1",
            Duration::from_millis(2),
            Duration::from_millis(3),
        );
        for _ in 0..32 {
            let setup = plan.admit("", "svc:1").unwrap();
            assert!(setup.extra_latency >= Duration::from_millis(2));
            assert!(setup.extra_latency <= Duration::from_millis(5));
        }
        let events = plan.events();
        assert_eq!(events.len(), 32);
        assert!(events
            .iter()
            .all(|e| matches!(e, FaultEvent::Admitted { extra_latency_us, .. }
                if (2_000..=5_000).contains(extra_latency_us))));
    }
}
