//! Minimal HTTP/1.1 over any `Read + Write` stream.
//!
//! Supports exactly what the north-bound REST interface needs: the common
//! methods, header maps, Content-Length framing and persistent connections.

use crate::NetError;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use vnfguard_encoding::Json;
use vnfguard_telemetry::TraceContext;

/// Upper bound on header section and body sizes (defense against
/// adversarial peers on the REST surface).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Header carrying a request's remaining deadline budget in milliseconds.
/// Travels alongside `traceparent`; see [`Request::with_deadline_millis`].
pub const DEADLINE_HEADER: &str = "x-vnfguard-deadline";

/// HTTP request methods used by the REST APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    Get,
    Post,
    Put,
    Delete,
}

impl Method {
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        }
    }

    pub fn parse(s: &str) -> Result<Method, NetError> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "PUT" => Ok(Method::Put),
            "DELETE" => Ok(Method::Delete),
            other => Err(NetError::Protocol(format!("unsupported method {other}"))),
        }
    }
}

/// HTTP status codes used by the controller and manager APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    Ok,
    Created,
    NoContent,
    BadRequest,
    Unauthorized,
    Forbidden,
    NotFound,
    Conflict,
    ServerError,
    ServiceUnavailable,
    GatewayTimeout,
}

impl Status {
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Created => 201,
            Status::NoContent => 204,
            Status::BadRequest => 400,
            Status::Unauthorized => 401,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::Conflict => 409,
            Status::ServerError => 500,
            Status::ServiceUnavailable => 503,
            Status::GatewayTimeout => 504,
        }
    }

    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Created => "Created",
            Status::NoContent => "No Content",
            Status::BadRequest => "Bad Request",
            Status::Unauthorized => "Unauthorized",
            Status::Forbidden => "Forbidden",
            Status::NotFound => "Not Found",
            Status::Conflict => "Conflict",
            Status::ServerError => "Internal Server Error",
            Status::ServiceUnavailable => "Service Unavailable",
            Status::GatewayTimeout => "Gateway Timeout",
        }
    }

    pub fn from_code(code: u16) -> Status {
        match code {
            200 => Status::Ok,
            201 => Status::Created,
            204 => Status::NoContent,
            400 => Status::BadRequest,
            401 => Status::Unauthorized,
            403 => Status::Forbidden,
            404 => Status::NotFound,
            409 => Status::Conflict,
            503 => Status::ServiceUnavailable,
            504 => Status::GatewayTimeout,
            _ => Status::ServerError,
        }
    }

    pub fn is_success(self) -> bool {
        self.code() < 300
    }
}

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: Method,
    pub path: String,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn new(method: Method, path: &str) -> Request {
        Request {
            method,
            path: path.to_string(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    pub fn get(path: &str) -> Request {
        Request::new(Method::Get, path)
    }

    pub fn post(path: &str) -> Request {
        Request::new(Method::Post, path)
    }

    pub fn delete(path: &str) -> Request {
        Request::new(Method::Delete, path)
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers.insert(name.to_ascii_lowercase(), value.to_string());
        self
    }

    /// Inject a distributed-trace context as a `traceparent` header.
    /// Invalid (all-zero) contexts — the disabled-telemetry case — add
    /// nothing, so callers can thread contexts unconditionally.
    pub fn with_trace(self, ctx: &TraceContext) -> Request {
        if ctx.is_valid() {
            self.with_header("traceparent", &ctx.traceparent())
        } else {
            self
        }
    }

    /// Extract the distributed-trace context from the `traceparent`
    /// header, if present and well-formed.
    pub fn trace_context(&self) -> Option<TraceContext> {
        self.header("traceparent").and_then(TraceContext::parse)
    }

    /// Attach a deadline budget: the caller will wait at most
    /// `budget_millis` for this request. Servers propagate the *remaining*
    /// budget on downstream hops and refuse work once it reaches zero, so
    /// nobody burns cycles on an answer no one is still waiting for.
    pub fn with_deadline_millis(self, budget_millis: u64) -> Request {
        self.with_header(DEADLINE_HEADER, &budget_millis.to_string())
    }

    /// The remaining deadline budget carried by this request, if any.
    /// A malformed value reads as an exhausted budget (`Some(0)`) rather
    /// than an absent deadline — fail closed, not open.
    pub fn deadline_millis(&self) -> Option<u64> {
        self.header(DEADLINE_HEADER)
            .map(|raw| raw.trim().parse().unwrap_or(0))
    }

    pub fn with_json(mut self, body: &Json) -> Request {
        self.body = body.to_string().into_bytes();
        self.headers
            .insert("content-type".into(), "application/json".into());
        self
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Parse the body as JSON.
    pub fn json(&self) -> Result<Json, NetError> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| NetError::Protocol("request body is not UTF-8".into()))?;
        Ok(vnfguard_encoding::json::parse(text)?)
    }

    /// The value of a `?name=value` query parameter, if present. Returns
    /// `Some("")` for a bare `?name` flag.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let query = self.path.split_once('?')?.1;
        query.split('&').find_map(|pair| {
            let (key, value) = match pair.split_once('=') {
                Some((key, value)) => (key, value),
                None => (pair, ""),
            };
            (key == name).then_some(value)
        })
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: Status,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn new(status: Status) -> Response {
        Response {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    pub fn json(status: Status, body: &Json) -> Response {
        let mut response = Response::new(status);
        response.body = body.to_string().into_bytes();
        response
            .headers
            .insert("content-type".into(), "application/json".into());
        response
    }

    pub fn error(status: Status, message: &str) -> Response {
        Response::json(status, &Json::object().with("error", message))
    }

    /// A plain-text response (used by the Prometheus-style `/vm/metrics`
    /// exposition).
    pub fn text(status: Status, body: &str) -> Response {
        let mut response = Response::new(status);
        response.body = body.as_bytes().to_vec();
        response
            .headers
            .insert("content-type".into(), "text/plain; version=0.0.4".into());
        response
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Parse the body as JSON.
    pub fn parse_json(&self) -> Result<Json, NetError> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| NetError::Protocol("response body is not UTF-8".into()))?;
        Ok(vnfguard_encoding::json::parse(text)?)
    }

    /// The server's backpressure hint: how many seconds to wait before
    /// retrying, from the `retry-after` header or the `retry-after-secs`
    /// field of a JSON error body. `None` when the server gave no hint.
    pub fn retry_after_secs(&self) -> Option<u64> {
        if let Some(raw) = self.header("retry-after") {
            if let Ok(secs) = raw.trim().parse() {
                return Some(secs);
            }
        }
        self.parse_json()
            .ok()
            .and_then(|doc| doc.get("retry-after-secs").and_then(Json::as_i64))
            .map(|secs| secs.max(0) as u64)
    }
}

fn read_line(stream: &mut impl Read, budget: &mut usize) -> Result<String, NetError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            if line.is_empty() {
                return Err(NetError::ConnectionClosed);
            }
            return Err(NetError::Protocol("EOF mid-line".into()));
        }
        *budget = budget
            .checked_sub(1)
            .ok_or_else(|| NetError::Protocol("header section too large".into()))?;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| NetError::Protocol("non-UTF-8 header line".into()));
        }
        line.push(byte[0]);
    }
}

fn read_headers(
    stream: &mut impl Read,
    budget: &mut usize,
) -> Result<BTreeMap<String, String>, NetError> {
    let mut headers = BTreeMap::new();
    loop {
        let line = read_line(stream, budget)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| NetError::Protocol(format!("malformed header: {line}")))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
}

fn read_body(
    stream: &mut impl Read,
    headers: &BTreeMap<String, String>,
) -> Result<Vec<u8>, NetError> {
    let length: usize = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| NetError::Protocol(format!("bad content-length: {v}")))?,
    };
    if length > MAX_BODY_BYTES {
        return Err(NetError::Protocol(format!("body of {length} bytes exceeds limit")));
    }
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).map_err(|_| NetError::ConnectionClosed)?;
    Ok(body)
}

/// Read one request from the stream.
pub fn read_request(stream: &mut impl Read) -> Result<Request, NetError> {
    let mut budget = MAX_HEADER_BYTES;
    let request_line = read_line(stream, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = Method::parse(parts.next().unwrap_or(""))?;
    let path = parts
        .next()
        .ok_or_else(|| NetError::Protocol("missing request path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if version != "HTTP/1.1" {
        return Err(NetError::Protocol(format!("unsupported version {version:?}")));
    }
    let headers = read_headers(stream, &mut budget)?;
    let body = read_body(stream, &headers)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Write one request.
pub fn write_request(stream: &mut impl Write, request: &Request) -> Result<(), NetError> {
    let mut head = format!("{} {} HTTP/1.1\r\n", request.method.as_str(), request.path);
    for (name, value) in &request.headers {
        if name != "content-length" {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", request.body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(&request.body)?;
    stream.flush()?;
    Ok(())
}

/// Read one response.
pub fn read_response(stream: &mut impl Read) -> Result<Response, NetError> {
    let mut budget = MAX_HEADER_BYTES;
    let status_line = read_line(stream, &mut budget)?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    if version != "HTTP/1.1" {
        return Err(NetError::Protocol(format!("unsupported version {version:?}")));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| NetError::Protocol("missing status code".into()))?;
    let headers = read_headers(stream, &mut budget)?;
    let body = read_body(stream, &headers)?;
    Ok(Response {
        status: Status::from_code(code),
        headers,
        body,
    })
}

/// Write one response.
pub fn write_response(stream: &mut impl Write, response: &Response) -> Result<(), NetError> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status.code(),
        response.status.reason()
    );
    for (name, value) in &response.headers {
        if name != "content-length" {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", response.body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()?;
    Ok(())
}

/// Perform one request/response exchange over an open stream.
pub fn roundtrip(
    stream: &mut (impl Read + Write),
    request: &Request,
) -> Result<Response, NetError> {
    write_request(stream, request)?;
    read_response(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Duplex;

    #[test]
    fn request_roundtrip_over_pipe() {
        let (mut client, mut server) = Duplex::pipe();
        let request = Request::post("/wm/staticflowpusher/json")
            .with_header("X-Auth", "token-1")
            .with_json(&Json::object().with("name", "flow-1").with("priority", 100i64));
        write_request(&mut client, &request).unwrap();
        let received = read_request(&mut server).unwrap();
        assert_eq!(received.method, Method::Post);
        assert_eq!(received.path, "/wm/staticflowpusher/json");
        assert_eq!(received.header("x-auth"), Some("token-1"));
        let json = received.json().unwrap();
        assert_eq!(json.get("priority").and_then(Json::as_i64), Some(100));
    }

    #[test]
    fn response_roundtrip_over_pipe() {
        let (mut client, mut server) = Duplex::pipe();
        let response = Response::json(Status::Created, &Json::object().with("ok", true));
        write_response(&mut server, &response).unwrap();
        let received = read_response(&mut client).unwrap();
        assert_eq!(received.status, Status::Created);
        assert_eq!(
            received.parse_json().unwrap().get("ok"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn empty_body_and_no_content() {
        let (mut client, mut server) = Duplex::pipe();
        write_response(&mut server, &Response::new(Status::NoContent)).unwrap();
        let received = read_response(&mut client).unwrap();
        assert_eq!(received.status, Status::NoContent);
        assert!(received.body.is_empty());
    }

    #[test]
    fn pipelined_requests_framed_correctly() {
        let (mut client, mut server) = Duplex::pipe();
        for i in 0..3i64 {
            let request = Request::post("/x").with_json(&Json::object().with("i", i));
            write_request(&mut client, &request).unwrap();
        }
        for i in 0..3i64 {
            let received = read_request(&mut server).unwrap();
            assert_eq!(received.json().unwrap().get("i").and_then(Json::as_i64), Some(i));
        }
    }

    #[test]
    fn rejects_malformed_input() {
        let (mut client, mut server) = Duplex::pipe();
        use std::io::Write as _;
        client.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        drop(client);
        assert!(read_request(&mut server).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let (mut client, mut server) = Duplex::pipe();
        use std::io::Write as _;
        client.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(matches!(
            read_request(&mut server),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let (mut client, mut server) = Duplex::pipe();
        use std::io::Write as _;
        client
            .write_all(
                format!(
                    "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        assert!(read_request(&mut server).is_err());
    }

    #[test]
    fn connection_closed_detected() {
        let (client, mut server) = Duplex::pipe();
        drop(client);
        assert!(matches!(
            read_request(&mut server),
            Err(NetError::ConnectionClosed)
        ));
    }

    #[test]
    fn query_param_parsing() {
        let request = Request::get("/vm/events?since=42&verbose");
        assert_eq!(request.query_param("since"), Some("42"));
        assert_eq!(request.query_param("verbose"), Some(""));
        assert_eq!(request.query_param("missing"), None);
        assert_eq!(Request::get("/vm/events").query_param("since"), None);
    }

    #[test]
    fn text_response_sets_plain_content_type() {
        let response = Response::text(Status::Ok, "vnfguard_core_enrollments_total 3\n");
        assert_eq!(response.status, Status::Ok);
        assert!(response.header("content-type").unwrap().starts_with("text/plain"));
        assert_eq!(response.body, b"vnfguard_core_enrollments_total 3\n");
    }

    #[test]
    fn status_helpers() {
        assert!(Status::Ok.is_success());
        assert!(Status::Created.is_success());
        assert!(!Status::Forbidden.is_success());
        assert_eq!(Status::from_code(404), Status::NotFound);
        assert_eq!(Status::from_code(599), Status::ServerError);
        assert_eq!(Status::from_code(504), Status::GatewayTimeout);
        assert_eq!(Status::GatewayTimeout.code(), 504);
        assert!(!Status::GatewayTimeout.is_success());
    }

    #[test]
    fn deadline_header_roundtrip() {
        let request = Request::post("/vm/renew").with_deadline_millis(1500);
        assert_eq!(request.header(DEADLINE_HEADER), Some("1500"));
        assert_eq!(request.deadline_millis(), Some(1500));
        assert_eq!(Request::get("/vm/ca").deadline_millis(), None);
        // A garbled budget fails closed: exhausted, not absent.
        let garbled = Request::get("/vm/ca").with_header(DEADLINE_HEADER, "soon");
        assert_eq!(garbled.deadline_millis(), Some(0));
    }

    #[test]
    fn retry_after_from_header_and_body() {
        let mut response = Response::json(
            Status::ServiceUnavailable,
            &Json::object().with("code", "overloaded").with("retry-after-secs", 7i64),
        );
        assert_eq!(response.retry_after_secs(), Some(7));
        // The header, when present, wins over the body field.
        response.headers.insert("retry-after".into(), "3".into());
        assert_eq!(response.retry_after_secs(), Some(3));
        assert_eq!(Response::new(Status::Ok).retry_after_secs(), None);
    }
}
