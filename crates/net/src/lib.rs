//! # vnfguard-net
//!
//! The in-memory network fabric the simulated SDN deployment runs on, plus
//! a from-scratch HTTP/1.1 implementation and a REST router.
//!
//! - [`stream`] — bidirectional byte streams (implementing `std::io::Read`
//!   / `Write`) built on crossbeam channels, with optional per-link latency
//!   and passive **taps** (the eavesdropping adversary of the paper's §1);
//! - [`fabric`] — a named-endpoint network: `listen("controller:8443")`,
//!   `connect(...)`, per-address taps, connection accounting;
//! - [`fault`] — deterministic fault injection: refused connections,
//!   latency/jitter, mid-stream drops, stalls and partitions, driven by a
//!   seeded [`FaultPlan`] so failure sequences replay;
//! - [`http`] — HTTP/1.1 requests/responses with Content-Length framing;
//! - [`rest`] — a path-pattern router (`/wm/device/:id`) with JSON helpers;
//! - [`server`] — thread-per-connection serving with graceful shutdown.
//!
//! The fabric deliberately models the *layering* rather than TCP dynamics:
//! streams are reliable and ordered, which is what the REST-over-TLS
//! north-bound interface of the paper assumes.

pub mod fabric;
pub mod fault;
pub mod http;
pub mod rest;
pub mod server;
pub mod stream;

pub use fabric::{Listener, Network};
pub use fault::{FaultEvent, FaultPlan, InjectedFault, LinkControl, RefuseReason};
pub use http::{Method, Request, Response, Status};
pub use rest::Router;
pub use server::ServerHandle;
pub use stream::{Duplex, TapHandle};

/// Errors from the fabric and HTTP layers.
#[derive(Debug)]
pub enum NetError {
    /// No listener is registered at the address (or a fault refused it).
    ConnectionRefused(String),
    /// The address is already bound.
    AddressInUse(String),
    /// The peer closed the stream mid-message.
    ConnectionClosed,
    /// A read deadline elapsed (see `Duplex::set_read_timeout`).
    TimedOut(String),
    /// A fault-injected failure mid-stream (severed link, forced reset).
    Injected(String),
    /// An I/O error from the stream layer.
    Io(std::io::Error),
    /// Malformed HTTP or JSON payload.
    Protocol(String),
}

impl NetError {
    /// Is this the kind of transient transport failure a caller should
    /// retry (refusal, timeout, mid-stream drop, peer close)?
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NetError::ConnectionRefused(_)
                | NetError::ConnectionClosed
                | NetError::TimedOut(_)
                | NetError::Injected(_)
                | NetError::Io(_)
        )
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::ConnectionRefused(addr) => write!(f, "connection refused: {addr}"),
            NetError::AddressInUse(addr) => write!(f, "address in use: {addr}"),
            NetError::ConnectionClosed => write!(f, "connection closed by peer"),
            NetError::TimedOut(what) => write!(f, "timed out: {what}"),
            NetError::Injected(what) => write!(f, "injected fault: {what}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        if e.kind() == std::io::ErrorKind::TimedOut {
            return NetError::TimedOut(e.to_string());
        }
        if e.get_ref().is_some_and(|inner| inner.is::<InjectedFault>()) {
            return NetError::Injected(e.to_string());
        }
        NetError::Io(e)
    }
}

impl From<vnfguard_encoding::EncodingError> for NetError {
    fn from(e: vnfguard_encoding::EncodingError) -> NetError {
        NetError::Protocol(e.to_string())
    }
}
