//! Thread-per-connection HTTP serving over the fabric.
//!
//! The security handshake (if any) is injected as a *stream wrapper*: the
//! TLS layer in `vnfguard-tls` provides a wrapper that upgrades the raw
//! stream before HTTP begins, which is how the controller's three security
//! modes are composed (plain HTTP uses the identity wrapper).

use crate::fabric::Listener;
use crate::fault::LinkControl;
use crate::http::{read_request, write_response, Response, Status};
use crate::rest::Router;
use crate::stream::Duplex;
use crate::NetError;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Upgrades an accepted raw stream (e.g. performs a TLS handshake) and
/// returns the application-layer stream plus optional peer identity data.
pub trait StreamUpgrade: Send + Sync + 'static {
    /// The upgraded stream type.
    type Upgraded: Read + Write + Send + 'static;

    /// Perform the server side of the upgrade. Returning an error drops the
    /// connection (e.g. client failed authentication).
    fn upgrade(&self, raw: Duplex) -> Result<(Self::Upgraded, PeerIdentity), NetError>;
}

/// Identity information established during the upgrade (client certificate
/// subject etc.); empty for unauthenticated transports.
#[derive(Debug, Clone, Default)]
pub struct PeerIdentity {
    /// Authenticated peer common name, if client auth happened.
    pub common_name: Option<String>,
    /// Serial of the presented client certificate.
    pub cert_serial: Option<u64>,
}

/// The identity upgrade: plain TCP-like service (Floodlight's HTTP mode).
pub struct PlainUpgrade;

impl StreamUpgrade for PlainUpgrade {
    type Upgraded = Duplex;

    fn upgrade(&self, raw: Duplex) -> Result<(Duplex, PeerIdentity), NetError> {
        Ok((raw, PeerIdentity::default()))
    }
}

/// Statistics exposed by a running server.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub upgrade_failures: AtomicU64,
    /// Connection handler threads currently alive (entered, not yet
    /// exited). Zero after a completed shutdown.
    pub active_handlers: AtomicU64,
}

/// One in-flight connection: the handler thread plus the link switches
/// used to wake it out of a blocked read at shutdown.
struct Worker {
    control: Arc<LinkControl>,
    thread: JoinHandle<()>,
}

type WorkerSet = Arc<Mutex<Vec<Worker>>>;

/// Decrements `active_handlers` when the handler thread exits, however it
/// exits.
struct HandlerGuard(Arc<ServerStats>);

impl Drop for HandlerGuard {
    fn drop(&mut self) {
        self.0.active_handlers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Handle to a running server; stops and joins on drop.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    workers: WorkerSet,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn connections(&self) -> u64 {
        self.stats.connections.load(Ordering::Relaxed)
    }

    pub fn requests(&self) -> u64 {
        self.stats.requests.load(Ordering::Relaxed)
    }

    pub fn upgrade_failures(&self) -> u64 {
        self.stats.upgrade_failures.load(Ordering::Relaxed)
    }

    /// Shared statistics; remains readable after [`stop`](Self::stop).
    pub fn stats(&self) -> Arc<ServerStats> {
        self.stats.clone()
    }

    /// Request shutdown: stop accepting, sever every in-flight connection,
    /// and join all handler threads before returning.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        // In-flight handlers may be parked in a blocking read (keep-alive
        // connections with no pending request). Severing the link wakes
        // them so the joins below cannot hang, and joining means no
        // handler thread outlives the handle — they are not detached.
        let workers = std::mem::take(&mut *self.workers.lock());
        for worker in &workers {
            worker.control.sever();
        }
        for worker in workers {
            let _ = worker.thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("connections", &self.connections())
            .field("requests", &self.requests())
            .finish()
    }
}

/// Serve `router` on `listener`, upgrading each accepted stream through
/// `upgrade`. Each connection is handled on its own thread with keep-alive.
pub fn serve<U: StreamUpgrade>(listener: Listener, upgrade: U, router: Router) -> ServerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let workers: WorkerSet = Arc::new(Mutex::new(Vec::new()));
    let router = Arc::new(router);
    let upgrade = Arc::new(upgrade);

    let accept_stop = stop.clone();
    let accept_stats = stats.clone();
    let accept_workers = workers.clone();
    let thread = std::thread::spawn(move || {
        loop {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            // Poll-accept so the stop flag is honored promptly.
            let raw = match listener.try_accept() {
                Some(stream) => stream,
                None => {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    continue;
                }
            };
            accept_stats.connections.fetch_add(1, Ordering::Relaxed);
            accept_stats.active_handlers.fetch_add(1, Ordering::SeqCst);
            let control = raw.control();
            let router = router.clone();
            let upgrade = upgrade.clone();
            let stats = accept_stats.clone();
            let stop = accept_stop.clone();
            let handler = std::thread::spawn(move || {
                let _guard = HandlerGuard(stats.clone());
                let (mut stream, _identity) = match upgrade.upgrade(raw) {
                    Ok(upgraded) => upgraded,
                    Err(_) => {
                        stats.upgrade_failures.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                while !stop.load(Ordering::SeqCst) {
                    let request = match read_request(&mut stream) {
                        Ok(request) => request,
                        Err(_) => break, // peer closed or protocol error
                    };
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    let response = router.dispatch(&request);
                    if write_response(&mut stream, &response).is_err() {
                        break;
                    }
                }
            });
            let mut workers = accept_workers.lock();
            // Completed handlers have nothing left to join; keep the set
            // bounded by the number of live connections.
            workers.retain(|w| !w.thread.is_finished());
            workers.push(Worker {
                control,
                thread: handler,
            });
        }
    });

    ServerHandle {
        stop,
        stats,
        workers,
        thread: Some(thread),
    }
}

/// Serve with a router that also sees the authenticated peer identity.
/// Handlers needing the identity are registered through a closure capturing
/// it per connection; this variant passes the identity as a pseudo-header
/// `x-peer-cn` / `x-peer-serial` so ordinary routes can authorize on it.
pub fn serve_with_identity<U: StreamUpgrade>(
    listener: Listener,
    upgrade: U,
    router: Router,
) -> ServerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let workers: WorkerSet = Arc::new(Mutex::new(Vec::new()));
    let router = Arc::new(router);
    let upgrade = Arc::new(upgrade);

    let accept_stop = stop.clone();
    let accept_stats = stats.clone();
    let accept_workers = workers.clone();
    let thread = std::thread::spawn(move || {
        loop {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let raw = match listener.try_accept() {
                Some(stream) => stream,
                None => {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    continue;
                }
            };
            accept_stats.connections.fetch_add(1, Ordering::Relaxed);
            accept_stats.active_handlers.fetch_add(1, Ordering::SeqCst);
            let control = raw.control();
            let router = router.clone();
            let upgrade = upgrade.clone();
            let stats = accept_stats.clone();
            let stop = accept_stop.clone();
            let handler = std::thread::spawn(move || {
                let _guard = HandlerGuard(stats.clone());
                let (mut stream, identity) = match upgrade.upgrade(raw) {
                    Ok(upgraded) => upgraded,
                    Err(_) => {
                        stats.upgrade_failures.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                while !stop.load(Ordering::SeqCst) {
                    let mut request = match read_request(&mut stream) {
                        Ok(request) => request,
                        Err(_) => break,
                    };
                    if let Some(cn) = &identity.common_name {
                        request.headers.insert("x-peer-cn".into(), cn.clone());
                    }
                    if let Some(serial) = identity.cert_serial {
                        request
                            .headers
                            .insert("x-peer-serial".into(), serial.to_string());
                    }
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    let response = router.dispatch(&request);
                    if write_response(&mut stream, &response).is_err() {
                        break;
                    }
                }
            });
            let mut workers = accept_workers.lock();
            workers.retain(|w| !w.thread.is_finished());
            workers.push(Worker {
                control,
                thread: handler,
            });
        }
    });

    ServerHandle {
        stop,
        stats,
        workers,
        thread: Some(thread),
    }
}

/// A simple client: one request per call over a fresh or kept-alive stream.
///
/// trace-opt-out: transport-level client with no telemetry handle; callers
/// inject trace context per request via `Request::with_trace`.
pub struct HttpClient<S: Read + Write> {
    stream: S,
}

impl<S: Read + Write> HttpClient<S> {
    pub fn new(stream: S) -> HttpClient<S> {
        HttpClient { stream }
    }

    pub fn request(
        &mut self,
        request: &crate::http::Request,
    ) -> Result<crate::http::Response, NetError> {
        crate::http::roundtrip(&mut self.stream, request)
    }

    pub fn into_inner(self) -> S {
        self.stream
    }
}

/// 500 response helper for handler panics and internal errors.
pub fn internal_error(message: &str) -> Response {
    Response::error(Status::ServerError, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Network;
    use crate::http::{Method, Request};
    use vnfguard_encoding::Json;

    fn test_router() -> Router {
        let mut router = Router::new();
        router.get("/ping", |_, _| {
            Response::json(Status::Ok, &Json::object().with("pong", true))
        });
        router.route(Method::Post, "/echo", |request, _| {
            Response::json(Status::Ok, &request.json().unwrap_or(Json::Null))
        });
        router.get("/whoami", |request, _| {
            Response::json(
                Status::Ok,
                &Json::object().with("cn", request.header("x-peer-cn").unwrap_or("anonymous")),
            )
        });
        router
    }

    #[test]
    fn serves_requests() {
        let net = Network::new();
        let listener = net.listen("svc:80").unwrap();
        let handle = serve(listener, PlainUpgrade, test_router());

        let stream = net.connect("svc:80").unwrap();
        let mut client = HttpClient::new(stream);
        let response = client.request(&Request::get("/ping")).unwrap();
        assert_eq!(response.status, Status::Ok);
        assert_eq!(
            response.parse_json().unwrap().get("pong"),
            Some(&Json::Bool(true))
        );
        // Keep-alive: second request on the same stream.
        let response = client
            .request(&Request::post("/echo").with_json(&Json::object().with("n", 1i64)))
            .unwrap();
        assert_eq!(
            response.parse_json().unwrap().get("n").and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(handle.requests(), 2);
        assert_eq!(handle.connections(), 1);
        handle.stop();
    }

    #[test]
    fn unknown_route_is_404() {
        let net = Network::new();
        let listener = net.listen("svc:80").unwrap();
        let _handle = serve(listener, PlainUpgrade, test_router());
        let mut client = HttpClient::new(net.connect("svc:80").unwrap());
        let response = client.request(&Request::get("/nope")).unwrap();
        assert_eq!(response.status, Status::NotFound);
    }

    #[test]
    fn concurrent_clients() {
        let net = Network::new();
        let listener = net.listen("svc:80").unwrap();
        let handle = serve(listener, PlainUpgrade, test_router());
        let mut threads = Vec::new();
        for _ in 0..8 {
            let net = net.clone();
            threads.push(std::thread::spawn(move || {
                let mut client = HttpClient::new(net.connect("svc:80").unwrap());
                for _ in 0..5 {
                    let response = client.request(&Request::get("/ping")).unwrap();
                    assert_eq!(response.status, Status::Ok);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.requests(), 40);
        assert_eq!(handle.connections(), 8);
    }

    #[test]
    fn identity_propagation() {
        struct FixedIdentity;
        impl StreamUpgrade for FixedIdentity {
            type Upgraded = Duplex;
            fn upgrade(&self, raw: Duplex) -> Result<(Duplex, PeerIdentity), NetError> {
                Ok((
                    raw,
                    PeerIdentity {
                        common_name: Some("vnf-42".into()),
                        cert_serial: Some(7),
                    },
                ))
            }
        }
        let net = Network::new();
        let listener = net.listen("svc:443").unwrap();
        let _handle = serve_with_identity(listener, FixedIdentity, test_router());
        let mut client = HttpClient::new(net.connect("svc:443").unwrap());
        let response = client.request(&Request::get("/whoami")).unwrap();
        assert_eq!(
            response.parse_json().unwrap().get("cn").and_then(Json::as_str),
            Some("vnf-42")
        );
    }

    #[test]
    fn failed_upgrade_counted_and_dropped() {
        struct RejectAll;
        impl StreamUpgrade for RejectAll {
            type Upgraded = Duplex;
            fn upgrade(&self, _raw: Duplex) -> Result<(Duplex, PeerIdentity), NetError> {
                Err(NetError::Protocol("handshake failed".into()))
            }
        }
        let net = Network::new();
        let listener = net.listen("svc:443").unwrap();
        let handle = serve(listener, RejectAll, test_router());
        let mut client = HttpClient::new(net.connect("svc:443").unwrap());
        // The server drops the connection; the request errors out.
        assert!(client.request(&Request::get("/ping")).is_err());
        // Give the server thread a moment to account the failure.
        for _ in 0..100 {
            if handle.upgrade_failures() == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(handle.upgrade_failures(), 1);
        assert_eq!(handle.requests(), 0);
    }

    #[test]
    fn stop_joins_idle_keepalive_handlers() {
        let net = Network::new();
        let listener = net.listen("svc:80").unwrap();
        let handle = serve(listener, PlainUpgrade, test_router());

        // Two keep-alive clients that stay connected (handlers parked in a
        // blocking read with no pending request).
        let mut c1 = HttpClient::new(net.connect("svc:80").unwrap());
        let mut c2 = HttpClient::new(net.connect("svc:80").unwrap());
        c1.request(&Request::get("/ping")).unwrap();
        c2.request(&Request::get("/ping")).unwrap();

        let stats = handle.stats();
        assert_eq!(stats.active_handlers.load(Ordering::SeqCst), 2);
        // Must return promptly (handlers woken + joined), not hang on the
        // parked reads — and afterwards no handler thread is still alive.
        handle.stop();
        assert_eq!(
            stats.active_handlers.load(Ordering::SeqCst),
            0,
            "shutdown left detached connection handlers running"
        );
        // The severed streams now error on the client side too.
        assert!(c1.request(&Request::get("/ping")).is_err());
    }

    #[test]
    fn stop_unbinds_address() {
        let net = Network::new();
        let listener = net.listen("svc:80").unwrap();
        let handle = serve(listener, PlainUpgrade, test_router());
        handle.stop();
        // Address free again.
        assert!(net.listen("svc:80").is_ok());
    }
}
