//! The named-endpoint network fabric.
//!
//! Components bind string addresses ("controller:8443"), peers connect to
//! them, and the operator (or adversary) can attach taps to any address.

use crate::fault::{FaultPlan, LinkControl, RefuseReason};
use crate::stream::{Duplex, TapHandle};
use crate::NetError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use vnfguard_telemetry::{Counter, Telemetry};

/// Pre-fetched fabric counters (avoids registry lookups on the hot path).
#[derive(Clone)]
struct FabricCounters {
    connections: Counter,
    refusals: Counter,
    bytes: Counter,
}

#[derive(Default)]
struct NetworkInner {
    listeners: HashMap<String, Sender<Duplex>>,
    taps: HashMap<String, TapHandle>,
    latency: Duration,
    connections: u64,
    faults: Option<FaultPlan>,
    counters: Option<FabricCounters>,
}

/// A shared network fabric. Cloning shares the same fabric.
#[derive(Clone, Default)]
pub struct Network {
    inner: Arc<Mutex<NetworkInner>>,
}

impl Network {
    pub fn new() -> Network {
        Network::default()
    }

    /// Set the one-way latency applied to all *future* connections.
    pub fn set_latency(&self, latency: Duration) {
        self.inner.lock().latency = latency;
    }

    /// Attach telemetry: connection attempts, refusals (missing listener or
    /// injected fault), and bytes carried over future connections land in
    /// `vnfguard_net_*` counters.
    pub fn set_telemetry(&self, telemetry: &Telemetry) {
        self.inner.lock().counters = Some(FabricCounters {
            connections: telemetry.counter("vnfguard_net_connections_total"),
            refusals: telemetry.counter("vnfguard_net_refusals_total"),
            bytes: telemetry.counter("vnfguard_net_bytes_total"),
        });
    }

    /// Bind a listener at `addr`.
    pub fn listen(&self, addr: &str) -> Result<Listener, NetError> {
        let mut inner = self.inner.lock();
        if inner.listeners.contains_key(addr) {
            return Err(NetError::AddressInUse(addr.to_string()));
        }
        let (tx, rx) = unbounded();
        inner.listeners.insert(addr.to_string(), tx);
        Ok(Listener {
            addr: addr.to_string(),
            rx,
            network: self.clone(),
        })
    }

    /// Connect to `addr`, returning the client stream half. The origin is
    /// anonymous; use [`connect_from`](Self::connect_from) when the caller
    /// should be subject to named-group partitions.
    pub fn connect(&self, addr: &str) -> Result<Duplex, NetError> {
        self.connect_from("", addr)
    }

    /// Connect to `addr` as the named endpoint `origin`. Fault plans use
    /// the origin to enforce partitions between endpoint groups.
    pub fn connect_from(&self, origin: &str, addr: &str) -> Result<Duplex, NetError> {
        let (latency, tap, listener_tx, faults, counters) = {
            let mut inner = self.inner.lock();
            let counters = inner.counters.clone();
            let tx = match inner.listeners.get(addr).cloned() {
                Some(tx) => tx,
                None => {
                    if let Some(c) = &counters {
                        c.refusals.inc();
                    }
                    return Err(NetError::ConnectionRefused(addr.to_string()));
                }
            };
            inner.connections += 1;
            (
                inner.latency,
                inner.taps.get(addr).cloned(),
                tx,
                inner.faults.clone(),
                counters,
            )
        };
        let mut extra_latency = Duration::ZERO;
        let mut control = LinkControl::default();
        if let Some(plan) = &faults {
            match plan.admit(origin, addr) {
                Ok(setup) => {
                    extra_latency = setup.extra_latency;
                    control = LinkControl::with_faults(setup.stalled, setup.drop_after_bytes);
                }
                // Injected refusals are indistinguishable from a missing
                // listener to the caller (as on a real network); the fault
                // event log is the bookkeeping channel.
                Err(
                    RefuseReason::Probabilistic
                    | RefuseReason::Scheduled
                    | RefuseReason::Isolated
                    | RefuseReason::Partitioned,
                ) => {
                    if let Some(c) = &counters {
                        c.refusals.inc();
                    }
                    return Err(NetError::ConnectionRefused(addr.to_string()));
                }
            }
        }
        let control = Arc::new(control);
        let (mut client, mut server) =
            Duplex::pair_with_control(latency + extra_latency, tap.as_ref(), control.clone());
        if let Some(c) = &counters {
            c.connections.inc();
            // Both halves feed one fabric-wide counter, so it totals the
            // bytes carried in both directions.
            client.attach_byte_counter(c.bytes.clone());
            server.attach_byte_counter(c.bytes.clone());
        }
        if let Some(plan) = &faults {
            plan.register_link(origin, addr, &control);
        }
        listener_tx
            .send(server)
            .map_err(|_| NetError::ConnectionRefused(addr.to_string()))?;
        Ok(client)
    }

    /// Attach a fault plan governing all future connections. Passing a
    /// clone of a plan shares its seed, rules and event log.
    pub fn install_faults(&self, plan: &FaultPlan) {
        self.inner.lock().faults = Some(plan.clone());
    }

    /// Remove the fault plan; existing links keep their injected behavior.
    pub fn clear_faults(&self) {
        self.inner.lock().faults = None;
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.inner.lock().faults.clone()
    }

    /// Attach (or fetch) a tap on `addr`: every connection established to
    /// that address *after* this call is recorded.
    pub fn tap(&self, addr: &str) -> TapHandle {
        self.inner
            .lock()
            .taps
            .entry(addr.to_string())
            .or_default()
            .clone()
    }

    /// Total connections established through this fabric.
    pub fn connection_count(&self) -> u64 {
        self.inner.lock().connections
    }

    fn unbind(&self, addr: &str) {
        self.inner.lock().listeners.remove(addr);
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Network")
            .field("listeners", &inner.listeners.len())
            .field("taps", &inner.taps.len())
            .field("connections", &inner.connections)
            .finish()
    }
}

/// A bound listener; unbinds its address when dropped.
pub struct Listener {
    addr: String,
    rx: Receiver<Duplex>,
    network: Network,
}

impl Listener {
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Block until the next inbound connection (EOF error when the fabric
    /// drops the listener registration).
    pub fn accept(&self) -> Result<Duplex, NetError> {
        self.rx.recv().map_err(|_| NetError::ConnectionClosed)
    }

    /// Non-blocking accept.
    pub fn try_accept(&self) -> Option<Duplex> {
        self.rx.try_recv().ok()
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.network.unbind(&self.addr);
    }
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Listener").field("addr", &self.addr).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn connect_and_exchange() {
        let net = Network::new();
        let listener = net.listen("controller:8080").unwrap();
        let mut client = net.connect("controller:8080").unwrap();
        let mut server = listener.accept().unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        assert_eq!(net.connection_count(), 1);
    }

    #[test]
    fn refuses_unknown_address() {
        let net = Network::new();
        assert!(matches!(
            net.connect("nobody:1"),
            Err(NetError::ConnectionRefused(_))
        ));
    }

    #[test]
    fn rejects_double_bind() {
        let net = Network::new();
        let _l = net.listen("x:1").unwrap();
        assert!(matches!(net.listen("x:1"), Err(NetError::AddressInUse(_))));
    }

    #[test]
    fn rebind_after_drop() {
        let net = Network::new();
        drop(net.listen("x:1").unwrap());
        assert!(net.listen("x:1").is_ok());
    }

    #[test]
    fn multiple_clients_one_listener() {
        let net = Network::new();
        let listener = net.listen("svc:1").unwrap();
        let mut c1 = net.connect("svc:1").unwrap();
        let mut c2 = net.connect("svc:1").unwrap();
        let mut s1 = listener.accept().unwrap();
        let mut s2 = listener.accept().unwrap();
        c1.write_all(b"one").unwrap();
        c2.write_all(b"two").unwrap();
        let mut b1 = [0u8; 3];
        s1.read_exact(&mut b1).unwrap();
        let mut b2 = [0u8; 3];
        s2.read_exact(&mut b2).unwrap();
        assert_eq!(&b1, b"one");
        assert_eq!(&b2, b"two");
    }

    #[test]
    fn tap_observes_future_connections() {
        let net = Network::new();
        let listener = net.listen("svc:1").unwrap();
        let tap = net.tap("svc:1");
        let mut client = net.connect("svc:1").unwrap();
        let mut server = listener.accept().unwrap();
        client.write_all(b"password=hunter2").unwrap();
        let mut buf = [0u8; 16];
        server.read_exact(&mut buf).unwrap();
        assert!(tap.contains(b"hunter2"));
    }

    #[test]
    fn fault_plan_refuses_scheduled_connections() {
        let net = Network::new();
        let plan = crate::fault::FaultPlan::seeded(3);
        net.install_faults(&plan);
        let _listener = net.listen("ias:443").unwrap();
        plan.refuse_next("ias:443", 1);
        assert!(matches!(
            net.connect("ias:443"),
            Err(NetError::ConnectionRefused(_))
        ));
        assert!(net.connect("ias:443").is_ok());
    }

    #[test]
    fn isolate_severs_established_connections() {
        let net = Network::new();
        let plan = crate::fault::FaultPlan::seeded(3);
        net.install_faults(&plan);
        let listener = net.listen("agent:7000").unwrap();
        let mut client = net.connect("agent:7000").unwrap();
        let mut server = listener.accept().unwrap();
        client.write_all(b"pre").unwrap();
        let mut buf = [0u8; 3];
        server.read_exact(&mut buf).unwrap();

        plan.isolate("agent:7000");
        assert!(client.write_all(b"post").is_err());
        assert!(matches!(
            net.connect("agent:7000"),
            Err(NetError::ConnectionRefused(_))
        ));
        plan.heal("agent:7000");
        assert!(net.connect("agent:7000").is_ok());
    }

    #[test]
    fn group_partition_respects_origins() {
        let net = Network::new();
        let plan = crate::fault::FaultPlan::seeded(3);
        net.install_faults(&plan);
        let _listener = net.listen("ias:443").unwrap();
        plan.partition(&["vm"], &["ias:443"]);
        assert!(net.connect_from("vm", "ias:443").is_err());
        // Unnamed and unrelated origins still get through.
        assert!(net.connect("ias:443").is_ok());
        assert!(net.connect_from("agent", "ias:443").is_ok());
        plan.heal_partition();
        assert!(net.connect_from("vm", "ias:443").is_ok());
    }

    #[test]
    fn injected_latency_delays_connection_traffic() {
        let net = Network::new();
        let plan = crate::fault::FaultPlan::seeded(3);
        net.install_faults(&plan);
        let listener = net.listen("svc:1").unwrap();
        plan.add_latency("svc:1", Duration::from_millis(25), Duration::ZERO);
        let mut client = net.connect("svc:1").unwrap();
        let mut server = listener.accept().unwrap();
        let start = std::time::Instant::now();
        client.write_all(b"x").unwrap();
        let mut buf = [0u8; 1];
        server.read_exact(&mut buf).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "latency not injected: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn telemetry_counts_connections_refusals_and_bytes() {
        let net = Network::new();
        let telemetry = Telemetry::new();
        net.set_telemetry(&telemetry);
        let listener = net.listen("svc:1").unwrap();
        let mut client = net.connect("svc:1").unwrap();
        let mut server = listener.accept().unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        server.write_all(b"pong!").unwrap();
        let mut buf = [0u8; 5];
        client.read_exact(&mut buf).unwrap();
        let _ = net.connect("nobody:1");
        assert_eq!(
            telemetry.metrics().counter_value("vnfguard_net_connections_total"),
            Some(1)
        );
        assert_eq!(
            telemetry.metrics().counter_value("vnfguard_net_refusals_total"),
            Some(1)
        );
        // 4 bytes client→server plus 5 back.
        assert_eq!(
            telemetry.metrics().counter_value("vnfguard_net_bytes_total"),
            Some(9)
        );
    }

    #[test]
    fn try_accept_nonblocking() {
        let net = Network::new();
        let listener = net.listen("svc:1").unwrap();
        assert!(listener.try_accept().is_none());
        let _client = net.connect("svc:1").unwrap();
        assert!(listener.try_accept().is_some());
    }
}
