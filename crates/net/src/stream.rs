//! In-memory byte streams with latency modeling, passive taps, fault
//! switches and read deadlines.

use crate::fault::{injected_io, LinkControl};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use vnfguard_telemetry::Counter;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a blocked read sleeps between checks of the sever/stall flags
/// and the deadline. Data arrival wakes the reader immediately (channel
/// condvar); this only bounds how stale a *control* change can go
/// unnoticed.
const READ_POLL_SLICE: Duration = Duration::from_millis(2);

/// Direction of a tapped frame, relative to the connection initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    ToServer,
    /// Server → client.
    ToClient,
}

/// Passive wiretap state shared by both stream halves.
#[derive(Debug, Default)]
pub struct TapState {
    frames: Mutex<Vec<(Direction, Vec<u8>)>>,
}

/// Handle to read captured traffic — the eavesdropper's view of the wire.
#[derive(Debug, Clone)]
pub struct TapHandle {
    state: Arc<TapState>,
}

impl TapHandle {
    pub fn new() -> TapHandle {
        TapHandle {
            state: Arc::new(TapState::default()),
        }
    }

    pub(crate) fn state(&self) -> Arc<TapState> {
        self.state.clone()
    }

    /// All bytes captured in one direction, concatenated.
    pub fn captured(&self, direction: Direction) -> Vec<u8> {
        let frames = self.state.frames.lock();
        frames
            .iter()
            .filter(|(d, _)| *d == direction)
            .flat_map(|(_, bytes)| bytes.iter().copied())
            .collect()
    }

    /// All captured bytes regardless of direction.
    pub fn captured_all(&self) -> Vec<u8> {
        let frames = self.state.frames.lock();
        frames
            .iter()
            .flat_map(|(_, bytes)| bytes.iter().copied())
            .collect()
    }

    /// Does the captured traffic contain `needle` as a byte substring?
    /// (The attack check: did the credential cross the wire in clear?)
    pub fn contains(&self, needle: &[u8]) -> bool {
        let haystack = self.captured_all();
        haystack
            .windows(needle.len().max(1))
            .any(|window| window == needle)
    }

    pub fn frame_count(&self) -> usize {
        self.state.frames.lock().len()
    }
}

impl Default for TapHandle {
    fn default() -> Self {
        Self::new()
    }
}

struct Frame {
    deliver_at: Instant,
    bytes: Vec<u8>,
}

/// One endpoint of an in-memory reliable byte stream.
pub struct Duplex {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    read_buffer: VecDeque<u8>,
    latency: Duration,
    tap: Option<(Arc<TapState>, Direction)>,
    control: Arc<LinkControl>,
    read_timeout: Option<Duration>,
    bytes_sent: u64,
    bytes_received: u64,
    /// Fabric-wide byte counter (telemetry), bumped on sends.
    fabric_bytes: Option<Counter>,
}

impl Duplex {
    /// Create a connected pair with the given one-way latency. The first
    /// endpoint is the "client" half for tap direction purposes.
    pub fn pair(latency: Duration, tap: Option<&TapHandle>) -> (Duplex, Duplex) {
        Duplex::pair_with_control(latency, tap, Arc::new(LinkControl::default()))
    }

    /// Like [`pair`](Self::pair) but with fault switches injected by the
    /// fabric; both halves share `control`.
    pub(crate) fn pair_with_control(
        latency: Duration,
        tap: Option<&TapHandle>,
        control: Arc<LinkControl>,
    ) -> (Duplex, Duplex) {
        let (tx_a, rx_b) = unbounded();
        let (tx_b, rx_a) = unbounded();
        let client = Duplex {
            tx: tx_a,
            rx: rx_a,
            read_buffer: VecDeque::new(),
            latency,
            tap: tap.map(|t| (t.state(), Direction::ToServer)),
            control: control.clone(),
            read_timeout: None,
            bytes_sent: 0,
            bytes_received: 0,
            fabric_bytes: None,
        };
        let server = Duplex {
            tx: tx_b,
            rx: rx_b,
            read_buffer: VecDeque::new(),
            latency,
            tap: tap.map(|t| (t.state(), Direction::ToClient)),
            control,
            read_timeout: None,
            bytes_sent: 0,
            bytes_received: 0,
            fabric_bytes: None,
        };
        (client, server)
    }

    /// Attach a fabric-wide telemetry counter bumped by every byte this
    /// half sends (the fabric attaches one to both halves, so the counter
    /// totals traffic in both directions).
    pub(crate) fn attach_byte_counter(&mut self, counter: Counter) {
        self.fabric_bytes = Some(counter);
    }

    /// Zero-latency untapped pair (the common case in tests).
    pub fn pipe() -> (Duplex, Duplex) {
        Duplex::pair(Duration::ZERO, None)
    }

    /// Deadline for blocking reads. `None` (the default) blocks until data
    /// or EOF; `Some(t)` makes a read that waits longer than `t` fail with
    /// `io::ErrorKind::TimedOut` — which the HTTP layer surfaces as
    /// [`NetError::TimedOut`](crate::NetError::TimedOut). This is what
    /// makes injected stalls observable instead of hanging the caller.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }

    pub fn read_timeout(&self) -> Option<Duration> {
        self.read_timeout
    }

    /// The shared fault/shutdown switches for this link (both halves
    /// return the same control).
    pub fn control(&self) -> Arc<LinkControl> {
        self.control.clone()
    }

    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    fn deliver(&mut self, frame: Frame) {
        let now = Instant::now();
        if frame.deliver_at > now {
            std::thread::sleep(frame.deliver_at - now);
        }
        self.bytes_received += frame.bytes.len() as u64;
        self.read_buffer.extend(frame.bytes);
    }

    fn deadline_elapsed(deadline: Option<Instant>) -> Option<io::Error> {
        match deadline {
            Some(d) if Instant::now() >= d => Some(io::Error::new(
                io::ErrorKind::TimedOut,
                "read deadline elapsed",
            )),
            _ => None,
        }
    }

    fn pull_frame(&mut self) -> io::Result<bool> {
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        let reset = || {
            injected_io(
                io::ErrorKind::ConnectionReset,
                "connection severed by fault injection",
            )
        };
        loop {
            // A stall withholds even frames already queued on the wire.
            // Sever outranks stall so shutdown can always wake a reader.
            if self.control.is_stalled() && !self.control.is_severed() {
                if let Some(e) = Self::deadline_elapsed(deadline) {
                    return Err(e);
                }
                std::thread::sleep(READ_POLL_SLICE);
                continue;
            }
            // Frames that crossed the wire before a sever (e.g. the prefix
            // allowed by a drop-after-N-bytes budget) stay readable.
            if let Ok(frame) = self.rx.try_recv() {
                self.deliver(frame);
                return Ok(true);
            }
            if self.control.is_severed() {
                return Err(reset());
            }
            if let Some(e) = Self::deadline_elapsed(deadline) {
                return Err(e);
            }
            match self.rx.recv_timeout(READ_POLL_SLICE) {
                Ok(frame) => {
                    self.deliver(frame);
                    return Ok(true);
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Ok(false), // EOF
            }
        }
    }
}

impl Read for Duplex {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.read_buffer.is_empty() {
            if !self.pull_frame()? {
                return Ok(0); // EOF
            }
        }
        let n = buf.len().min(self.read_buffer.len());
        for slot in buf.iter_mut().take(n) {
            *slot = self.read_buffer.pop_front().expect("checked non-empty");
        }
        Ok(n)
    }
}

impl Write for Duplex {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.control.is_severed() {
            return Err(injected_io(
                io::ErrorKind::BrokenPipe,
                "connection severed by fault injection",
            ));
        }
        // A drop-after-N-bytes fault lets the first `allowed` bytes cross
        // the wire, then severs. The truncated write still reports success
        // (the bytes vanished from a "kernel buffer"); the failure surfaces
        // on the peer's read and on the next local operation — like a TCP
        // reset racing buffered data.
        let allowed = self.control.take_write_budget(buf.len());
        let deliver = &buf[..allowed];
        if !deliver.is_empty() {
            if let Some((tap, direction)) = &self.tap {
                tap.frames.lock().push((*direction, deliver.to_vec()));
            }
            let frame = Frame {
                deliver_at: Instant::now() + self.latency,
                bytes: deliver.to_vec(),
            };
            self.tx.send(frame).map_err(|_| {
                io::Error::new(io::ErrorKind::BrokenPipe, "peer endpoint dropped")
            })?;
            self.bytes_sent += deliver.len() as u64;
            if let Some(counter) = &self.fabric_bytes {
                counter.add(deliver.len() as u64);
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl std::fmt::Debug for Duplex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Duplex")
            .field("bytes_sent", &self.bytes_sent)
            .field("bytes_received", &self.bytes_received)
            .field("tapped", &self.tap.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let (mut a, mut b) = Duplex::pipe();
        a.write_all(b"hello fabric").unwrap();
        let mut buf = [0u8; 12];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello fabric");
        // And the other direction.
        b.write_all(b"pong").unwrap();
        let mut buf = [0u8; 4];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn partial_reads_preserve_order() {
        let (mut a, mut b) = Duplex::pipe();
        a.write_all(b"0123456789").unwrap();
        let mut first = [0u8; 3];
        b.read_exact(&mut first).unwrap();
        let mut rest = [0u8; 7];
        b.read_exact(&mut rest).unwrap();
        assert_eq!(&first, b"012");
        assert_eq!(&rest, b"3456789");
    }

    #[test]
    fn eof_on_peer_drop() {
        let (mut a, b) = Duplex::pipe();
        drop(b);
        // Write fails with broken pipe.
        assert!(a.write_all(b"x").is_err());
        let mut buf = [0u8; 4];
        assert_eq!(a.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn buffered_data_readable_after_peer_drop() {
        let (mut a, mut b) = Duplex::pipe();
        a.write_all(b"last words").unwrap();
        drop(a);
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"last words");
    }

    #[test]
    fn taps_capture_both_directions() {
        let tap = TapHandle::new();
        let (mut client, mut server) = Duplex::pair(Duration::ZERO, Some(&tap));
        client.write_all(b"GET /secret").unwrap();
        let mut buf = [0u8; 11];
        server.read_exact(&mut buf).unwrap();
        server.write_all(b"the-credential").unwrap();
        let mut buf = [0u8; 14];
        client.read_exact(&mut buf).unwrap();

        assert_eq!(tap.captured(Direction::ToServer), b"GET /secret");
        assert_eq!(tap.captured(Direction::ToClient), b"the-credential");
        assert!(tap.contains(b"credential"));
        assert!(!tap.contains(b"not on the wire"));
        assert_eq!(tap.frame_count(), 2);
    }

    #[test]
    fn latency_delays_delivery() {
        let (mut a, mut b) = Duplex::pair(Duration::from_millis(30), None);
        let start = Instant::now();
        a.write_all(b"x").unwrap();
        let mut buf = [0u8; 1];
        b.read_exact(&mut buf).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "delivery was not delayed: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn byte_accounting() {
        let (mut a, mut b) = Duplex::pipe();
        a.write_all(b"12345").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(a.bytes_sent(), 5);
        assert_eq!(b.bytes_received(), 5);
        assert_eq!(a.bytes_received(), 0);
    }

    #[test]
    fn read_timeout_fires_without_data() {
        let (mut a, _b) = Duplex::pipe();
        a.set_read_timeout(Some(Duration::from_millis(20)));
        let start = Instant::now();
        let mut buf = [0u8; 1];
        let err = a.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn read_timeout_does_not_fire_with_data() {
        let (mut a, mut b) = Duplex::pipe();
        b.set_read_timeout(Some(Duration::from_millis(50)));
        a.write_all(b"prompt").unwrap();
        let mut buf = [0u8; 6];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"prompt");
    }

    #[test]
    fn sever_fails_both_directions_but_preserves_wire_data() {
        let (mut a, mut b) = Duplex::pipe();
        a.write_all(b"sent first").unwrap();
        a.control().sever();
        // The frame crossed the wire before the sever: still readable.
        let mut buf = [0u8; 10];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"sent first");
        // After the buffered data, reads and writes fail with injected
        // errors, not EOF.
        assert!(b.read(&mut buf).is_err());
        assert!(a.write_all(b"more").is_err());
    }

    #[test]
    fn stall_withholds_frames_until_released() {
        let (mut a, mut b) = Duplex::pipe();
        let control = a.control();
        control.set_stalled(true);
        a.write_all(b"delayed").unwrap();
        b.set_read_timeout(Some(Duration::from_millis(15)));
        let mut buf = [0u8; 7];
        assert_eq!(
            b.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        control.set_stalled(false);
        b.set_read_timeout(None);
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"delayed");
    }

    #[test]
    fn write_budget_truncates_and_severs() {
        let control = Arc::new(crate::fault::LinkControl::with_faults(false, Some(4)));
        let (mut a, mut b) = Duplex::pair_with_control(Duration::ZERO, None, control);
        a.write_all(b"123456").unwrap(); // reports success; only 4 cross
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"1234");
        assert!(b.read(&mut buf).is_err(), "drop surfaces as reset");
        assert!(a.write_all(b"x").is_err(), "link is severed for writes");
    }

    #[test]
    fn cross_thread_usage() {
        let (mut a, mut b) = Duplex::pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            b.write_all(b"reply").unwrap();
            buf
        });
        a.write_all(b"hello").unwrap();
        let mut reply = [0u8; 5];
        a.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"reply");
        assert_eq!(&t.join().unwrap(), b"hello");
    }
}
