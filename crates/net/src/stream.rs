//! In-memory byte streams with latency modeling and passive taps.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Direction of a tapped frame, relative to the connection initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    ToServer,
    /// Server → client.
    ToClient,
}

/// Passive wiretap state shared by both stream halves.
#[derive(Debug, Default)]
pub struct TapState {
    frames: Mutex<Vec<(Direction, Vec<u8>)>>,
}

/// Handle to read captured traffic — the eavesdropper's view of the wire.
#[derive(Debug, Clone)]
pub struct TapHandle {
    state: Arc<TapState>,
}

impl TapHandle {
    pub fn new() -> TapHandle {
        TapHandle {
            state: Arc::new(TapState::default()),
        }
    }

    pub(crate) fn state(&self) -> Arc<TapState> {
        self.state.clone()
    }

    /// All bytes captured in one direction, concatenated.
    pub fn captured(&self, direction: Direction) -> Vec<u8> {
        let frames = self.state.frames.lock();
        frames
            .iter()
            .filter(|(d, _)| *d == direction)
            .flat_map(|(_, bytes)| bytes.iter().copied())
            .collect()
    }

    /// All captured bytes regardless of direction.
    pub fn captured_all(&self) -> Vec<u8> {
        let frames = self.state.frames.lock();
        frames
            .iter()
            .flat_map(|(_, bytes)| bytes.iter().copied())
            .collect()
    }

    /// Does the captured traffic contain `needle` as a byte substring?
    /// (The attack check: did the credential cross the wire in clear?)
    pub fn contains(&self, needle: &[u8]) -> bool {
        let haystack = self.captured_all();
        haystack
            .windows(needle.len().max(1))
            .any(|window| window == needle)
    }

    pub fn frame_count(&self) -> usize {
        self.state.frames.lock().len()
    }
}

impl Default for TapHandle {
    fn default() -> Self {
        Self::new()
    }
}

struct Frame {
    deliver_at: Instant,
    bytes: Vec<u8>,
}

/// One endpoint of an in-memory reliable byte stream.
pub struct Duplex {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    read_buffer: VecDeque<u8>,
    latency: Duration,
    tap: Option<(Arc<TapState>, Direction)>,
    bytes_sent: u64,
    bytes_received: u64,
}

impl Duplex {
    /// Create a connected pair with the given one-way latency. The first
    /// endpoint is the "client" half for tap direction purposes.
    pub fn pair(latency: Duration, tap: Option<&TapHandle>) -> (Duplex, Duplex) {
        let (tx_a, rx_b) = unbounded();
        let (tx_b, rx_a) = unbounded();
        let client = Duplex {
            tx: tx_a,
            rx: rx_a,
            read_buffer: VecDeque::new(),
            latency,
            tap: tap.map(|t| (t.state(), Direction::ToServer)),
            bytes_sent: 0,
            bytes_received: 0,
        };
        let server = Duplex {
            tx: tx_b,
            rx: rx_b,
            read_buffer: VecDeque::new(),
            latency,
            tap: tap.map(|t| (t.state(), Direction::ToClient)),
            bytes_sent: 0,
            bytes_received: 0,
        };
        (client, server)
    }

    /// Zero-latency untapped pair (the common case in tests).
    pub fn pipe() -> (Duplex, Duplex) {
        Duplex::pair(Duration::ZERO, None)
    }

    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    fn pull_frame(&mut self) -> io::Result<bool> {
        match self.rx.recv() {
            Ok(frame) => {
                let now = Instant::now();
                if frame.deliver_at > now {
                    std::thread::sleep(frame.deliver_at - now);
                }
                self.bytes_received += frame.bytes.len() as u64;
                self.read_buffer.extend(frame.bytes);
                Ok(true)
            }
            Err(_) => Ok(false), // peer gone and channel drained: EOF
        }
    }
}

impl Read for Duplex {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.read_buffer.is_empty() {
            if !self.pull_frame()? {
                return Ok(0); // EOF
            }
        }
        let n = buf.len().min(self.read_buffer.len());
        for slot in buf.iter_mut().take(n) {
            *slot = self.read_buffer.pop_front().expect("checked non-empty");
        }
        Ok(n)
    }
}

impl Write for Duplex {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some((tap, direction)) = &self.tap {
            tap.frames.lock().push((*direction, buf.to_vec()));
        }
        let frame = Frame {
            deliver_at: Instant::now() + self.latency,
            bytes: buf.to_vec(),
        };
        self.tx.send(frame).map_err(|_| {
            io::Error::new(io::ErrorKind::BrokenPipe, "peer endpoint dropped")
        })?;
        self.bytes_sent += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl std::fmt::Debug for Duplex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Duplex")
            .field("bytes_sent", &self.bytes_sent)
            .field("bytes_received", &self.bytes_received)
            .field("tapped", &self.tap.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let (mut a, mut b) = Duplex::pipe();
        a.write_all(b"hello fabric").unwrap();
        let mut buf = [0u8; 12];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello fabric");
        // And the other direction.
        b.write_all(b"pong").unwrap();
        let mut buf = [0u8; 4];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn partial_reads_preserve_order() {
        let (mut a, mut b) = Duplex::pipe();
        a.write_all(b"0123456789").unwrap();
        let mut first = [0u8; 3];
        b.read_exact(&mut first).unwrap();
        let mut rest = [0u8; 7];
        b.read_exact(&mut rest).unwrap();
        assert_eq!(&first, b"012");
        assert_eq!(&rest, b"3456789");
    }

    #[test]
    fn eof_on_peer_drop() {
        let (mut a, b) = Duplex::pipe();
        drop(b);
        // Write fails with broken pipe.
        assert!(a.write_all(b"x").is_err());
        let mut buf = [0u8; 4];
        assert_eq!(a.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn buffered_data_readable_after_peer_drop() {
        let (mut a, mut b) = Duplex::pipe();
        a.write_all(b"last words").unwrap();
        drop(a);
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"last words");
    }

    #[test]
    fn taps_capture_both_directions() {
        let tap = TapHandle::new();
        let (mut client, mut server) = Duplex::pair(Duration::ZERO, Some(&tap));
        client.write_all(b"GET /secret").unwrap();
        let mut buf = [0u8; 11];
        server.read_exact(&mut buf).unwrap();
        server.write_all(b"the-credential").unwrap();
        let mut buf = [0u8; 14];
        client.read_exact(&mut buf).unwrap();

        assert_eq!(tap.captured(Direction::ToServer), b"GET /secret");
        assert_eq!(tap.captured(Direction::ToClient), b"the-credential");
        assert!(tap.contains(b"credential"));
        assert!(!tap.contains(b"not on the wire"));
        assert_eq!(tap.frame_count(), 2);
    }

    #[test]
    fn latency_delays_delivery() {
        let (mut a, mut b) = Duplex::pair(Duration::from_millis(30), None);
        let start = Instant::now();
        a.write_all(b"x").unwrap();
        let mut buf = [0u8; 1];
        b.read_exact(&mut buf).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "delivery was not delayed: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn byte_accounting() {
        let (mut a, mut b) = Duplex::pipe();
        a.write_all(b"12345").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(a.bytes_sent(), 5);
        assert_eq!(b.bytes_received(), 5);
        assert_eq!(a.bytes_received(), 0);
    }

    #[test]
    fn cross_thread_usage() {
        let (mut a, mut b) = Duplex::pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            b.write_all(b"reply").unwrap();
            buf
        });
        a.write_all(b"hello").unwrap();
        let mut reply = [0u8; 5];
        a.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"reply");
        assert_eq!(&t.join().unwrap(), b"hello");
    }
}
