//! # vnfguard-core
//!
//! The paper's primary contribution: the **Verification Manager** and the
//! end-to-end workflow of Figure 1.
//!
//! > "We introduce a Verification Manager module that has a central
//! > position in our proposed architecture: it obtains integrity
//! > measurements of VNFs through an attestation protocol and appraises the
//! > trustworthiness of the platform. Furthermore, it handles the
//! > communication with third-party attestation services, generates the
//! > HMAC key and nonces, as well as the certificates for the client
//! > authentication." (§2)
//!
//! The crate provides:
//!
//! - [`manager::VerificationManager`] — attestation orchestration (host and
//!   VNF), appraisal, the certificate authority, credential provisioning
//!   and revocation, and an audit trail;
//! - [`attestation`] — the evidence structures exchanged in steps 1–4 of
//!   Figure 1, and the **integrity attestation enclave** that quotes the
//!   host's IMA measurement list;
//! - [`deployment`] — a full testbed assembling network, IAS, controller,
//!   container hosts, and VNFs, with one method per workflow step. The
//!   examples and every benchmark build on it.
//!
//! ## The six steps of Figure 1
//!
//! | Step | API |
//! |---|---|
//! | 1–2 host attestation via IAS | [`manager::VerificationManager::begin_host_attestation`] → [`attestation::host_evidence`] → [`manager::VerificationManager::complete_host_attestation`] |
//! | 3–4 VNF enclave attestation via IAS | [`manager::VerificationManager::begin_vnf_attestation`] → [`manager::VerificationManager::complete_vnf_enrollment`] |
//! | 5 credential provisioning | returned wrapped bundle → `VnfGuard::provision` |
//! | 6 VNF ↔ controller TLS | `VnfGuard::open_session` / `request` |

pub mod attestation;
pub mod backend;
pub mod crash;
pub mod deployment;
pub mod fleet;
pub mod lifecycle;
pub mod manager;
pub mod overload;
pub mod remote;
pub mod replication;
pub mod resilience;
pub mod revocation;
pub mod service;

pub use attestation::{HostEvidence, IntegrityAttestationEnclave};
pub use backend::MultiBackend;
pub use crash::{CrashEvent, CrashPlan};
pub use lifecycle::{
    verify_handover, CaRotation, LifecycleMonitor, LifecycleStatus, LifecycleTick, RenewalDue,
};
pub use overload::{
    current_deadline, AdmissionConfig, AdmissionController, Deadline, DeadlineScope, Workclass,
};
pub use fleet::{
    serve_fleet_api, serve_standby_health, FleetMonitor, FleetStatus, NodeKind,
};
pub use remote::{HostAgent, RemoteIas};
pub use deployment::{Testbed, TestbedBuilder, TestbedHost};
pub use manager::{ManagerConfig, ManagerConfigBuilder, RecoveryReport, VerificationManager};
pub use resilience::{BreakerState, CircuitBreaker, RetryBudget, RetryPolicy};
pub use service::VmService;
pub use revocation::{DeliveredNotice, RevocationNotifier};

/// Errors from the Verification Manager and workflow orchestration.
#[derive(Debug)]
pub enum CoreError {
    // backend-opt-out: error plumbing for agent-side SGX platform calls;
    // appraisal verdicts travel as AttestationRefused, not SgxError.
    Sgx(vnfguard_sgx::SgxError),
    Vnf(vnfguard_vnf::VnfError),
    Controller(vnfguard_controller::ControllerError),
    Pki(vnfguard_pki::PkiError),
    /// Attestation was refused; the string carries the appraisal reason.
    AttestationFailed(String),
    /// An unknown or expired challenge was presented.
    BadChallenge(String),
    /// The workflow was invoked out of order (e.g. enrollment before host
    /// attestation).
    WorkflowViolation(String),
    /// Structural error in evidence.
    Encoding(String),
    /// A required backing service (e.g. IAS) is unreachable and no
    /// degradation policy permits proceeding without it.
    ServiceUnavailable(String),
    /// A container host's agent could not be reached.
    HostUnreachable(String),
    /// Credential delivery failed mid-provisioning; the issued certificate
    /// was revoked and the enrollment rolled back.
    ProvisioningRolledBack(String),
    /// A [`manager::ManagerConfig`] builder was given an inconsistent or
    /// unsafe combination of settings.
    InvalidConfig(String),
    /// The VM process crashed at the named injection site. The manager is
    /// dead: every further workflow call fails until state is rebuilt with
    /// [`manager::VerificationManager::recover`].
    VmCrashed(String),
    /// The durability layer failed: sealing, unsealing, or media
    /// corruption beyond the tolerated torn tail.
    Store(String),
    /// The request's propagated deadline budget ran out before the work
    /// completed; the remaining work was abandoned because nobody is
    /// waiting for the answer. Maps to HTTP 504 `code:"deadline"`.
    DeadlineExceeded(String),
    /// Admission control shed the request before any state was touched.
    /// `retry_after_secs` tells the client how long to back off, sized to
    /// the queue it failed to join. Maps to HTTP 503 `code:"overloaded"`.
    Overloaded {
        detail: String,
        retry_after_secs: u64,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Sgx(e) => write!(f, "sgx: {e}"),
            CoreError::Vnf(e) => write!(f, "vnf: {e}"),
            CoreError::Controller(e) => write!(f, "controller: {e}"),
            CoreError::Pki(e) => write!(f, "pki: {e}"),
            CoreError::AttestationFailed(msg) => write!(f, "attestation failed: {msg}"),
            CoreError::BadChallenge(msg) => write!(f, "bad challenge: {msg}"),
            CoreError::WorkflowViolation(msg) => write!(f, "workflow violation: {msg}"),
            CoreError::Encoding(msg) => write!(f, "encoding: {msg}"),
            CoreError::ServiceUnavailable(msg) => write!(f, "service unavailable: {msg}"),
            CoreError::HostUnreachable(msg) => write!(f, "host unreachable: {msg}"),
            CoreError::ProvisioningRolledBack(msg) => {
                write!(f, "provisioning rolled back: {msg}")
            }
            CoreError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            CoreError::VmCrashed(site) => {
                write!(f, "verification manager crashed at {site}; recovery required")
            }
            CoreError::Store(msg) => write!(f, "state store: {msg}"),
            CoreError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            CoreError::Overloaded {
                detail,
                retry_after_secs,
            } => write!(f, "overloaded: {detail} (retry after {retry_after_secs}s)"),
        }
    }
}

impl std::error::Error for CoreError {}

// backend-opt-out: error conversion for agent-side SGX platform calls.
impl From<vnfguard_sgx::SgxError> for CoreError {
    fn from(e: vnfguard_sgx::SgxError) -> CoreError {
        CoreError::Sgx(e)
    }
}

impl From<vnfguard_vnf::VnfError> for CoreError {
    fn from(e: vnfguard_vnf::VnfError) -> CoreError {
        CoreError::Vnf(e)
    }
}

impl From<vnfguard_controller::ControllerError> for CoreError {
    fn from(e: vnfguard_controller::ControllerError) -> CoreError {
        CoreError::Controller(e)
    }
}

impl From<vnfguard_pki::PkiError> for CoreError {
    fn from(e: vnfguard_pki::PkiError) -> CoreError {
        CoreError::Pki(e)
    }
}

impl From<vnfguard_encoding::EncodingError> for CoreError {
    fn from(e: vnfguard_encoding::EncodingError) -> CoreError {
        CoreError::Encoding(e.to_string())
    }
}

impl From<vnfguard_store::StoreError> for CoreError {
    fn from(e: vnfguard_store::StoreError) -> CoreError {
        CoreError::Store(e.to_string())
    }
}
