//! Retry, backoff and circuit breaking for the workflow's network calls.
//!
//! The attestation pipeline crosses the fabric three times (VM → agent,
//! VM → IAS, VM → agent again); any hop can refuse, stall or drop
//! mid-stream under the fault plans of `vnfguard_net::fault`. This module
//! gives the callers a uniform recovery vocabulary:
//!
//! - [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   *full jitter* (AWS-style: each delay is uniform in `[0, bound]`).
//!   Waits advance the deployment's [`SimClock`] instead of sleeping, so
//!   a test with thirty retries still runs in microseconds and every
//!   delay is reproducible from the policy seed;
//! - [`CircuitBreaker`] — closed → open after K consecutive failures →
//!   half-open probe after a cooldown, with a transition log.
//! - [`RetryBudget`] — a token bucket shared across a client's retries so
//!   that when the backend browns out, retry traffic cannot multiply the
//!   offered load (the classic retry-storm amplifier).
//!
//! Retries are deadline-aware: when the calling thread carries an ambient
//! [`crate::overload::Deadline`] and it expires, the loop stops rather
//! than burning attempts nobody will wait for.

use crate::overload::current_deadline;
use std::sync::Mutex;
use vnfguard_controller::SimClock;
use vnfguard_telemetry::{Counter, Telemetry};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Bounded retries with exponentially growing, fully jittered delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff bound after the first failed attempt, in clock seconds.
    pub base_delay_secs: u64,
    /// Ceiling for the backoff bound.
    pub max_delay_secs: u64,
    /// Seed for the jitter draws; a fixed seed replays the delays.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay_secs: 1,
            max_delay_secs: 30,
            seed: 0x5eed,
        }
    }
}

/// One attempt in a [`RetryPolicy::run`] execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// 0-based attempt index.
    pub attempt: u32,
    /// Clock time when the attempt started.
    pub at: u64,
    /// Jittered delay (seconds) waited before this attempt.
    pub delay_before_secs: u64,
    /// `None` for the successful attempt, the error text otherwise.
    pub error: Option<String>,
}

/// Result of a retried operation plus its full attempt log.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    pub result: Result<T, E>,
    pub attempts: Vec<AttemptRecord>,
}

impl RetryPolicy {
    pub fn new(max_attempts: u32, base_delay_secs: u64, max_delay_secs: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay_secs,
            max_delay_secs,
            ..RetryPolicy::default()
        }
    }

    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// The (pre-jitter) backoff bound after the 0-based `attempt`:
    /// `min(max_delay, base_delay * 2^attempt)`.
    pub fn backoff_bound(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_delay_secs
            .saturating_mul(factor)
            .min(self.max_delay_secs)
    }

    /// Run `op` until it succeeds or attempts are exhausted. Between
    /// attempts the deployment clock is advanced by a uniform draw from
    /// `[0, backoff_bound(attempt)]` — full jitter, no real sleeping.
    pub fn run<T, E: std::fmt::Display>(
        &self,
        clock: &SimClock,
        op: impl FnMut(u32) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        self.run_with_budget(clock, None, op)
    }

    /// Like [`run`](Self::run), but each *retry* (never the first attempt)
    /// must also clear two gates:
    ///
    /// - the ambient request deadline, if one is installed — a dead budget
    ///   ends the loop with the last error;
    /// - the shared [`RetryBudget`], if given — an empty bucket ends the
    ///   loop, capping fleet-wide retry amplification during a brownout.
    pub fn run_with_budget<T, E: std::fmt::Display>(
        &self,
        clock: &SimClock,
        budget: Option<&RetryBudget>,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        let attempts_allowed = self.max_attempts.max(1);
        let mut rng_state = self.seed;
        let mut attempts = Vec::with_capacity(attempts_allowed as usize);
        let mut delay_before_secs = 0;
        let mut last_error = None;
        for attempt in 0..attempts_allowed {
            let at = clock.now();
            match op(attempt) {
                Ok(value) => {
                    attempts.push(AttemptRecord {
                        attempt,
                        at,
                        delay_before_secs,
                        error: None,
                    });
                    return RetryOutcome {
                        result: Ok(value),
                        attempts,
                    };
                }
                Err(error) => {
                    attempts.push(AttemptRecord {
                        attempt,
                        at,
                        delay_before_secs,
                        error: Some(error.to_string()),
                    });
                    last_error = Some(error);
                    if attempt + 1 < attempts_allowed {
                        let deadline_dead = current_deadline()
                            .is_some_and(|deadline| deadline.expired(clock));
                        if deadline_dead {
                            break;
                        }
                        if let Some(budget) = budget {
                            if !budget.try_spend(clock) {
                                break;
                            }
                        }
                        let bound = self.backoff_bound(attempt);
                        delay_before_secs = if bound == 0 {
                            0
                        } else {
                            splitmix(&mut rng_state) % (bound + 1)
                        };
                        clock.advance(delay_before_secs);
                    }
                }
            }
        }
        RetryOutcome {
            result: Err(last_error.expect("at least one attempt ran")),
            attempts,
        }
    }
}

/// A token bucket shared across all retries of a client (or fleet of
/// clients): every retry spends one token, tokens refill at a steady
/// rate, and an empty bucket means *no retry* — first attempts are never
/// charged. This bounds the retry amplification factor during a backend
/// brownout: with a refill of `r` tokens/sec the whole client adds at
/// most `r` retries/sec on top of offered load, no matter how many calls
/// are failing.
///
/// Tokens are tracked in millitokens so slow refill rates (one retry per
/// tens of seconds) stay integer-exact on the [`SimClock`].
#[derive(Debug)]
pub struct RetryBudget {
    capacity_millitokens: u64,
    refill_millitokens_per_sec: u64,
    state: Mutex<BudgetState>,
    exhausted: Counter,
}

#[derive(Debug)]
struct BudgetState {
    millitokens: u64,
    refilled_at: u64,
}

impl RetryBudget {
    /// A bucket holding `capacity_tokens` (burst) refilling at
    /// `refill_millitokens_per_sec` (1000 = one retry token per second).
    /// Starts full.
    pub fn new(capacity_tokens: u64, refill_millitokens_per_sec: u64) -> RetryBudget {
        RetryBudget {
            capacity_millitokens: capacity_tokens.saturating_mul(1000),
            refill_millitokens_per_sec,
            state: Mutex::new(BudgetState {
                millitokens: capacity_tokens.saturating_mul(1000),
                refilled_at: 0,
            }),
            exhausted: Counter::detached(),
        }
    }

    /// Register the exhaustion counter
    /// (`vnfguard_core_retry_budget_exhausted_total`) with `telemetry`.
    pub fn instrumented(mut self, telemetry: &Telemetry) -> RetryBudget {
        self.exhausted = telemetry.counter("vnfguard_core_retry_budget_exhausted_total");
        self
    }

    /// Spend one retry token, refilling first from elapsed clock time.
    /// Returns `false` (and bumps the exhaustion counter) when the bucket
    /// is empty.
    pub fn try_spend(&self, clock: &SimClock) -> bool {
        let mut state = self.state.lock().expect("retry budget poisoned");
        let elapsed = clock.now().saturating_sub(state.refilled_at);
        state.refilled_at = clock.now();
        state.millitokens = state
            .millitokens
            .saturating_add(elapsed.saturating_mul(self.refill_millitokens_per_sec))
            .min(self.capacity_millitokens);
        if state.millitokens >= 1000 {
            state.millitokens -= 1000;
            true
        } else {
            self.exhausted.inc();
            false
        }
    }

    /// Whole retry tokens currently available.
    pub fn tokens(&self, clock: &SimClock) -> u64 {
        let state = self.state.lock().expect("retry budget poisoned");
        let elapsed = clock.now().saturating_sub(state.refilled_at);
        state
            .millitokens
            .saturating_add(elapsed.saturating_mul(self.refill_millitokens_per_sec))
            .min(self.capacity_millitokens)
            / 1000
    }
}

/// Circuit breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are refused without touching the dependency.
    Open,
    /// The cooldown elapsed; one probe call is allowed through.
    HalfOpen,
}

/// Closed → open after `failure_threshold` consecutive failures; after
/// `cooldown_secs` a half-open probe decides between re-open and close.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown_secs: u64,
    consecutive_failures: u32,
    open_since: Option<u64>,
    transitions: Vec<(u64, BreakerState)>,
}

impl CircuitBreaker {
    pub fn new(failure_threshold: u32, cooldown_secs: u64) -> CircuitBreaker {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            cooldown_secs,
            consecutive_failures: 0,
            open_since: None,
            transitions: Vec::new(),
        }
    }

    pub fn state(&self, at: u64) -> BreakerState {
        match self.open_since {
            None => BreakerState::Closed,
            Some(opened) if at >= opened.saturating_add(self.cooldown_secs) => {
                BreakerState::HalfOpen
            }
            Some(_) => BreakerState::Open,
        }
    }

    /// Should a call be attempted right now? (Closed or half-open probe.)
    pub fn allows(&self, at: u64) -> bool {
        self.state(at) != BreakerState::Open
    }

    pub fn record_success(&mut self, at: u64) {
        self.consecutive_failures = 0;
        if self.open_since.take().is_some() {
            self.transitions.push((at, BreakerState::Closed));
        }
    }

    pub fn record_failure(&mut self, at: u64) {
        match self.state(at) {
            BreakerState::HalfOpen => {
                // Failed probe: restart the cooldown.
                self.open_since = Some(at);
                self.transitions.push((at, BreakerState::Open));
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.open_since = Some(at);
                    self.transitions.push((at, BreakerState::Open));
                }
            }
            // Failures reported while open (callers that bypassed
            // `allows`) don't restart the cooldown.
            BreakerState::Open => {}
        }
    }

    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// `(time, entered-state)` log of every open/close transition.
    pub fn transitions(&self) -> &[(u64, BreakerState)] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_returns_first_success_without_waiting() {
        let clock = SimClock::at(100);
        let outcome = RetryPolicy::default().run(&clock, |_| Ok::<_, String>(42));
        assert_eq!(outcome.result.unwrap(), 42);
        assert_eq!(outcome.attempts.len(), 1);
        assert_eq!(clock.now(), 100, "no delay before or after a success");
    }

    #[test]
    fn retry_recovers_after_transient_failures() {
        let clock = SimClock::at(0);
        let outcome = RetryPolicy::new(5, 1, 8).run(&clock, |attempt| {
            if attempt < 3 {
                Err("refused")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(outcome.result.unwrap(), 3);
        assert_eq!(outcome.attempts.len(), 4);
        assert!(outcome.attempts[..3].iter().all(|a| a.error.is_some()));
        assert!(outcome.attempts[3].error.is_none());
    }

    #[test]
    fn retry_exhaustion_keeps_the_log() {
        let clock = SimClock::at(0);
        let outcome = RetryPolicy::new(3, 2, 50).run(&clock, |_| Err::<(), _>("down"));
        assert!(outcome.result.is_err());
        assert_eq!(outcome.attempts.len(), 3);
        // Two waits happened (none after the final attempt), each within
        // its exponential bound.
        assert!(outcome.attempts[1].delay_before_secs <= 2);
        assert!(outcome.attempts[2].delay_before_secs <= 4);
        let waited: u64 = outcome.attempts.iter().map(|a| a.delay_before_secs).sum();
        assert_eq!(clock.now(), waited, "waits advance the sim clock only");
    }

    #[test]
    fn backoff_bound_caps_and_saturates() {
        let policy = RetryPolicy::new(64, 3, 40);
        assert_eq!(policy.backoff_bound(0), 3);
        assert_eq!(policy.backoff_bound(1), 6);
        assert_eq!(policy.backoff_bound(3), 24);
        assert_eq!(policy.backoff_bound(4), 40, "capped");
        assert_eq!(policy.backoff_bound(63), 40);
        assert_eq!(policy.backoff_bound(64), 40, "shift overflow saturates");
    }

    #[test]
    fn same_seed_replays_delays() {
        let run = |seed: u64| {
            let clock = SimClock::at(0);
            RetryPolicy::new(6, 1, 30)
                .with_seed(seed)
                .run(&clock, |_| Err::<(), _>("x"))
                .attempts
                .iter()
                .map(|a| a.delay_before_secs)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn retry_budget_caps_retries_then_refills() {
        let clock = SimClock::at(0);
        // 2-token burst, one token per 10 seconds.
        let budget = RetryBudget::new(2, 100);
        let outcome = RetryPolicy::new(6, 0, 0).run_with_budget(&clock, Some(&budget), |_| {
            Err::<(), _>("down")
        });
        assert!(outcome.result.is_err());
        // First attempt is free; the two budgeted retries ran, then the
        // empty bucket ended the loop early.
        assert_eq!(outcome.attempts.len(), 3);
        assert_eq!(budget.tokens(&clock), 0);
        clock.advance(10);
        assert_eq!(budget.tokens(&clock), 1);
        assert!(budget.try_spend(&clock));
        assert!(!budget.try_spend(&clock));
    }

    #[test]
    fn expired_ambient_deadline_stops_retrying() {
        use crate::overload::{Deadline, DeadlineScope};
        let clock = SimClock::at(0);
        let _scope = DeadlineScope::enter(Deadline::start(&clock, 3_000));
        // Each failure advances the clock by exactly 2s; the 3s budget
        // dies after the first backoff, so only two attempts run even
        // though the policy allows ten.
        let outcome = RetryPolicy {
            max_attempts: 10,
            base_delay_secs: 2,
            max_delay_secs: 2,
            seed: 7,
        }
        .run(&clock, |attempt| {
            clock.advance(2);
            Err::<(), _>(format!("attempt {attempt} failed"))
        });
        assert!(outcome.result.is_err());
        assert_eq!(outcome.attempts.len(), 2);
    }

    #[test]
    fn breaker_opens_half_opens_and_recloses() {
        let mut breaker = CircuitBreaker::new(3, 60);
        assert_eq!(breaker.state(0), BreakerState::Closed);
        breaker.record_failure(1);
        breaker.record_failure(2);
        assert_eq!(breaker.state(2), BreakerState::Closed, "below threshold");
        breaker.record_failure(3);
        assert_eq!(breaker.state(3), BreakerState::Open);
        assert!(!breaker.allows(30));
        // Cooldown elapses: half-open probe allowed.
        assert_eq!(breaker.state(63), BreakerState::HalfOpen);
        assert!(breaker.allows(63));
        // Failed probe re-opens and restarts the cooldown.
        breaker.record_failure(63);
        assert_eq!(breaker.state(100), BreakerState::Open);
        assert_eq!(breaker.state(123), BreakerState::HalfOpen);
        // Successful probe closes.
        breaker.record_success(123);
        assert_eq!(breaker.state(123), BreakerState::Closed);
        assert_eq!(breaker.consecutive_failures(), 0);
        let states: Vec<BreakerState> =
            breaker.transitions().iter().map(|(_, s)| *s).collect();
        assert_eq!(
            states,
            vec![
                BreakerState::Open,
                BreakerState::Open,
                BreakerState::Closed
            ]
        );
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut breaker = CircuitBreaker::new(3, 10);
        breaker.record_failure(0);
        breaker.record_failure(1);
        breaker.record_success(2);
        breaker.record_failure(3);
        breaker.record_failure(4);
        assert_eq!(
            breaker.state(4),
            BreakerState::Closed,
            "streak was reset; 2 < threshold"
        );
    }
}
