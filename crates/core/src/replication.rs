//! Replicated Verification Manager: WAL streaming, fencing, failover.
//!
//! The sealed WAL of PR 3 lets one node survive its own crash; this module
//! lets the deployment survive the *node*. A primary manager streams every
//! journaled [`WalRecord`] — crc32-framed, in order, tagged with a fencing
//! epoch and a contiguous sequence number — to N standby managers over the
//! fault-injectable fabric. Standbys re-seal each record into their own
//! vault and media, so a promoted standby recovers through the exact
//! [`StateStore::replay`] path a crash recovery uses: its state is
//! byte-equivalent to a post-crash restart of the primary.
//!
//! The protocol, end to end:
//!
//! - **Streaming** ([`ReplicaSet`], installed as the store's
//!   [`AppendObserver`]): each append is framed and pushed to every
//!   standby link before the manager acknowledges the operation, with a
//!   bounded per-batch window, per-record crc32, explicit acks, and
//!   clock-advancing retry/backoff via [`RetryPolicy`] when a link fails.
//!   Undeliverable records stay buffered per the retention budget.
//! - **Gap detection + catch-up** (standby acks carry the next expected
//!   sequence): a lagging standby is replayed from the retained buffer, or
//!   — once the buffer no longer reaches back far enough — caught up with
//!   a full [`ManagerState`] snapshot installed through
//!   [`StateStore::install_state`].
//! - **Heartbeats** ([`ReplicaSet::heartbeat`], on [`SimClock`] time):
//!   empty batches that refresh the standbys' view of primary liveness;
//!   [`StandbyNode::primary_suspect`] is the missed-heartbeat promotion
//!   trigger.
//! - **Fencing**: every frame carries the primary's epoch. Promotion bumps
//!   the epoch on the surviving standbys, so a deposed primary that keeps
//!   appending after a partition heals gets a `FENCED` ack back,
//!   marks itself fenced, and fails the append — the caller's operation is
//!   rejected, not silently committed into a dead timeline.
//!
//! Promotion itself (standby selection by the highest contiguous high-water
//! mark, key re-derivation, serial/CRL reconciliation, orphan aborts,
//! notice requeue) lives in [`Testbed::promote`](crate::deployment::Testbed)
//! because it re-runs `VerificationManager::recover` against the chosen
//! standby's store.

use crate::resilience::RetryPolicy;
use crate::CoreError;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::Arc;
use vnfguard_controller::SimClock;
use vnfguard_net::fabric::Network;
use vnfguard_net::stream::Duplex;
use vnfguard_store::wal::crc32;
use vnfguard_store::{AppendObserver, ManagerState, StateStore, WalRecord};
use vnfguard_telemetry::{Counter, Gauge, Telemetry};

/// Batch header marker (primary → standby).
const BATCH_MAGIC: u8 = 0xB7;
/// Ack marker (standby → primary).
const ACK_MAGIC: u8 = 0xB8;

/// Batch payload kinds.
const KIND_RECORDS: u8 = 1;
const KIND_HEARTBEAT: u8 = 2;
const KIND_SNAPSHOT: u8 = 3;

/// Ack statuses.
const STATUS_OK: u8 = 0;
const STATUS_GAP: u8 = 1;
const STATUS_FENCED: u8 = 2;

/// Tuning for the streaming side.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Maximum records in flight per batch before an ack is required.
    pub window: usize,
    /// Records retained in the primary's resend buffer beyond the slowest
    /// ack. A standby that falls further behind than this is caught up
    /// with a snapshot instead of a replay.
    pub retain: usize,
    /// Connection/IO retry attempts per pump pass (full-jitter backoff on
    /// the shared [`SimClock`]).
    pub retry_attempts: u32,
    /// Base backoff delay (seconds) for link retries.
    pub retry_base_secs: u64,
    /// Cap on a single backoff delay (seconds).
    pub retry_max_secs: u64,
}

impl Default for ReplicationConfig {
    fn default() -> ReplicationConfig {
        ReplicationConfig {
            window: 32,
            retain: 1024,
            retry_attempts: 2,
            retry_base_secs: 1,
            retry_max_secs: 8,
        }
    }
}

/// One streamed batch (the wire unit). `first_seq` is the sequence number
/// of the first framed record; a heartbeat carries `count == 0` and
/// `first_seq == head + 1` so an idle standby can still detect lag; a
/// snapshot carries one frame holding an encoded [`ManagerState`] and
/// `first_seq` names the sequence the standby should expect *next*.
struct Batch {
    epoch: u64,
    kind: u8,
    first_seq: u64,
    sent_at: u64,
    frames: Vec<Vec<u8>>,
}

impl Batch {
    fn write_to(&self, stream: &mut Duplex) -> std::io::Result<()> {
        let mut out = Vec::with_capacity(30 + self.frames.iter().map(Vec::len).sum::<usize>());
        out.push(BATCH_MAGIC);
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.push(self.kind);
        out.extend_from_slice(&self.first_seq.to_be_bytes());
        out.extend_from_slice(&(self.frames.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.sent_at.to_be_bytes());
        for frame in &self.frames {
            out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
            out.extend_from_slice(frame);
            out.extend_from_slice(&crc32(frame).to_be_bytes());
        }
        stream.write_all(&out)
    }

    fn read_from(stream: &mut Duplex) -> std::io::Result<Batch> {
        let mut header = [0u8; 30];
        stream.read_exact(&mut header)?;
        if header[0] != BATCH_MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad batch magic",
            ));
        }
        let epoch = u64::from_be_bytes(header[1..9].try_into().expect("8 bytes"));
        let kind = header[9];
        let first_seq = u64::from_be_bytes(header[10..18].try_into().expect("8 bytes"));
        let count = u32::from_be_bytes(header[18..22].try_into().expect("4 bytes")) as usize;
        let sent_at = u64::from_be_bytes(header[22..30].try_into().expect("8 bytes"));
        let mut frames = Vec::with_capacity(count);
        for _ in 0..count {
            let mut len_buf = [0u8; 4];
            stream.read_exact(&mut len_buf)?;
            let len = u32::from_be_bytes(len_buf) as usize;
            let mut payload = vec![0u8; len];
            stream.read_exact(&mut payload)?;
            let mut crc_buf = [0u8; 4];
            stream.read_exact(&mut crc_buf)?;
            if crc32(&payload) != u32::from_be_bytes(crc_buf) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "frame checksum mismatch",
                ));
            }
            frames.push(payload);
        }
        Ok(Batch {
            epoch,
            kind,
            first_seq,
            sent_at,
            frames,
        })
    }
}

/// The standby's answer to one batch.
struct Ack {
    status: u8,
    epoch: u64,
    next_seq: u64,
}

impl Ack {
    fn write_to(&self, stream: &mut Duplex) -> std::io::Result<()> {
        let mut out = Vec::with_capacity(18);
        out.push(ACK_MAGIC);
        out.push(self.status);
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&self.next_seq.to_be_bytes());
        stream.write_all(&out)
    }

    fn read_from(stream: &mut Duplex) -> std::io::Result<Ack> {
        let mut buf = [0u8; 18];
        stream.read_exact(&mut buf)?;
        if buf[0] != ACK_MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad ack magic",
            ));
        }
        Ok(Ack {
            status: buf[1],
            epoch: u64::from_be_bytes(buf[2..10].try_into().expect("8 bytes")),
            next_seq: u64::from_be_bytes(buf[10..18].try_into().expect("8 bytes")),
        })
    }
}

// ---- Standby ---------------------------------------------------------------

/// Point-in-time view of one standby, for selection and operator surfaces.
#[derive(Debug, Clone)]
pub struct StandbyStatus {
    pub addr: String,
    /// Fencing epoch this standby will accept frames for.
    pub epoch: u64,
    /// Next sequence number expected — `next_seq - 1` is the contiguous
    /// WAL high-water mark, the promotion selection key.
    pub next_seq: u64,
    /// Records applied through the local sealed store.
    pub applied_records: u64,
    /// Snapshot-assisted catch-ups performed.
    pub snapshots_installed: u64,
    /// Frames rejected because they carried a stale epoch.
    pub fenced_rejections: u64,
    /// Primary clock time carried by the last accepted frame or heartbeat.
    pub last_heartbeat_at: Option<u64>,
}

struct StandbyInner {
    epoch: u64,
    next_seq: u64,
    applied_records: u64,
    snapshots_installed: u64,
    fenced_rejections: u64,
    last_heartbeat_at: Option<u64>,
    stop: bool,
}

struct StandbyShared {
    addr: String,
    store: StateStore,
    clock: SimClock,
    telemetry: Telemetry,
    inner: Mutex<StandbyInner>,
}

impl StandbyShared {
    fn snapshot(&self) -> StandbyStatus {
        let inner = self.inner.lock();
        StandbyStatus {
            addr: self.addr.clone(),
            epoch: inner.epoch,
            next_seq: inner.next_seq,
            applied_records: inner.applied_records,
            snapshots_installed: inner.snapshots_installed,
            fenced_rejections: inner.fenced_rejections,
            last_heartbeat_at: inner.last_heartbeat_at,
        }
    }
}

/// A detachable, read-only view of one standby's replication state — what
/// [`serve_standby_health`](crate::fleet::serve_standby_health) scrapes.
/// Holds the shared state without owning the node, so a health endpoint
/// built over it survives promotion (which consumes the [`StandbyNode`]).
#[derive(Clone)]
pub struct StandbyProbe {
    shared: Arc<StandbyShared>,
}

impl StandbyProbe {
    pub fn status(&self) -> StandbyStatus {
        self.shared.snapshot()
    }

    /// Seconds since the last frame or heartbeat from the primary,
    /// measured on the standby's own clock.
    pub fn heartbeat_age(&self) -> Option<u64> {
        let now = self.shared.clock.now();
        self.shared
            .inner
            .lock()
            .last_heartbeat_at
            .map(|at| now.saturating_sub(at))
    }
}

/// A standby manager's replication endpoint: listens on the fabric,
/// applies streamed records into its own sealed store, and answers acks.
/// The applied log is what [`Testbed::promote`](crate::deployment::Testbed)
/// recovers the next primary from.
pub struct StandbyNode {
    shared: Arc<StandbyShared>,
    network: Network,
}

impl StandbyNode {
    /// Bind `addr` and start the apply loop on a background thread. The
    /// standby starts at `epoch` expecting sequence `next_seq` (1 for a
    /// fresh deployment).
    pub fn spawn(
        network: &Network,
        addr: &str,
        store: StateStore,
        clock: SimClock,
        telemetry: Telemetry,
        epoch: u64,
    ) -> Result<StandbyNode, CoreError> {
        let listener = network
            .listen(addr)
            .map_err(|e| CoreError::ServiceUnavailable(e.to_string()))?;
        let shared = Arc::new(StandbyShared {
            addr: addr.to_string(),
            store,
            clock,
            telemetry,
            inner: Mutex::new(StandbyInner {
                epoch,
                next_seq: 1,
                applied_records: 0,
                snapshots_installed: 0,
                fenced_rejections: 0,
                last_heartbeat_at: None,
                stop: false,
            }),
        });
        let thread_shared = shared.clone();
        std::thread::spawn(move || {
            // One handler per connection: a half-dead primary's stalled
            // link must not block a reconnect, the promoted primary's new
            // link, or a zombie's doomed one. `handle` serializes all
            // sessions on the standby's state lock, so interleaved streams
            // are still applied in sequence order (duplicates skipped,
            // stale epochs fenced).
            while let Ok(stream) = listener.accept() {
                if thread_shared.inner.lock().stop {
                    break;
                }
                let session = thread_shared.clone();
                std::thread::spawn(move || {
                    let mut stream = stream;
                    // Reads end on sever, EOF, or garbage.
                    while let Ok(batch) = Batch::read_from(&mut stream) {
                        // A stopped standby was promoted: its store now
                        // belongs to the new primary, so lingering
                        // sessions must not keep applying into it.
                        if session.inner.lock().stop {
                            break;
                        }
                        let ack = session.handle(batch);
                        if ack.write_to(&mut stream).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        Ok(StandbyNode {
            shared,
            network: network.clone(),
        })
    }

    /// This standby's fabric address.
    pub fn addr(&self) -> &str {
        &self.shared.addr
    }

    /// The standby's sealed store (promotion recovers through it).
    pub fn store(&self) -> StateStore {
        self.shared.store.clone()
    }

    pub fn status(&self) -> StandbyStatus {
        self.shared.snapshot()
    }

    /// A detachable [`StandbyProbe`] over this node's state, for the
    /// fleet monitor's per-standby health endpoints.
    pub fn status_probe(&self) -> StandbyProbe {
        StandbyProbe {
            shared: self.shared.clone(),
        }
    }

    /// Raise the epoch this standby accepts (the promotion fence). Frames
    /// from any older epoch — a zombie primary — are rejected from here on.
    pub fn set_epoch(&self, epoch: u64) {
        let mut inner = self.shared.inner.lock();
        if epoch > inner.epoch {
            inner.epoch = epoch;
        }
    }

    /// Seconds since the last frame or heartbeat from the primary (`None`
    /// until the first one arrives), measured on the standby's own clock.
    pub fn heartbeat_age(&self) -> Option<u64> {
        let now = self.shared.clock.now();
        self.shared
            .inner
            .lock()
            .last_heartbeat_at
            .map(|at| now.saturating_sub(at))
    }

    /// The missed-heartbeat promotion trigger: true once the primary has
    /// been silent for more than `timeout_secs` (and was heard at least
    /// once, so a freshly built deployment is not instantly suspicious).
    pub fn primary_suspect(&self, timeout_secs: u64) -> bool {
        matches!(self.heartbeat_age(), Some(age) if age > timeout_secs)
    }

    /// Stop the apply loop and release the address. Called on the chosen
    /// standby at promotion — the node stops being a replication sink and
    /// its store becomes the new primary's.
    pub fn stop(&self) {
        self.shared.inner.lock().stop = true;
        // Wake the accept loop; the handshake connection is dropped
        // immediately after.
        let _ = self.network.connect(&self.shared.addr);
    }
}

impl std::fmt::Debug for StandbyNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = self.status();
        f.debug_struct("StandbyNode")
            .field("addr", &status.addr)
            .field("epoch", &status.epoch)
            .field("next_seq", &status.next_seq)
            .finish()
    }
}

impl StandbyShared {
    fn handle(&self, batch: Batch) -> Ack {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        if batch.epoch < inner.epoch {
            // Fencing: a deposed primary is still streaming. Reject and
            // journal — the frames never touch the store.
            inner.fenced_rejections += 1;
            self.telemetry.event(
                now,
                "replication_fenced",
                &format!(
                    "{}: rejected epoch {} frame (current epoch {})",
                    self.addr, batch.epoch, inner.epoch
                ),
            );
            return Ack {
                status: STATUS_FENCED,
                epoch: inner.epoch,
                next_seq: inner.next_seq,
            };
        }
        if batch.epoch > inner.epoch {
            // A promoted primary announcing its new epoch in-band.
            inner.epoch = batch.epoch;
        }
        inner.last_heartbeat_at = Some(batch.sent_at);
        match batch.kind {
            KIND_SNAPSHOT => {
                let ok = batch
                    .frames
                    .first()
                    .and_then(|payload| ManagerState::decode(payload).ok())
                    .and_then(|state| self.store.install_state(&state).ok())
                    .is_some();
                if ok {
                    inner.next_seq = batch.first_seq;
                    inner.snapshots_installed += 1;
                    self.telemetry.event(
                        now,
                        "replication_snapshot_installed",
                        &format!("{}: caught up to seq {}", self.addr, batch.first_seq),
                    );
                    Ack {
                        status: STATUS_OK,
                        epoch: inner.epoch,
                        next_seq: inner.next_seq,
                    }
                } else {
                    Ack {
                        status: STATUS_GAP,
                        epoch: inner.epoch,
                        next_seq: inner.next_seq,
                    }
                }
            }
            KIND_RECORDS => {
                if batch.first_seq > inner.next_seq {
                    // Gap: something between our high-water mark and this
                    // batch never arrived. Ask for a resend.
                    return Ack {
                        status: STATUS_GAP,
                        epoch: inner.epoch,
                        next_seq: inner.next_seq,
                    };
                }
                for (i, payload) in batch.frames.iter().enumerate() {
                    let seq = batch.first_seq + i as u64;
                    if seq < inner.next_seq {
                        continue; // duplicate from a retry; applying twice would fork
                    }
                    match WalRecord::decode(payload) {
                        Ok(record) => {
                            if self.store.append(&record).is_err() {
                                return Ack {
                                    status: STATUS_GAP,
                                    epoch: inner.epoch,
                                    next_seq: inner.next_seq,
                                };
                            }
                            inner.next_seq = seq + 1;
                            inner.applied_records += 1;
                        }
                        Err(_) => {
                            return Ack {
                                status: STATUS_GAP,
                                epoch: inner.epoch,
                                next_seq: inner.next_seq,
                            };
                        }
                    }
                }
                Ack {
                    status: STATUS_OK,
                    epoch: inner.epoch,
                    next_seq: inner.next_seq,
                }
            }
            // Heartbeat (and anything unknown, conservatively): liveness
            // only, but still report lag so an idle primary learns a
            // standby fell behind.
            _ => Ack {
                status: if_gap_status(batch.first_seq, inner.next_seq),
                epoch: inner.epoch,
                next_seq: inner.next_seq,
            },
        }
    }
}

fn if_gap_status(first_seq: u64, next_seq: u64) -> u8 {
    if first_seq > next_seq {
        STATUS_GAP
    } else {
        STATUS_OK
    }
}

// ---- Primary ---------------------------------------------------------------

/// One standby link as the primary sees it.
struct LinkState {
    addr: String,
    conn: Option<Duplex>,
    /// Highest sequence this standby has acknowledged applying.
    acked_seq: u64,
    /// Clock time of the last successful ack.
    last_ack_at: Option<u64>,
    snapshots_sent: u64,
    send_failures: u64,
}

/// Per-standby view served by `GET /vm/replication`.
#[derive(Debug, Clone)]
pub struct StandbyLink {
    pub addr: String,
    pub acked_seq: u64,
    /// Records journaled on the primary but not yet acknowledged here.
    pub lag_records: u64,
    /// Seconds since the last ack (`None` before the first).
    pub lag_seconds: Option<u64>,
    pub snapshots_sent: u64,
}

/// Role + lag summary for operator surfaces.
#[derive(Debug, Clone)]
pub struct ReplicationStatus {
    /// `"primary"`, or `"fenced"` once a newer epoch deposed this node.
    pub role: &'static str,
    pub epoch: u64,
    /// Sequence of the last record streamed (0 before the first).
    pub head_seq: u64,
    pub fenced: bool,
    pub standbys: Vec<StandbyLink>,
    /// Worst-case standby staleness, `max(now - last_ack_at)`.
    pub heartbeat_age_seconds: Option<u64>,
}

struct ReplicaSetInner {
    epoch: u64,
    /// Sequence the next appended record will take.
    next_seq: u64,
    /// Retained records for resends: `(seq, encoded record)`.
    buffer: VecDeque<(u64, Vec<u8>)>,
    links: Vec<LinkState>,
    fenced: bool,
}

struct ReplMetrics {
    records_streamed: Counter,
    snapshots_sent: Counter,
    fenced_appends: Counter,
    lag_records: Gauge,
    heartbeat_age: Gauge,
}

struct ReplicaSetShared {
    network: Network,
    origin: String,
    clock: SimClock,
    telemetry: Telemetry,
    config: ReplicationConfig,
    /// Snapshot source for catch-up (the primary's own store).
    store: Mutex<Option<StateStore>>,
    metrics: ReplMetrics,
    inner: Mutex<ReplicaSetInner>,
}

/// The primary's half of the replication fabric. Cloning shares state;
/// install one clone as the store's [`AppendObserver`] and hand another to
/// the manager for `GET /vm/replication`.
#[derive(Clone)]
pub struct ReplicaSet {
    shared: Arc<ReplicaSetShared>,
}

impl ReplicaSet {
    /// A primary at `epoch` streaming to `standby_addrs`, starting at
    /// sequence `next_seq` (1 for a fresh deployment; the promoted
    /// standby's high-water mark + 1 after a failover).
    pub fn new(
        network: &Network,
        standby_addrs: &[String],
        epoch: u64,
        next_seq: u64,
        config: ReplicationConfig,
        clock: SimClock,
        telemetry: Telemetry,
    ) -> ReplicaSet {
        let links = standby_addrs
            .iter()
            .map(|addr| LinkState {
                addr: addr.clone(),
                conn: None,
                acked_seq: next_seq.saturating_sub(1),
                last_ack_at: None,
                snapshots_sent: 0,
                send_failures: 0,
            })
            .collect();
        let metrics = ReplMetrics {
            records_streamed: telemetry.counter("vnfguard_core_replication_records_total"),
            snapshots_sent: telemetry.counter("vnfguard_core_replication_snapshots_total"),
            fenced_appends: telemetry.counter("vnfguard_core_replication_fenced_total"),
            lag_records: telemetry.gauge("vnfguard_core_replication_lag_records"),
            heartbeat_age: telemetry.gauge("vnfguard_core_replication_heartbeat_age_seconds"),
        };
        ReplicaSet {
            shared: Arc::new(ReplicaSetShared {
                network: network.clone(),
                origin: "vm".to_string(),
                clock: clock.clone(),
                telemetry,
                config,
                store: Mutex::new(None),
                metrics,
                inner: Mutex::new(ReplicaSetInner {
                    epoch,
                    next_seq,
                    buffer: VecDeque::new(),
                    links,
                    fenced: false,
                }),
            }),
        }
    }

    /// Attach the primary's own store as the snapshot source for
    /// catch-up. (Separate from construction because the observer is
    /// installed on that same store.)
    pub fn attach_store(&self, store: StateStore) {
        *self.shared.store.lock() = Some(store);
    }

    /// The fencing epoch this primary stamps on every frame.
    pub fn epoch(&self) -> u64 {
        self.shared.inner.lock().epoch
    }

    /// True once a standby rejected this primary for a newer epoch.
    pub fn is_fenced(&self) -> bool {
        self.shared.inner.lock().fenced
    }

    /// Stream any buffered records to every standby and read acks. Called
    /// from the append observer (so streaming happens before the journal
    /// append is acknowledged) and from [`heartbeat`](Self::heartbeat).
    /// Returns `Err` only when fenced.
    pub fn pump(&self) -> Result<(), String> {
        self.pump_inner(false)
    }

    /// Send a liveness frame (an empty batch) to every standby, draining
    /// any buffered records first. Refreshes the lag gauges.
    pub fn heartbeat(&self) {
        let _ = self.pump_inner(true);
    }

    fn pump_inner(&self, send_heartbeat: bool) -> Result<(), String> {
        let shared = &self.shared;
        let now = shared.clock.now();
        let mut inner = shared.inner.lock();
        if inner.fenced {
            return Err(format!(
                "replication fenced: a newer primary holds epoch > {}",
                inner.epoch
            ));
        }
        let retry = RetryPolicy::new(
            shared.config.retry_attempts,
            shared.config.retry_base_secs,
            shared.config.retry_max_secs,
        )
        .with_seed(inner.next_seq ^ (inner.epoch << 32));
        let mut fenced = false;
        for idx in 0..inner.links.len() {
            let outcome = retry.run(&shared.clock, |_| {
                Self::drive_link(shared, &mut inner, idx, send_heartbeat, now)
            });
            match outcome.result {
                Ok(()) => {}
                Err(LinkError::Fenced(epoch)) => {
                    fenced = true;
                    shared.metrics.fenced_appends.inc();
                    shared.telemetry.event(
                        now,
                        "replication_fenced",
                        &format!(
                            "primary at epoch {} rejected by {} (epoch {epoch})",
                            inner.epoch, inner.links[idx].addr
                        ),
                    );
                }
                Err(LinkError::Io(_)) => {
                    // Link down: records stay buffered, the lag gauge
                    // grows, and the next pump retries.
                    inner.links[idx].conn = None;
                    inner.links[idx].send_failures += 1;
                }
            }
        }
        if fenced {
            inner.fenced = true;
        }
        Self::trim_buffer(&shared.config, &mut inner);
        Self::refresh_gauges(shared, &inner, shared.clock.now());
        if fenced {
            Err(format!(
                "replication fenced: a newer primary holds epoch > {}",
                inner.epoch
            ))
        } else {
            Ok(())
        }
    }

    /// Bring one standby as close to `head` as the link allows: resend
    /// from its ack cursor in window-sized batches, fall back to a
    /// snapshot when the buffer no longer reaches, finish with an optional
    /// heartbeat.
    fn drive_link(
        shared: &ReplicaSetShared,
        inner: &mut ReplicaSetInner,
        idx: usize,
        send_heartbeat: bool,
        now: u64,
    ) -> Result<(), LinkError> {
        let epoch = inner.epoch;
        let head = inner.next_seq - 1;
        if inner.links[idx].conn.is_none() {
            let mut conn = shared
                .network
                .connect_from(&shared.origin, &inner.links[idx].addr)
                .map_err(|e| LinkError::Io(e.to_string()))?;
            // A standby that accepts but never acks (stalled link) must
            // not wedge the primary's append path forever.
            conn.set_read_timeout(Some(std::time::Duration::from_secs(5)));
            inner.links[idx].conn = Some(conn);
        }
        let window = shared.config.window.max(1);
        loop {
            let from = inner.links[idx].acked_seq + 1;
            if from > head {
                break;
            }
            let oldest_buffered = inner.buffer.front().map(|(seq, _)| *seq);
            let batch = match oldest_buffered {
                Some(oldest) if from >= oldest => {
                    let start = (from - oldest) as usize;
                    let frames: Vec<Vec<u8>> = inner
                        .buffer
                        .iter()
                        .skip(start)
                        .take(window)
                        .map(|(_, bytes)| bytes.clone())
                        .collect();
                    Batch {
                        epoch,
                        kind: KIND_RECORDS,
                        first_seq: from,
                        sent_at: now,
                        frames,
                    }
                }
                // The standby needs records the buffer no longer holds:
                // snapshot-assisted catch-up from the primary's own store.
                _ => {
                    let state = shared
                        .store
                        .lock()
                        .as_ref()
                        .ok_or_else(|| LinkError::Io("no snapshot source".into()))?
                        .replay()
                        .map_err(|e| LinkError::Io(e.to_string()))?
                        .state;
                    inner.links[idx].snapshots_sent += 1;
                    shared.metrics.snapshots_sent.inc();
                    Batch {
                        epoch,
                        kind: KIND_SNAPSHOT,
                        first_seq: head + 1,
                        sent_at: now,
                        frames: vec![state.encode()],
                    }
                }
            };
            let sent_records = if batch.kind == KIND_RECORDS {
                batch.frames.len() as u64
            } else {
                0
            };
            let ack = Self::exchange(inner.links[idx].conn.as_mut().expect("conn set"), &batch)?;
            match ack.status {
                STATUS_FENCED => return Err(LinkError::Fenced(ack.epoch)),
                _ => {
                    // OK advances the cursor; GAP rewinds it to what the
                    // standby actually expects (both are `next_seq - 1`).
                    inner.links[idx].acked_seq = ack.next_seq.saturating_sub(1);
                    inner.links[idx].last_ack_at = Some(now);
                    if ack.status == STATUS_OK {
                        shared.metrics.records_streamed.add(sent_records);
                    }
                }
            }
        }
        if send_heartbeat {
            let batch = Batch {
                epoch,
                kind: KIND_HEARTBEAT,
                first_seq: head + 1,
                sent_at: now,
                frames: Vec::new(),
            };
            let ack = Self::exchange(inner.links[idx].conn.as_mut().expect("conn set"), &batch)?;
            match ack.status {
                STATUS_FENCED => return Err(LinkError::Fenced(ack.epoch)),
                _ => {
                    inner.links[idx].acked_seq = ack.next_seq.saturating_sub(1);
                    inner.links[idx].last_ack_at = Some(now);
                }
            }
        }
        Ok(())
    }

    fn exchange(conn: &mut Duplex, batch: &Batch) -> Result<Ack, LinkError> {
        batch
            .write_to(conn)
            .map_err(|e| LinkError::Io(e.to_string()))?;
        Ack::read_from(conn).map_err(|e| LinkError::Io(e.to_string()))
    }

    /// Drop acknowledged records, then enforce the retention budget (a
    /// standby that needs dropped records gets a snapshot instead).
    fn trim_buffer(config: &ReplicationConfig, inner: &mut ReplicaSetInner) {
        let min_acked = inner
            .links
            .iter()
            .map(|l| l.acked_seq)
            .min()
            .unwrap_or(inner.next_seq - 1);
        while matches!(inner.buffer.front(), Some((seq, _)) if *seq <= min_acked) {
            inner.buffer.pop_front();
        }
        while inner.buffer.len() > config.retain {
            inner.buffer.pop_front();
        }
    }

    fn refresh_gauges(shared: &ReplicaSetShared, inner: &ReplicaSetInner, now: u64) {
        let head = inner.next_seq - 1;
        let lag = inner
            .links
            .iter()
            .map(|l| head.saturating_sub(l.acked_seq))
            .max()
            .unwrap_or(0);
        shared.metrics.lag_records.set(lag as i64);
        let age = inner
            .links
            .iter()
            .map(|l| l.last_ack_at.map_or(i64::MAX, |at| now.saturating_sub(at) as i64))
            .max()
            .unwrap_or(0);
        if age != i64::MAX {
            shared.metrics.heartbeat_age.set(age);
        }
    }

    /// Role, epoch, and per-standby lag; refreshes the Prometheus gauges
    /// so a scrape after any status read sees current values.
    pub fn status(&self) -> ReplicationStatus {
        let shared = &self.shared;
        let now = shared.clock.now();
        let inner = shared.inner.lock();
        Self::refresh_gauges(shared, &inner, now);
        let head = inner.next_seq - 1;
        let standbys: Vec<StandbyLink> = inner
            .links
            .iter()
            .map(|l| StandbyLink {
                addr: l.addr.clone(),
                acked_seq: l.acked_seq,
                lag_records: head.saturating_sub(l.acked_seq),
                lag_seconds: l.last_ack_at.map(|at| now.saturating_sub(at)),
                snapshots_sent: l.snapshots_sent,
            })
            .collect();
        let heartbeat_age_seconds = standbys.iter().map(|s| s.lag_seconds).max().flatten();
        ReplicationStatus {
            role: if inner.fenced { "fenced" } else { "primary" },
            epoch: inner.epoch,
            head_seq: head,
            fenced: inner.fenced,
            standbys,
            heartbeat_age_seconds,
        }
    }
}

enum LinkError {
    Io(String),
    Fenced(u64),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Io(msg) => write!(f, "link io: {msg}"),
            LinkError::Fenced(epoch) => write!(f, "fenced by epoch {epoch}"),
        }
    }
}

impl AppendObserver for ReplicaSet {
    /// Frame the freshly journaled record and stream it before the append
    /// returns: an acknowledged operation is on every reachable standby.
    /// Only fencing fails the append — an unreachable standby buffers.
    fn appended(&self, record: &WalRecord) -> Result<(), String> {
        {
            let mut inner = self.shared.inner.lock();
            if inner.fenced {
                return Err(format!(
                    "replication fenced: a newer primary holds epoch > {}",
                    inner.epoch
                ));
            }
            let seq = inner.next_seq;
            inner.next_seq += 1;
            inner.buffer.push_back((seq, record.encode()));
        }
        self.pump()
    }
}

impl std::fmt::Debug for ReplicaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.shared.inner.lock();
        f.debug_struct("ReplicaSet")
            .field("epoch", &inner.epoch)
            .field("head_seq", &(inner.next_seq - 1))
            .field("standbys", &inner.links.len())
            .field("fenced", &inner.fenced)
            .finish()
    }
}
