//! [`VmService`]: the shard-routing service handle in front of the
//! Verification Manager fleet.
//!
//! A deployment partitions enrollment, serial and renewal state across N
//! [`VerificationManager`] shards keyed by VNF identity, while the CA key,
//! the CRL number and the rotation epoch live on a single serialized
//! *authority* shard (shard 0). `VmService` is the only surface callers
//! see: it owns the routing table and one fine-grained lock per shard, so
//! the per-connection handler threads of `serve_vm_api` execute manager
//! work concurrently instead of convoying on one global mutex.
//!
//! Routing rules:
//! - **VNF identity** picks the shard for `begin_vnf_attestation` (a
//!   deterministic digest of the VNF name, mod shard count);
//! - **challenge ids** and **serials** are allocated from disjoint
//!   per-shard spans ([`shard_of_challenge`], [`shard_of_serial`]), so
//!   every later workflow step self-routes back to the shard that began
//!   it;
//! - **host attestation, CA, CRL, rotation and operator certificates**
//!   always go to the authority shard.
//!
//! Cross-shard coordination is explicit and small: host trust records
//! established on the authority are propagated to the other shards (they
//! gate shard-local enrollments and renewals), CA rotations committed on
//! the authority are *adopted* (never independently performed) by the
//! others, and the fleet CRL folds every shard's revocations into one
//! authority-signed artifact. None of the adoption traffic is journaled —
//! authority decisions appear only in the authority's WAL, and recovery
//! re-adopts from the authority's replayed state (see
//! `Testbed::recover_vm`).
//!
//! Every method takes `&self` and locks only the shard(s) it touches, for
//! only as long as the manager call runs — in particular, no lock is ever
//! held across a network call (the `remote` module's agent hops all happen
//! between `VmService` calls).

use crate::lifecycle::{CaRotation, LifecycleStatus, RenewalDue};
use crate::manager::{
    shard_of_challenge, shard_of_serial, Challenge, EnrollmentRecord, HostRecord,
    PendingEnrollment, RecoveryReport, VerificationManager, VmEvent,
};
use crate::overload::{AdmissionController, Permit, Workclass};
use crate::replication::ReplicationStatus;
use crate::CoreError;
use parking_lot::{Mutex, MutexGuard};
use std::sync::Arc;
use vnfguard_attest::{AttestationBackend, BackendKind, Measurement};
use vnfguard_controller::SimClock;
use vnfguard_crypto::sha2::sha256;
use vnfguard_ima::appraisal::Verdict;
use vnfguard_pki::cert::Certificate;
use vnfguard_pki::crl::{Crl, CrlEntry, RevocationReason};
use vnfguard_store::StoreStats;
use vnfguard_telemetry::{
    labeled, AlertSnapshot, HealthMonitor, Histogram, HistogramSnapshot, Telemetry, TraceContext,
};

/// Deterministic shard index for a VNF name: the first eight bytes of a
/// domain-separated digest, mod the shard count. Stable across runs and
/// incarnations, so a VNF's enrollment state always lives on one shard.
pub fn shard_of_vnf(vnf_name: &str, shard_count: usize) -> usize {
    if shard_count <= 1 {
        return 0;
    }
    let digest = sha256(&[b"vnfguard-shard-route-v1\0", vnf_name.as_bytes()].concat());
    let word = u64::from_be_bytes(digest[..8].try_into().expect("sha256 is 32 bytes"));
    (word % shard_count as u64) as usize
}

/// Cloneable handle over the sharded Verification Manager fleet. See the
/// module docs for the routing and coordination rules.
#[derive(Clone)]
pub struct VmService {
    shards: Arc<Vec<Mutex<VerificationManager>>>,
    admission: Option<Arc<AdmissionController>>,
    health: Option<HealthHandle>,
    /// Offline SEV-SNP appraiser for this deployment, if SNP hosts exist.
    /// `serve_vm_api` folds it into its evidence-sniffing dispatcher so
    /// the one API surface serves a mixed SGX + SNP fleet.
    snp: Option<vnfguard_attest::snp::SnpVerifier>,
}

/// The SLO monitor plus a clock clone, so hot-path outcome recording never
/// has to lock the authority shard just to read the time. Each workclass
/// also gets an exact log₂ latency histogram (with trace exemplars) —
/// the unit of cross-node merging in the fleet monitor.
#[derive(Clone)]
struct HealthHandle {
    monitor: HealthMonitor,
    clock: SimClock,
    latency: [Histogram; 4],
    /// Per-(workclass, attestation backend) latency breakouts, indexed
    /// `[class.index()][backend.as_u8()]`. Only the evidence-carrying
    /// workflows charge these; the unlabeled per-class series above keeps
    /// counting everything, so the labeled series are a pure refinement.
    backend_latency: [[Histogram; 2]; 4],
}

impl VmService {
    /// Wrap a single manager (the unsharded deployment). Bit-for-bit
    /// identical behavior to calling the manager directly.
    pub fn single(vm: VerificationManager) -> VmService {
        VmService::from_shards(vec![vm])
    }

    /// Wrap an already-constructed shard fleet. Shard 0 is the authority;
    /// every manager must have been configured with
    /// [`VerificationManager::set_shard`] for its position.
    pub fn from_shards(shards: Vec<VerificationManager>) -> VmService {
        assert!(!shards.is_empty(), "a VmService needs at least one shard");
        VmService {
            shards: Arc::new(shards.into_iter().map(Mutex::new).collect()),
            admission: None,
            health: None,
            snp: None,
        }
    }

    /// Attach the deployment's offline SNP appraiser; `serve_vm_api`
    /// dispatches SNP evidence through it instead of the IAS path.
    pub fn with_snp_verifier(mut self, verifier: vnfguard_attest::snp::SnpVerifier) -> VmService {
        self.snp = Some(verifier);
        self
    }

    /// The attached SNP appraiser, if any.
    pub fn snp_verifier(&self) -> Option<&vnfguard_attest::snp::SnpVerifier> {
        self.snp.as_ref()
    }

    /// Put an [`AdmissionController`] in front of the workflow methods.
    /// Enrollment, renewal, revocation/CRL, and admitted introspection
    /// calls then pass the depth gate before queueing on a shard lock and
    /// the sojourn/deadline gate right after acquiring it. Commit and
    /// abort are deliberately *never* gated: shedding the second phase of
    /// a two-phase enrollment would orphan the prepare in the WAL.
    pub fn with_admission(mut self, admission: Arc<AdmissionController>) -> VmService {
        self.admission = Some(admission);
        self
    }

    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_deref()
    }

    /// Attach an SLO [`HealthMonitor`]: every gated workflow call then
    /// reports its outcome (success, wall-clock latency, trace id) to the
    /// per-workclass burn-rate trackers. Shed and deadline-expired
    /// requests count as bad availability events — from the caller's view
    /// they failed, and the SLO measures the caller's view.
    pub fn with_health(mut self, monitor: HealthMonitor) -> VmService {
        let clock = self.clock();
        let telemetry = self.telemetry();
        let latency = Workclass::ALL.map(|class| {
            telemetry.histogram(&labeled(
                "vnfguard_core_workclass_latency_micros",
                "class",
                class.label(),
            ))
        });
        // Label order is lexicographic (backend before class), matching the
        // hand-composed multi-label series elsewhere in the crate.
        let backend_latency = Workclass::ALL.map(|class| {
            BackendKind::ALL.map(|backend| {
                telemetry.histogram(&format!(
                    "vnfguard_core_workclass_latency_micros{{backend=\"{}\",class=\"{}\"}}",
                    backend.label(),
                    class.label(),
                ))
            })
        });
        self.health = Some(HealthHandle {
            monitor,
            clock,
            latency,
            backend_latency,
        });
        self
    }

    /// The attached SLO monitor, if any.
    pub fn health(&self) -> Option<&HealthMonitor> {
        self.health.as_ref().map(|h| &h.monitor)
    }

    /// Report one workflow outcome to the SLO trackers (no-op without a
    /// monitor). Latency is wall-clock from before the admission gate, so
    /// queueing time the caller experienced is charged to the SLO.
    fn note_health(
        &self,
        class: Workclass,
        begun: std::time::Instant,
        ok: bool,
        trace: Option<&TraceContext>,
    ) {
        if let Some(health) = &self.health {
            let micros = begun.elapsed().as_micros() as u64;
            let trace_id = trace
                .filter(|ctx| ctx.is_recording())
                .map(|ctx| ctx.trace_id);
            health
                .monitor
                .record(class.label(), health.clock.now(), ok, micros, trace_id);
            let histogram = &health.latency[class.index()];
            match trace_id {
                Some(id) => histogram.record_with_exemplar(micros, id),
                None => histogram.record(micros),
            }
        }
    }

    /// Charge an evidence-carrying workflow outcome to its attestation
    /// backend's breakout series, and to the composite
    /// `<class>.<backend>` SLO tracker if the operator configured one
    /// (recording an unconfigured workclass label is a no-op by design).
    fn note_backend_health(
        &self,
        class: Workclass,
        backend: BackendKind,
        begun: std::time::Instant,
        ok: bool,
        trace: Option<&TraceContext>,
    ) {
        if let Some(health) = &self.health {
            let micros = begun.elapsed().as_micros() as u64;
            let trace_id = trace
                .filter(|ctx| ctx.is_recording())
                .map(|ctx| ctx.trace_id);
            health.monitor.record(
                &format!("{}.{}", class.label(), backend.label()),
                health.clock.now(),
                ok,
                micros,
                trace_id,
            );
            let histogram = &health.backend_latency[class.index()][backend.as_u8() as usize];
            match trace_id {
                Some(id) => histogram.record_with_exemplar(micros, id),
                None => histogram.record(micros),
            }
        }
    }

    /// The depth gate, a no-op when admission control is off.
    fn gate(
        &self,
        class: Workclass,
        trace: Option<&TraceContext>,
    ) -> Result<Option<Permit<'_>>, CoreError> {
        match &self.admission {
            Some(admission) => admission.admit(class, trace).map(Some),
            None => Ok(None),
        }
    }

    /// The sojourn/deadline gate; call with the shard lock held, before
    /// touching any state, so a shed leaves nothing behind.
    fn pass_dequeue(
        &self,
        permit: &Option<Permit<'_>>,
        trace: Option<&TraceContext>,
    ) -> Result<(), CoreError> {
        if let (Some(admission), Some(permit)) = (self.admission.as_deref(), permit.as_ref()) {
            admission.dequeued(permit, trace)?;
        }
        Ok(())
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The mutex guarding one shard — for the deployment layer, which
    /// swaps recovered incarnations in place (so every clone of this
    /// handle, including the one inside `serve_vm_api`, sees the new
    /// incarnation on its next request).
    pub(crate) fn shard_mutex(&self, index: usize) -> &Mutex<VerificationManager> {
        &self.shards[index]
    }

    fn authority(&self) -> MutexGuard<'_, VerificationManager> {
        self.shards[0].lock()
    }

    fn shard_for_vnf(&self, vnf_name: &str) -> usize {
        shard_of_vnf(vnf_name, self.shards.len())
    }

    /// Serials outside every shard's span (garbage input) route to the
    /// authority, which answers "no such enrollment".
    fn shard_for_serial(&self, serial: u64) -> usize {
        (shard_of_serial(serial) as usize).min(self.shards.len() - 1)
    }

    fn shard_for_challenge(&self, challenge_id: u64) -> usize {
        (shard_of_challenge(challenge_id) as usize).min(self.shards.len() - 1)
    }

    /// Run `f` on shard `index` with the manager's trace context scoped to
    /// `trace` for exactly the duration of the call (all under one lock
    /// hold, so concurrent requests cannot cross-contaminate contexts).
    fn with_shard_traced<R>(
        &self,
        index: usize,
        trace: Option<&TraceContext>,
        f: impl FnOnce(&mut VerificationManager) -> R,
    ) -> R {
        let mut vm = self.shards[index].lock();
        if let Some(ctx) = trace {
            vm.set_trace_context(Some(ctx.clone()));
        }
        let result = f(&mut vm);
        if trace.is_some() {
            vm.set_trace_context(None);
        }
        result
    }

    /// [`with_shard_traced`](Self::with_shard_traced) behind both
    /// admission gates: shed before queueing when the class is full, shed
    /// after acquiring the lock when sojourn shows a standing queue or the
    /// request's deadline died while it waited. Either shed happens before
    /// `f` runs, so refused requests touch no manager state.
    fn with_shard_gated<R>(
        &self,
        index: usize,
        class: Workclass,
        trace: Option<&TraceContext>,
        f: impl FnOnce(&mut VerificationManager) -> Result<R, CoreError>,
    ) -> Result<R, CoreError> {
        let begun = std::time::Instant::now();
        let result = (|| {
            let permit = self.gate(class, trace)?;
            let mut vm = self.shards[index].lock();
            self.pass_dequeue(&permit, trace)?;
            if let Some(ctx) = trace {
                vm.set_trace_context(Some(ctx.clone()));
            }
            let result = f(&mut vm);
            if trace.is_some() {
                vm.set_trace_context(None);
            }
            result
        })();
        self.note_health(class, begun, result.is_ok(), trace);
        result
    }

    /// Copy the authority's host trust records to every other shard.
    /// Shard-local enrollment and renewal checks (`host_is_trusted`) read
    /// the local copy; verdicts are volatile by design, so propagation is
    /// not journaled and does not survive recovery — hosts re-attest.
    fn sync_host_records(&self) {
        if self.shards.len() == 1 {
            return;
        }
        let records = self.authority().host_records();
        for shard in &self.shards[1..] {
            let mut vm = shard.lock();
            for record in &records {
                vm.adopt_host_record(record.clone());
            }
        }
    }

    /// Collect the non-authority shards' revocation entries and whether
    /// any of them has revocations not yet folded into a distributed CRL.
    fn gather_remote_revocations(&self) -> (Vec<CrlEntry>, bool) {
        let mut extras = Vec::new();
        let mut any_dirty = false;
        for shard in &self.shards[1..] {
            let vm = shard.lock();
            any_dirty |= vm.crl_dirty();
            extras.extend(vm.revoked_entries());
        }
        (extras, any_dirty)
    }

    fn clear_remote_dirty(&self) {
        for shard in &self.shards[1..] {
            shard.lock().clear_crl_dirty();
        }
    }

    // ---- Host attestation (authority shard) -------------------------------

    /// Register a host TPM AIK ahead of attestation.
    pub fn register_host_tpm(
        &self,
        host_id: &str,
        aik: vnfguard_crypto::ed25519::VerifyingKey,
    ) {
        self.authority().register_host_tpm(host_id, aik);
        self.sync_host_records();
    }

    /// Step 1: challenge a container host.
    pub fn begin_host_attestation(&self, host_id: &str) -> Challenge {
        self.authority().begin_host_attestation(host_id)
    }

    /// Step 2: verify and appraise host evidence through any attestation
    /// backend. The resulting trust record is propagated to every shard.
    /// (The SGX/IAS-flavored [`complete_host_attestation`] wrapper lives
    /// in the `backend` module.)
    ///
    /// [`complete_host_attestation`]: Self::complete_host_attestation
    pub fn complete_host_attestation_backend(
        &self,
        backend: &mut dyn AttestationBackend,
        challenge_id: u64,
        evidence: &crate::attestation::HostEvidence,
    ) -> Result<Verdict, CoreError> {
        self.complete_host_attestation_traced(backend, challenge_id, evidence, None)
    }

    pub(crate) fn complete_host_attestation_traced(
        &self,
        backend: &mut dyn AttestationBackend,
        challenge_id: u64,
        evidence: &crate::attestation::HostEvidence,
        trace: Option<&TraceContext>,
    ) -> Result<Verdict, CoreError> {
        let verdict = self.with_shard_traced(0, trace, |vm| {
            vm.complete_host_attestation(backend, challenge_id, evidence)
        })?;
        self.sync_host_records();
        Ok(verdict)
    }

    /// Policy-gated reuse of a cached host verdict when the attestation
    /// service is unreachable.
    pub fn degraded_host_verdict(&self, host_id: &str) -> Result<Verdict, CoreError> {
        self.degraded_host_verdict_traced(host_id, None)
    }

    pub(crate) fn degraded_host_verdict_traced(
        &self,
        host_id: &str,
        trace: Option<&TraceContext>,
    ) -> Result<Verdict, CoreError> {
        self.with_shard_traced(0, trace, |vm| vm.degraded_host_verdict(host_id))
    }

    /// Platform-compromise response: every shard revokes its own
    /// credentials for the host and flips its local trust record.
    pub fn revoke_host(&self, host_id: &str) -> usize {
        let mut revoked = 0;
        for shard in self.shards.iter() {
            revoked += shard.lock().revoke_host(host_id);
        }
        revoked
    }

    pub fn host_record(&self, host_id: &str) -> Option<HostRecord> {
        self.authority().host_record(host_id).cloned()
    }

    // ---- VNF enrollment (routed shards) -----------------------------------

    /// Step 3: initiate VNF attestation on the shard that owns this VNF's
    /// identity. The returned challenge id self-routes the later steps.
    pub fn begin_vnf_attestation(
        &self,
        host_id: &str,
        vnf_name: &str,
    ) -> Result<Challenge, CoreError> {
        let shard = self.shard_for_vnf(vnf_name);
        self.with_shard_gated(shard, Workclass::Enrollment, None, |vm| {
            vm.begin_vnf_attestation(host_id, vnf_name)
        })
    }

    /// Steps 4–5 in one shot (prepare + commit), through any attestation
    /// backend. (The SGX/IAS-flavored [`complete_vnf_enrollment`] wrapper
    /// lives in the `backend` module.)
    ///
    /// [`complete_vnf_enrollment`]: Self::complete_vnf_enrollment
    pub fn complete_vnf_enrollment_backend(
        &self,
        backend: &mut dyn AttestationBackend,
        challenge_id: u64,
        quote_bytes: &[u8],
        provisioning_key: &[u8; 32],
        controller_cn: &str,
    ) -> Result<(Vec<u8>, Certificate), CoreError> {
        let begun = std::time::Instant::now();
        let shard = self.shard_for_challenge(challenge_id);
        let result = self.with_shard_gated(shard, Workclass::Enrollment, None, |vm| {
            vm.complete_vnf_enrollment(
                &mut *backend,
                challenge_id,
                quote_bytes,
                provisioning_key,
                controller_cn,
            )
        });
        self.note_backend_health(
            Workclass::Enrollment,
            backend.kind(),
            begun,
            result.is_ok(),
            None,
        );
        result
    }

    /// Phase one of two-phase enrollment through any attestation backend;
    /// the returned serial is the commit token (and routes the
    /// commit/abort back here). (The SGX/IAS-flavored
    /// [`prepare_vnf_enrollment`] wrapper lives in the `backend` module.)
    ///
    /// [`prepare_vnf_enrollment`]: Self::prepare_vnf_enrollment
    pub fn prepare_vnf_enrollment_backend(
        &self,
        backend: &mut dyn AttestationBackend,
        challenge_id: u64,
        quote_bytes: &[u8],
        provisioning_key: &[u8; 32],
        controller_cn: &str,
    ) -> Result<(u64, Vec<u8>, Certificate), CoreError> {
        self.prepare_vnf_enrollment_traced(
            backend,
            challenge_id,
            quote_bytes,
            provisioning_key,
            controller_cn,
            None,
        )
    }

    pub(crate) fn prepare_vnf_enrollment_traced(
        &self,
        backend: &mut dyn AttestationBackend,
        challenge_id: u64,
        quote_bytes: &[u8],
        provisioning_key: &[u8; 32],
        controller_cn: &str,
        trace: Option<&TraceContext>,
    ) -> Result<(u64, Vec<u8>, Certificate), CoreError> {
        let begun = std::time::Instant::now();
        let shard = self.shard_for_challenge(challenge_id);
        let result = self.with_shard_gated(shard, Workclass::Enrollment, trace, |vm| {
            vm.prepare_vnf_enrollment(
                &mut *backend,
                challenge_id,
                quote_bytes,
                provisioning_key,
                controller_cn,
            )
        });
        self.note_backend_health(
            Workclass::Enrollment,
            backend.kind(),
            begun,
            result.is_ok(),
            trace,
        );
        result
    }

    pub fn commit_vnf_enrollment(&self, serial: u64) -> Result<(), CoreError> {
        self.commit_vnf_enrollment_traced(serial, None)
    }

    pub(crate) fn commit_vnf_enrollment_traced(
        &self,
        serial: u64,
        trace: Option<&TraceContext>,
    ) -> Result<(), CoreError> {
        let shard = self.shard_for_serial(serial);
        self.with_shard_traced(shard, trace, |vm| vm.commit_vnf_enrollment(serial))
    }

    pub fn abort_vnf_enrollment(&self, serial: u64, reason: &str) -> Result<(), CoreError> {
        self.abort_vnf_enrollment_traced(serial, reason, None)
    }

    pub(crate) fn abort_vnf_enrollment_traced(
        &self,
        serial: u64,
        reason: &str,
        trace: Option<&TraceContext>,
    ) -> Result<(), CoreError> {
        let shard = self.shard_for_serial(serial);
        self.with_shard_traced(shard, trace, |vm| vm.abort_vnf_enrollment(serial, reason))
    }

    /// Enrollments issued but not yet committed, across all shards.
    pub fn pending_enrollments(&self) -> impl Iterator<Item = PendingEnrollment> {
        let mut pending = Vec::new();
        for shard in self.shards.iter() {
            pending.extend(shard.lock().pending_enrollments().cloned().collect::<Vec<_>>());
        }
        pending.into_iter()
    }

    /// Expire prepared-but-uncommitted enrollments on every shard; returns
    /// the fleet-wide count.
    pub fn sweep_pending_enrollments(&self) -> Result<usize, CoreError> {
        let mut swept = 0;
        for shard in self.shards.iter() {
            swept += shard.lock().sweep_pending_enrollments()?;
        }
        Ok(swept)
    }

    /// Every shard's enrollment records (authority first, then shards in
    /// ascending order — the same deterministic order recovery replays).
    pub fn enrollments(&self) -> impl Iterator<Item = EnrollmentRecord> {
        let mut records = Vec::new();
        for shard in self.shards.iter() {
            records.extend(shard.lock().enrollments().cloned().collect::<Vec<_>>());
        }
        records.into_iter()
    }

    // ---- Renewal and revocation -------------------------------------------

    /// Renew a live credential by serial on the shard that issued it.
    pub fn renew_vnf_credential(
        &self,
        serial: u64,
        provisioning_key: &[u8; 32],
        controller_cn: &str,
    ) -> Result<(Vec<u8>, Certificate), CoreError> {
        self.renew_vnf_credential_traced(serial, provisioning_key, controller_cn, None)
    }

    /// [`renew_vnf_credential`](Self::renew_vnf_credential) with the
    /// manager's workflow span parented under `trace`.
    pub fn renew_vnf_credential_traced(
        &self,
        serial: u64,
        provisioning_key: &[u8; 32],
        controller_cn: &str,
        trace: Option<&TraceContext>,
    ) -> Result<(Vec<u8>, Certificate), CoreError> {
        let shard = self.shard_for_serial(serial);
        self.with_shard_gated(shard, Workclass::Renewal, trace, |vm| {
            vm.renew_vnf_credential(serial, provisioning_key, controller_cn)
        })
    }

    pub fn revoke_credential(
        &self,
        serial: u64,
        reason: RevocationReason,
    ) -> Result<(), CoreError> {
        let shard = self.shard_for_serial(serial);
        self.with_shard_gated(shard, Workclass::Revocation, None, |vm| {
            vm.revoke_credential(serial, reason)
        })
    }

    pub fn credential_is_revoked(&self, serial: u64) -> bool {
        let shard = self.shard_for_serial(serial);
        self.shards[shard].lock().credential_is_revoked(serial)
    }

    /// Record a refused renewal (see
    /// [`VerificationManager::note_renewal_refused`]) on the owning shard.
    /// Ungated: the bookkeeping that *stops* refused renewals from being
    /// re-offered must not itself be sheddable.
    pub fn note_renewal_refused(&self, serial: u64, retry_after_secs: u64) {
        let shard = self.shard_for_serial(serial);
        self.shards[shard].lock().note_renewal_refused(serial, retry_after_secs);
    }

    /// The instant before which refused-renewal backoff hides `serial`
    /// from the renewal sweep, if the serial is parked.
    pub fn renewal_backoff_until(&self, serial: u64) -> Option<u64> {
        let shard = self.shard_for_serial(serial);
        self.shards[shard].lock().renewal_backoff_until(serial)
    }

    /// Credentials inside their renewal window, across all shards.
    pub fn certs_expiring(&self) -> Vec<RenewalDue> {
        let mut due = Vec::new();
        for shard in self.shards.iter() {
            due.extend(shard.lock().certs_expiring());
        }
        due
    }

    // ---- CA, CRL and rotation (authority shard) ---------------------------

    pub fn ca_certificate(&self) -> Certificate {
        self.authority().ca_certificate().clone()
    }

    pub fn ca_epoch(&self) -> u64 {
        self.authority().ca_epoch()
    }

    pub fn ca_cross_signed(&self) -> Option<Certificate> {
        self.authority().ca_cross_signed().cloned()
    }

    pub fn ca_previous_roots(&self) -> Vec<Certificate> {
        self.authority().ca_previous_roots().to_vec()
    }

    pub fn ca_rotation_chain(&self) -> Vec<(u64, Certificate, Certificate)> {
        self.authority().ca_rotation_chain()
    }

    pub fn rotation_drain_deadline(&self) -> Option<u64> {
        self.authority().rotation_drain_deadline()
    }

    /// Rotate the authority's CA key; every other shard then adopts the
    /// committed epoch so its future issuance is signed by the new key. A
    /// crashed shard skips adoption here and re-adopts during recovery.
    pub fn rotate_ca(&self) -> Result<CaRotation, CoreError> {
        self.rotate_ca_traced(None)
    }

    /// [`rotate_ca`](Self::rotate_ca) with the rotation span parented
    /// under `trace`.
    pub fn rotate_ca_traced(
        &self,
        trace: Option<&TraceContext>,
    ) -> Result<CaRotation, CoreError> {
        let (rotation, rotated_at) = self.with_shard_traced(0, trace, |vm| {
            let rotated_at = vm.clock().now();
            vm.rotate_ca().map(|rotation| (rotation, rotated_at))
        })?;
        for shard in &self.shards[1..] {
            let _ = shard.lock().adopt_rotation(
                rotation.epoch,
                rotation.new_root.serial(),
                rotation.cross_signed.serial(),
                rotated_at,
            );
        }
        Ok(rotation)
    }

    /// Mint a fresh fleet CRL: the authority journals the number bump and
    /// signs its own revocations merged with every other shard's. Gated
    /// in the revocation class — the highest, so CRL work still admits
    /// under an enrollment flood.
    pub fn issue_crl(&self) -> Result<Crl, CoreError> {
        let begun = std::time::Instant::now();
        let result = (|| {
            let permit = self.gate(Workclass::Revocation, None)?;
            let (extras, _) = self.gather_remote_revocations();
            let crl = {
                let mut authority = self.authority();
                self.pass_dequeue(&permit, None)?;
                authority.issue_crl_merged(&extras)
            }?;
            self.clear_remote_dirty();
            Ok(crl)
        })();
        self.note_health(Workclass::Revocation, begun, result.is_ok(), None);
        result
    }

    /// The fleet CRL to serve to polling relying parties: the cached copy
    /// unless any shard has revocations (or a rotation) not yet covered.
    pub fn latest_crl(&self) -> Result<Crl, CoreError> {
        let begun = std::time::Instant::now();
        let result = (|| {
            let permit = self.gate(Workclass::Revocation, None)?;
            let (extras, any_dirty) = self.gather_remote_revocations();
            let crl = {
                let mut authority = self.authority();
                self.pass_dequeue(&permit, None)?;
                if any_dirty {
                    authority.issue_crl_merged(&extras)
                } else {
                    authority.latest_crl_merged(&extras)
                }
            }?;
            self.clear_remote_dirty();
            Ok(crl)
        })();
        self.note_health(Workclass::Revocation, begun, result.is_ok(), None);
        result
    }

    /// Read-only preview of the fleet CRL (no journaling, no number bump).
    pub fn current_crl(&self, lifetime_secs: u64) -> Crl {
        let (extras, _) = self.gather_remote_revocations();
        self.authority().current_crl_merged(&extras, lifetime_secs)
    }

    pub fn issue_client_certificate(
        &self,
        cn: &str,
        public_key: vnfguard_crypto::ed25519::VerifyingKey,
    ) -> Certificate {
        self.authority().issue_client_certificate(cn, public_key)
    }

    pub fn issue_server_certificate(
        &self,
        cn: &str,
        public_key: vnfguard_crypto::ed25519::VerifyingKey,
    ) -> Certificate {
        self.authority().issue_server_certificate(cn, public_key)
    }

    // ---- Deployment trust inputs ------------------------------------------

    /// Whitelist a credential-enclave measurement on every shard (any
    /// shard may be asked to enroll this VNF). SGX-scoped; see
    /// [`trust_enclave_for`](Self::trust_enclave_for).
    pub fn trust_enclave(&self, measurement: Measurement, label: &str) {
        self.trust_enclave_for(BackendKind::SgxEpid, measurement, label);
    }

    /// Whitelist a workload measurement under a specific attestation
    /// backend on every shard. Whitelists are backend-scoped: an SNP
    /// launch measurement never satisfies an SGX enrollment or vice versa.
    pub fn trust_enclave_for(&self, backend: BackendKind, measurement: Measurement, label: &str) {
        for shard in self.shards.iter() {
            shard.lock().trust_enclave_for(backend, measurement, label);
        }
    }

    /// Whitelist the integrity attestation enclave on every shard
    /// (SGX-scoped).
    pub fn trust_integrity_enclave(&self, measurement: Measurement, label: &str) {
        self.trust_integrity_enclave_for(BackendKind::SgxEpid, measurement, label);
    }

    /// Backend-scoped integrity-enclave whitelist entry on every shard.
    pub fn trust_integrity_enclave_for(
        &self,
        backend: BackendKind,
        measurement: Measurement,
        label: &str,
    ) {
        for shard in self.shards.iter() {
            shard
                .lock()
                .trust_integrity_enclave_for(backend, measurement, label);
        }
    }

    /// Override one backend's appraisal policy on every shard (policies
    /// default to the TCB policy the managers were configured with).
    pub fn set_backend_policy(&self, backend: BackendKind, policy: vnfguard_attest::AppraisalPolicy) {
        for shard in self.shards.iter() {
            shard.lock().set_backend_policy(backend, policy);
        }
    }

    /// Allow a host file's content in every shard's reference database.
    pub fn allow_reference_content(&self, path: &str, content: &[u8]) {
        for shard in self.shards.iter() {
            shard.lock().reference_db_mut().allow_content(path, content);
        }
    }

    // ---- Operator surface --------------------------------------------------

    pub fn hmac_tag(&self, message: &[u8]) -> [u8; 32] {
        self.authority().hmac_tag(message)
    }

    pub fn share_hmac_key(&self) -> [u8; 32] {
        self.authority().share_hmac_key()
    }

    /// Short identity fingerprint of the authority CA, for logs.
    pub fn fingerprint(&self) -> String {
        self.authority().fingerprint()
    }

    /// Credentials issued fleet-wide (per-shard allocators live in
    /// disjoint serial spans; counts simply add).
    pub fn issued_count(&self) -> u64 {
        self.shards.iter().map(|shard| shard.lock().issued_count()).sum()
    }

    /// The audit journal (shared telemetry; one journal for the fleet).
    pub fn events(&self) -> Vec<VmEvent> {
        self.authority().events()
    }

    /// Fleet lifecycle posture: per-shard active/expiring counts summed,
    /// CA/CRL/rotation posture from the authority.
    pub fn lifecycle_status(&self) -> LifecycleStatus {
        let mut status = self.authority().lifecycle_status();
        for shard in &self.shards[1..] {
            let shard_status = shard.lock().lifecycle_status();
            status.active += shard_status.active;
            status.expiring += shard_status.expiring;
        }
        status
    }

    /// [`lifecycle_status`](Self::lifecycle_status) behind the
    /// introspection admission class — the smallest queue, so status
    /// polling is the first traffic shed when the fleet is busy saving
    /// credentials. Serving-path callers use this; harness code that must
    /// never be refused keeps the ungated form.
    pub fn lifecycle_status_admitted(
        &self,
        trace: Option<&TraceContext>,
    ) -> Result<LifecycleStatus, CoreError> {
        let begun = std::time::Instant::now();
        let result = (|| {
            let permit = self.gate(Workclass::Introspection, trace)?;
            let mut status = {
                let authority = self.authority();
                self.pass_dequeue(&permit, trace)?;
                authority.lifecycle_status()
            };
            for shard in &self.shards[1..] {
                let shard_status = shard.lock().lifecycle_status();
                status.active += shard_status.active;
                status.expiring += shard_status.expiring;
            }
            Ok(status)
        })();
        self.note_health(Workclass::Introspection, begun, result.is_ok(), trace);
        result
    }

    /// Node-loss injection: halt every shard in place.
    pub fn halt(&self, reason: &str) {
        for shard in self.shards.iter() {
            shard.lock().halt(reason);
        }
    }

    /// The crash site that halted a shard, if any (authority first).
    pub fn crashed_site(&self) -> Option<String> {
        self.shards
            .iter()
            .find_map(|shard| shard.lock().crashed_site().map(str::to_string))
    }

    pub fn clock(&self) -> SimClock {
        self.authority().clock().clone()
    }

    pub fn telemetry(&self) -> Telemetry {
        self.authority().telemetry().clone()
    }

    /// Scope subsequent manager work on every shard to a trace context.
    /// Prefer the `*_traced` call forms for request-scoped tracing; this
    /// exists for single-threaded harnesses.
    pub fn set_trace_context(&self, ctx: Option<TraceContext>) {
        for shard in self.shards.iter() {
            shard.lock().set_trace_context(ctx.clone());
        }
    }

    /// The authority's last recovery report, if it was recovered.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.authority().recovery_report().cloned()
    }

    /// Authority-shard sealed-store occupancy.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.authority().store_stats()
    }

    /// Authority-shard replication posture.
    pub fn replication_status(&self) -> Option<ReplicationStatus> {
        self.authority().replication_status()
    }

    /// Emit a replication heartbeat from every shard's primary handle.
    pub fn replication_heartbeat(&self) {
        for shard in self.shards.iter() {
            shard.lock().replication_heartbeat();
        }
    }

    /// The full per-process health picture: admission posture per
    /// workclass, per-shard durability/replication/recovery state, and the
    /// evaluated SLO alerts. This is what `GET /vm/health` serves and what
    /// the fleet monitor scrapes. Locks one shard at a time, never across
    /// anything slow.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        let at = self.clock().now();
        let admission = match &self.admission {
            Some(admission) => Workclass::ALL
                .iter()
                .map(|&class| AdmissionHealth {
                    class: class.label(),
                    depth: admission.waiting(class),
                    bound: admission.bound(class),
                    shed: admission.shed_count(class),
                    deadline_exceeded: admission.deadline_count(class),
                })
                .collect(),
            None => Vec::new(),
        };
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let vm = shard.lock();
                let wal = vm.wal_append_latency();
                ShardHealth {
                    shard: index,
                    wal_records: vm.wal_record_count(),
                    wal_append_p50_micros: wal.quantile(0.50),
                    wal_append_p99_micros: wal.quantile(0.99),
                    wal_append_max_micros: wal.max,
                    recovery_generation: vm
                        .recovery_report()
                        .map_or(0, |report| report.generation),
                    crashed_site: vm.crashed_site().map(str::to_string),
                    replication: vm.replication_status(),
                }
            })
            .collect();
        let (alerts, latency) = match &self.health {
            Some(health) => {
                let mut latency: Vec<WorkclassLatency> = Workclass::ALL
                    .iter()
                    .map(|&class| WorkclassLatency {
                        class: class.label().to_string(),
                        histogram: health.latency[class.index()].snapshot(),
                    })
                    .collect();
                // Backend breakouts ride along as composite workclass
                // labels (`enrollment.sgx`), so the fleet monitor merges
                // them as distinct series and never double-counts them
                // into the unlabeled class totals. Empty breakouts are
                // omitted — a pure-SGX fleet's health document looks
                // exactly as it did before backends existed.
                for &class in Workclass::ALL.iter() {
                    for backend in BackendKind::ALL {
                        let snapshot =
                            health.backend_latency[class.index()][backend.as_u8() as usize]
                                .snapshot();
                        if snapshot.count > 0 {
                            latency.push(WorkclassLatency {
                                class: format!("{}.{}", class.label(), backend.label()),
                                histogram: snapshot,
                            });
                        }
                    }
                }
                (health.monitor.evaluate(at), latency)
            }
            None => (Vec::new(), Vec::new()),
        };
        HealthSnapshot {
            at,
            shard_count: self.shards.len(),
            admission,
            shards,
            latency,
            alerts,
        }
    }
}

/// One workclass's exact latency distribution inside a [`HealthSnapshot`]
/// — what the fleet monitor merges across nodes.
#[derive(Clone, Debug)]
pub struct WorkclassLatency {
    /// Workclass label — a plain class (`enrollment`), or a
    /// backend-scoped breakout (`enrollment.sgx`) for the
    /// evidence-carrying workflows.
    pub class: String,
    /// Exact log₂ distribution with trace exemplars.
    pub histogram: HistogramSnapshot,
}

/// One workclass's admission posture inside a [`HealthSnapshot`].
#[derive(Clone, Debug)]
pub struct AdmissionHealth {
    /// Workclass label (`enrollment`, `renewal`, ...).
    pub class: &'static str,
    /// Requests currently queued for a shard lock.
    pub depth: usize,
    /// The class's depth bound.
    pub bound: usize,
    /// Requests shed by the depth or sojourn gate so far.
    pub shed: u64,
    /// Requests abandoned because their deadline expired.
    pub deadline_exceeded: u64,
}

/// One shard's health inside a [`HealthSnapshot`].
#[derive(Clone, Debug)]
pub struct ShardHealth {
    /// Shard index (0 = authority).
    pub shard: usize,
    /// WAL records journaled by this incarnation.
    pub wal_records: u64,
    /// Median wall-clock WAL append latency (0 when volatile).
    pub wal_append_p50_micros: u64,
    /// p99 wall-clock WAL append latency.
    pub wal_append_p99_micros: u64,
    /// Worst observed WAL append latency.
    pub wal_append_max_micros: u64,
    /// Recovery generation (0 for a never-recovered incarnation).
    pub recovery_generation: u64,
    /// The crash site that halted this shard, if one fired.
    pub crashed_site: Option<String>,
    /// Replication role, lag, and heartbeat age; `None` when unreplicated.
    pub replication: Option<ReplicationStatus>,
}

/// The process-local health picture served by `GET /vm/health`.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Simulated time the snapshot was taken.
    pub at: u64,
    /// Shards in this service handle.
    pub shard_count: usize,
    /// Per-workclass admission posture (empty without admission control).
    pub admission: Vec<AdmissionHealth>,
    /// Per-shard durability and replication state, shard order.
    pub shards: Vec<ShardHealth>,
    /// Per-workclass latency distributions (empty without a monitor).
    pub latency: Vec<WorkclassLatency>,
    /// Evaluated SLO alerts (empty without a [`HealthMonitor`]).
    pub alerts: Vec<AlertSnapshot>,
}

impl std::fmt::Debug for VmService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VmService")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}
