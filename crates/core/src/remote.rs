//! The deployment's network services: remote IAS, host agents and the
//! Verification Manager's own API.
//!
//! The testbed drives the workflow with in-process calls; this module
//! provides the same protocol **across the fabric**, matching the paper's
//! architecture where the Verification Manager, the attestation service,
//! the container hosts and the controller are separate network entities:
//!
//! - [`serve_ias`] exposes an [`AttestationService`] as a REST endpoint
//!   (`POST /attestation/v4/report`, like Intel's), and [`RemoteIas`] is
//!   the client handle implementing [`QuoteVerifier`] — the manager code
//!   is identical either way;
//! - [`HostAgent`] runs on each container host and answers the VM's
//!   challenges (produce host evidence; relay VNF enclave attestation and
//!   provisioning);
//! - [`serve_vm_api`] exposes the manager's operator surface (trigger
//!   attestation/enrollment, revoke, fetch CA/CRL).
//!
//! Payload binary fields travel base64-encoded inside JSON bodies.

use crate::attestation::{host_evidence, HostEvidence};
use crate::manager::VerificationManager;
use crate::resilience::{AttemptRecord, BreakerState, CircuitBreaker, RetryPolicy};
use crate::CoreError;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;
use vnfguard_container::host::ContainerHost;
use vnfguard_controller::SimClock;
use vnfguard_crypto::hmac::hmac_sha256;
use vnfguard_encoding::{base64, Json};
use vnfguard_ias::{AttestationReport, AttestationService, Availability, QuoteVerifier};
use vnfguard_ima::list::IMA_PCR;
use vnfguard_ima::tpm::SimTpm;
use vnfguard_net::fabric::Network;
use vnfguard_net::http::{Request, Response, Status};
use vnfguard_net::rest::Router;
use vnfguard_net::server::{serve, PlainUpgrade, ServerHandle};
use vnfguard_sgx::enclave::Enclave;
use vnfguard_sgx::platform::SgxPlatform;
use vnfguard_vnf::VnfGuard;

fn b64_field(doc: &Json, field: &str) -> Result<Vec<u8>, String> {
    let text = doc
        .get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing field {field:?}"))?;
    base64::decode(text).map_err(|e| format!("bad base64 in {field:?}: {e}"))
}

fn b64_array32(doc: &Json, field: &str) -> Result<[u8; 32], String> {
    let bytes = b64_field(doc, field)?;
    bytes
        .try_into()
        .map_err(|_| format!("{field:?} must be 32 bytes"))
}

// ---------------------------------------------------------------------------
// Remote IAS
// ---------------------------------------------------------------------------

/// Serve an attestation service on the fabric.
///
/// Endpoint: `POST /attestation/v4/report` with
/// `{"isvEnclaveQuote": base64, "nonce": base64}` → `{"report": base64}`.
pub fn serve_ias(
    network: &Network,
    address: &str,
    service: AttestationService,
) -> Result<(ServerHandle, Arc<Mutex<AttestationService>>), CoreError> {
    let service = Arc::new(Mutex::new(service));
    let mut router = Router::new();
    {
        let service = service.clone();
        router.post("/attestation/v4/report", move |request, _| {
            let Ok(body) = request.json() else {
                return Response::error(Status::BadRequest, "invalid JSON");
            };
            let quote = match b64_field(&body, "isvEnclaveQuote") {
                Ok(q) => q,
                Err(msg) => return Response::error(Status::BadRequest, &msg),
            };
            let nonce = match b64_field(&body, "nonce") {
                Ok(n) => n,
                Err(msg) => return Response::error(Status::BadRequest, &msg),
            };
            let report = service.lock().verify_quote(&quote, &nonce);
            Response::json(
                Status::Ok,
                &Json::object().with("report", base64::encode(&report.encode())),
            )
        });
    }
    {
        let service = service.clone();
        router.get("/attestation/v4/sigrl/:gid", move |_, params| {
            let gid = params
                .get("gid")
                .and_then(|g| u32::from_str_radix(g, 16).ok())
                .unwrap_or(0);
            Response::json(
                Status::Ok,
                &Json::object().with("sigrl_size", service.lock().sigrl_len(gid) as i64),
            )
        });
    }
    let listener = network
        .listen(address)
        .map_err(|e| CoreError::WorkflowViolation(e.to_string()))?;
    Ok((serve(listener, PlainUpgrade, router), service))
}

/// Read deadline for one IAS request attempt.
const IAS_READ_TIMEOUT: Duration = Duration::from_millis(750);

/// Read deadline for one host-agent request.
const AGENT_READ_TIMEOUT: Duration = Duration::from_millis(750);

/// Client handle to a remote attestation service; implements
/// [`QuoteVerifier`] so the Verification Manager uses it transparently.
///
/// Every `POST /attestation/v4/report` runs under a [`RetryPolicy`] behind
/// a [`CircuitBreaker`]: transient refusals/timeouts are retried with
/// jittered backoff, and once the service has failed `failure_threshold`
/// consecutive operations the breaker opens and the handle reports
/// [`Availability::Unavailable`] until a half-open probe succeeds.
pub struct RemoteIas {
    network: Network,
    address: String,
    report_key: vnfguard_crypto::ed25519::VerifyingKey,
    clock: SimClock,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
    last_attempts: Vec<AttemptRecord>,
}

impl RemoteIas {
    /// Connect parameters plus the out-of-band-distributed report signing
    /// key (Intel publishes this as a certificate). Uses a default retry
    /// policy and breaker against a private clock; deployments that want
    /// the breaker's cooldown tied to simulation time should follow up
    /// with [`with_resilience`](Self::with_resilience).
    pub fn new(
        network: &Network,
        address: &str,
        report_key: vnfguard_crypto::ed25519::VerifyingKey,
    ) -> RemoteIas {
        RemoteIas {
            network: network.clone(),
            address: address.to_string(),
            report_key,
            clock: SimClock::at(0),
            retry: RetryPolicy::default(),
            breaker: CircuitBreaker::new(3, 60),
            last_attempts: Vec::new(),
        }
    }

    /// Share the deployment clock and choose the retry/breaker parameters.
    pub fn with_resilience(
        mut self,
        clock: SimClock,
        retry: RetryPolicy,
        breaker: CircuitBreaker,
    ) -> RemoteIas {
        self.clock = clock;
        self.retry = retry;
        self.breaker = breaker;
        self
    }

    /// Current breaker state at the handle's clock.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state(self.clock.now())
    }

    /// Attempt log of the most recent retried operation.
    pub fn last_attempts(&self) -> &[AttemptRecord] {
        &self.last_attempts
    }

    fn post_report(
        network: &Network,
        address: &str,
        quote_bytes: &[u8],
        nonce: &[u8],
    ) -> Result<AttestationReport, String> {
        let mut stream = network
            .connect_from("vm", address)
            .map_err(|e| e.to_string())?;
        stream.set_read_timeout(Some(IAS_READ_TIMEOUT));
        let mut client = vnfguard_net::server::HttpClient::new(stream);
        let request = Request::post("/attestation/v4/report").with_json(
            &Json::object()
                .with("isvEnclaveQuote", base64::encode(quote_bytes))
                .with("nonce", base64::encode(nonce)),
        );
        let response = client.request(&request).map_err(|e| e.to_string())?;
        let doc = response.parse_json().map_err(|e| e.to_string())?;
        let bytes = b64_field(&doc, "report")?;
        AttestationReport::decode(&bytes).map_err(|e| e.to_string())
    }

    /// An unverifiable self-signed report: the caller's signature check
    /// against the real report key fails closed.
    fn unverifiable_report(nonce: &[u8], advisory: &str) -> AttestationReport {
        let key = vnfguard_crypto::ed25519::SigningKey::from_seed(&[0; 32]);
        AttestationReport::create(
            0,
            0,
            vnfguard_ias::QuoteStatus::SignatureInvalid,
            nonce,
            None,
            vec![advisory.into()],
            &key,
        )
    }
}

impl QuoteVerifier for RemoteIas {
    fn verify_quote(&mut self, quote_bytes: &[u8], nonce: &[u8]) -> AttestationReport {
        if !self.breaker.allows(self.clock.now()) {
            // Open circuit: fail fast without touching the network. The
            // report is unverifiable, so callers that ignore availability
            // still fail closed.
            return Self::unverifiable_report(nonce, "IAS_CIRCUIT_OPEN");
        }
        let network = self.network.clone();
        let address = self.address.clone();
        let outcome = self.retry.run(&self.clock, |_| {
            Self::post_report(&network, &address, quote_bytes, nonce)
        });
        self.last_attempts = outcome.attempts;
        match outcome.result {
            Ok(report) => {
                self.breaker.record_success(self.clock.now());
                report
            }
            Err(_) => {
                // One retried operation is one breaker sample.
                self.breaker.record_failure(self.clock.now());
                Self::unverifiable_report(nonce, "IAS_UNREACHABLE")
            }
        }
    }

    fn report_signing_key(&self) -> vnfguard_crypto::ed25519::VerifyingKey {
        self.report_key
    }

    fn availability(&self) -> Availability {
        if self.breaker.allows(self.clock.now()) {
            Availability::Available
        } else {
            Availability::Unavailable
        }
    }
}

// ---------------------------------------------------------------------------
// Host agent
// ---------------------------------------------------------------------------

/// Shared state of a container host served by its agent.
pub struct HostAgentState {
    pub host_id: String,
    pub platform: SgxPlatform,
    pub container_host: RwLock<ContainerHost>,
    pub integrity_enclave: Enclave,
    pub tpm: Option<Mutex<SimTpm>>,
    pub guards: RwLock<HashMap<String, Arc<VnfGuard>>>,
    /// Serials revoked by VM notification (evicted ahead of the next CRL).
    pub revoked_serials: RwLock<BTreeSet<u64>>,
    /// The VM's HMAC key for authenticating revocation notices; `None`
    /// accepts unauthenticated notices (testbed convenience).
    pub vm_hmac_key: Option<[u8; 32]>,
}

/// The per-host agent: answers the Verification Manager's attestation and
/// provisioning requests over the fabric.
pub struct HostAgent {
    pub state: Arc<HostAgentState>,
    handle: ServerHandle,
    pub address: String,
}

impl HostAgent {
    /// Serve the agent for a host at `agent:{host_id}`.
    pub fn serve(network: &Network, state: Arc<HostAgentState>) -> Result<HostAgent, CoreError> {
        let address = format!("agent:{}", state.host_id);
        let mut router = Router::new();

        // POST /agent/attest {nonce: b64} → {evidence: b64}
        {
            let state = state.clone();
            router.post("/agent/attest", move |request, _| {
                let Ok(body) = request.json() else {
                    return Response::error(Status::BadRequest, "invalid JSON");
                };
                let nonce = match b64_array32(&body, "nonce") {
                    Ok(n) => n,
                    Err(msg) => return Response::error(Status::BadRequest, &msg),
                };
                let tpm_quote = state.tpm.as_ref().map(|tpm| {
                    tpm.lock().quote(IMA_PCR, nonce).encode()
                });
                let iml = state.container_host.read().measurement_list().encode();
                match host_evidence(
                    &state.platform,
                    &state.integrity_enclave,
                    &iml,
                    &nonce,
                    tpm_quote,
                ) {
                    Ok(evidence) => Response::json(
                        Status::Ok,
                        &Json::object().with("evidence", base64::encode(&evidence.encode())),
                    ),
                    Err(e) => Response::error(Status::ServerError, &e.to_string()),
                }
            });
        }

        // POST /agent/vnf/:name/attest {nonce: b64, basename: b64}
        //   → {quote: b64, provisioning_key: b64}
        {
            let state = state.clone();
            router.post("/agent/vnf/:name/attest", move |request, params| {
                let name = params.get("name").unwrap_or("");
                let guards = state.guards.read();
                let Some(guard) = guards.get(name) else {
                    return Response::error(Status::NotFound, &format!("no VNF {name:?}"));
                };
                let Ok(body) = request.json() else {
                    return Response::error(Status::BadRequest, "invalid JSON");
                };
                let (nonce, basename) = match (
                    b64_array32(&body, "nonce"),
                    b64_array32(&body, "basename"),
                ) {
                    (Ok(n), Ok(b)) => (n, b),
                    (Err(msg), _) | (_, Err(msg)) => {
                        return Response::error(Status::BadRequest, &msg)
                    }
                };
                let provisioning_key = match guard.provisioning_key() {
                    Ok(key) => key,
                    Err(e) => return Response::error(Status::ServerError, &e.to_string()),
                };
                match guard.quote(&state.platform, &nonce, basename) {
                    Ok(quote) => Response::json(
                        Status::Ok,
                        &Json::object()
                            .with("quote", base64::encode(&quote.encode()))
                            .with("provisioning_key", base64::encode(&provisioning_key)),
                    ),
                    Err(e) => Response::error(Status::ServerError, &e.to_string()),
                }
            });
        }

        // POST /agent/vnf/:name/provision {wrapped: b64} → {}
        {
            let state = state.clone();
            router.post("/agent/vnf/:name/provision", move |request, params| {
                let name = params.get("name").unwrap_or("");
                let guards = state.guards.read();
                let Some(guard) = guards.get(name) else {
                    return Response::error(Status::NotFound, &format!("no VNF {name:?}"));
                };
                let Ok(body) = request.json() else {
                    return Response::error(Status::BadRequest, "invalid JSON");
                };
                let wrapped = match b64_field(&body, "wrapped") {
                    Ok(w) => w,
                    Err(msg) => return Response::error(Status::BadRequest, &msg),
                };
                match guard.provision(&wrapped) {
                    Ok(()) => Response::json(Status::Ok, &Json::object().with("ok", true)),
                    Err(e) => Response::error(Status::ServerError, &e.to_string()),
                }
            });
        }

        // POST /agent/revocations {serial, tag: b64} → {} — a VM-pushed
        // revocation notice, authenticated with the VM's HMAC key.
        {
            let state = state.clone();
            router.post("/agent/revocations", move |request, _| {
                let Ok(body) = request.json() else {
                    return Response::error(Status::BadRequest, "invalid JSON");
                };
                let Some(serial) = body.get("serial").and_then(Json::as_i64) else {
                    return Response::error(Status::BadRequest, "missing 'serial'");
                };
                let serial = serial as u64;
                if let Some(key) = &state.vm_hmac_key {
                    let tag = match b64_array32(&body, "tag") {
                        Ok(t) => t,
                        Err(msg) => return Response::error(Status::BadRequest, &msg),
                    };
                    let message = crate::revocation::revocation_message(&state.host_id, serial);
                    if hmac_sha256(key, &message) != tag {
                        return Response::error(Status::Forbidden, "bad revocation tag");
                    }
                }
                state.revoked_serials.write().insert(serial);
                Response::json(Status::Ok, &Json::object().with("revoked", true))
            });
        }

        // GET /agent/vnfs → list of deployed guard names.
        {
            let state = state.clone();
            router.get("/agent/vnfs", move |_, _| {
                let guards = state.guards.read();
                let names: Json = guards.keys().map(|k| Json::from(k.as_str())).collect();
                Response::json(Status::Ok, &names)
            });
        }

        let listener = network
            .listen(&address)
            .map_err(|e| CoreError::WorkflowViolation(e.to_string()))?;
        let handle = serve(listener, PlainUpgrade, router);
        Ok(HostAgent {
            state,
            handle,
            address,
        })
    }

    pub fn requests_served(&self) -> u64 {
        self.handle.requests()
    }
}

// ---------------------------------------------------------------------------
// Remote orchestration (the VM driving agents over the fabric)
// ---------------------------------------------------------------------------

fn connect_agent(
    network: &Network,
    host_id: &str,
) -> Result<vnfguard_net::server::HttpClient<vnfguard_net::stream::Duplex>, CoreError> {
    let mut stream = network
        .connect_from("vm", &format!("agent:{host_id}"))
        .map_err(|e| CoreError::HostUnreachable(format!("agent:{host_id}: {e}")))?;
    stream.set_read_timeout(Some(AGENT_READ_TIMEOUT));
    Ok(vnfguard_net::server::HttpClient::new(stream))
}

/// Drive the full host attestation (steps 1–2) against a remote agent.
///
/// When the attestation service reports itself [`Availability::Unavailable`]
/// (circuit open), no fresh appraisal is possible; the call falls back to
/// [`VerificationManager::degraded_host_verdict`] — policy-gated reuse of
/// the cached verdict, audit-logged as `DegradedVerdict`.
pub fn remote_attest_host(
    vm: &mut VerificationManager,
    ias: &mut dyn QuoteVerifier,
    network: &Network,
    host_id: &str,
    now: u64,
) -> Result<vnfguard_ima::appraisal::Verdict, CoreError> {
    if ias.availability() == Availability::Unavailable {
        return vm.degraded_host_verdict(host_id, now);
    }
    let challenge = vm.begin_host_attestation(host_id, now);
    let mut client = connect_agent(network, host_id)?;
    let response = client
        .request(&Request::post("/agent/attest").with_json(
            &Json::object().with("nonce", base64::encode(&challenge.nonce)),
        ))
        .map_err(|e| CoreError::HostUnreachable(format!("agent:{host_id}: {e}")))?;
    if !response.status.is_success() {
        return Err(CoreError::AttestationFailed(format!(
            "agent returned {}",
            response.status.code()
        )));
    }
    let body = response
        .parse_json()
        .map_err(|e| CoreError::Encoding(e.to_string()))?;
    let evidence_bytes =
        b64_field(&body, "evidence").map_err(CoreError::Encoding)?;
    let evidence = HostEvidence::decode(&evidence_bytes)?;
    vm.complete_host_attestation(ias, challenge.id, &evidence, now)
}

/// Drive VNF enrollment (steps 3–5) against a remote agent.
///
/// Credential issuance has no degraded mode: when the attestation service
/// is unavailable the call fails fast and closed with
/// [`CoreError::ServiceUnavailable`]. Delivery uses the two-phase
/// prepare → commit protocol: if the wrapped bundle cannot be confirmed
/// delivered, the issued certificate is revoked and the enrollment rolled
/// back, so no half-provisioned state survives a mid-transfer fault.
pub fn remote_enroll_vnf(
    vm: &mut VerificationManager,
    ias: &mut dyn QuoteVerifier,
    network: &Network,
    host_id: &str,
    vnf_name: &str,
    controller_cn: &str,
    now: u64,
) -> Result<vnfguard_pki::Certificate, CoreError> {
    if ias.availability() == Availability::Unavailable {
        return Err(CoreError::ServiceUnavailable(format!(
            "attestation service unavailable; refusing to enroll {vnf_name}"
        )));
    }
    let challenge = vm.begin_vnf_attestation(host_id, vnf_name, now)?;
    let mut client = connect_agent(network, host_id)?;

    // Step 3: challenge the enclave through the agent.
    let response = client
        .request(
            &Request::post(&format!("/agent/vnf/{vnf_name}/attest")).with_json(
                &Json::object()
                    .with("nonce", base64::encode(&challenge.nonce))
                    .with("basename", base64::encode(&challenge.nonce)),
            ),
        )
        .map_err(|e| CoreError::HostUnreachable(format!("agent:{host_id}: {e}")))?;
    if !response.status.is_success() {
        return Err(CoreError::AttestationFailed(format!(
            "agent returned {}",
            response.status.code()
        )));
    }
    let body = response
        .parse_json()
        .map_err(|e| CoreError::Encoding(e.to_string()))?;
    let quote = b64_field(&body, "quote").map_err(CoreError::Encoding)?;
    let provisioning_key =
        b64_array32(&body, "provisioning_key").map_err(CoreError::Encoding)?;

    // Steps 4-5: verify + generate + wrap (prepare), deliver through the
    // agent, and only then commit the enrollment.
    let (serial, wrapped, certificate) = vm.prepare_vnf_enrollment(
        ias,
        challenge.id,
        &quote,
        &provisioning_key,
        controller_cn,
        now,
    )?;
    let delivery = client
        .request(
            &Request::post(&format!("/agent/vnf/{vnf_name}/provision"))
                .with_json(&Json::object().with("wrapped", base64::encode(&wrapped))),
        )
        .map_err(|e| e.to_string())
        .and_then(|response| {
            if response.status.is_success() {
                Ok(())
            } else {
                Err(format!("agent returned {}", response.status.code()))
            }
        });
    match delivery {
        Ok(()) => {
            vm.commit_vnf_enrollment(serial, now)?;
            Ok(certificate)
        }
        Err(reason) => {
            vm.abort_vnf_enrollment(serial, &reason, now)?;
            Err(CoreError::ProvisioningRolledBack(format!(
                "{vnf_name} serial {serial}: {reason}"
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// The VM's operator API
// ---------------------------------------------------------------------------

/// Serve the Verification Manager's operator API on the fabric.
///
/// Endpoints:
/// - `POST /vm/hosts/:id/attest` → `{verdict}`
/// - `POST /vm/hosts/:id/vnfs/:name/enroll` → `{serial, subject}`
/// - `POST /vm/revoke` `{serial, reason}` → `{}`
/// - `GET  /vm/ca` → `{certificate: b64}`
/// - `GET  /vm/crl` → `{crl: b64}`
/// - `GET  /vm/status` → summary counts
pub fn serve_vm_api(
    network: &Network,
    address: &str,
    vm: Arc<Mutex<VerificationManager>>,
    ias: Arc<Mutex<dyn QuoteVerifier + Send>>,
    clock: SimClock,
    controller_cn: &str,
) -> Result<ServerHandle, CoreError> {
    let mut router = Router::new();
    let controller_cn = controller_cn.to_string();

    {
        let vm = vm.clone();
        let ias = ias.clone();
        let clock = clock.clone();
        let network = network.clone();
        router.post("/vm/hosts/:id/attest", move |_, params| {
            let host_id = params.get("id").unwrap_or("");
            let mut vm = vm.lock();
            let mut ias = ias.lock();
            match remote_attest_host(&mut vm, &mut *ias, &network, host_id, clock.now()) {
                Ok(verdict) => Response::json(
                    Status::Ok,
                    &Json::object().with("verdict", format!("{verdict:?}")),
                ),
                Err(e) => Response::error(Status::Forbidden, &e.to_string()),
            }
        });
    }
    {
        let vm = vm.clone();
        let ias = ias.clone();
        let clock = clock.clone();
        let network = network.clone();
        let controller_cn = controller_cn.clone();
        router.post("/vm/hosts/:id/vnfs/:name/enroll", move |_, params| {
            let host_id = params.get("id").unwrap_or("");
            let vnf_name = params.get("name").unwrap_or("");
            let mut vm = vm.lock();
            let mut ias = ias.lock();
            match remote_enroll_vnf(
                &mut vm,
                &mut *ias,
                &network,
                host_id,
                vnf_name,
                &controller_cn,
                clock.now(),
            ) {
                Ok(cert) => Response::json(
                    Status::Ok,
                    &Json::object()
                        .with("serial", cert.serial() as i64)
                        .with("subject", cert.subject_cn()),
                ),
                Err(e) => Response::error(Status::Forbidden, &e.to_string()),
            }
        });
    }
    {
        let vm = vm.clone();
        let clock = clock.clone();
        router.post("/vm/revoke", move |request, _| {
            let Ok(body) = request.json() else {
                return Response::error(Status::BadRequest, "invalid JSON");
            };
            let Some(serial) = body.get("serial").and_then(Json::as_i64) else {
                return Response::error(Status::BadRequest, "missing 'serial'");
            };
            let mut vm = vm.lock();
            match vm.revoke_credential(
                serial as u64,
                vnfguard_pki::crl::RevocationReason::KeyCompromise,
                clock.now(),
            ) {
                Ok(()) => Response::json(Status::Ok, &Json::object().with("revoked", true)),
                Err(e) => Response::error(Status::NotFound, &e.to_string()),
            }
        });
    }
    {
        let vm = vm.clone();
        router.get("/vm/ca", move |_, _| {
            let vm = vm.lock();
            Response::json(
                Status::Ok,
                &Json::object()
                    .with("certificate", base64::encode(&vm.ca_certificate().encode())),
            )
        });
    }
    {
        let vm = vm.clone();
        let clock = clock.clone();
        router.get("/vm/crl", move |_, _| {
            let vm = vm.lock();
            Response::json(
                Status::Ok,
                &Json::object()
                    .with("crl", base64::encode(&vm.current_crl(clock.now(), 3600).encode())),
            )
        });
    }
    {
        let vm = vm.clone();
        router.get("/vm/status", move |_, _| {
            let vm = vm.lock();
            Response::json(
                Status::Ok,
                &Json::object()
                    .with("issued", vm.issued_count() as i64)
                    .with("enrollments", vm.enrollments().count() as i64)
                    .with("events", vm.events().len() as i64),
            )
        });
    }

    let listener = network
        .listen(address)
        .map_err(|e| CoreError::WorkflowViolation(e.to_string()))?;
    Ok(serve(listener, PlainUpgrade, router))
}
