//! The deployment's network services: remote IAS, host agents and the
//! Verification Manager's own API.
//!
//! The testbed drives the workflow with in-process calls; this module
//! provides the same protocol **across the fabric**, matching the paper's
//! architecture where the Verification Manager, the attestation service,
//! the container hosts and the controller are separate network entities:
//!
//! - [`serve_ias`] exposes an [`AttestationService`] as a REST endpoint
//!   (`POST /attestation/v4/report`, like Intel's), and [`RemoteIas`] is
//!   the client handle implementing [`QuoteVerifier`] — the manager code
//!   is identical either way;
//! - [`HostAgent`] runs on each container host and answers the VM's
//!   challenges (produce host evidence; relay VNF enclave attestation and
//!   provisioning);
//! - [`serve_vm_api`] exposes the manager's operator surface (trigger
//!   attestation/enrollment, revoke, fetch CA/CRL, scrape metrics, tail
//!   the audit journal).
//!
//! Handlers use the [`ApiResult`] convention: they return
//! `Result<Response, ApiError>` and the router maps every error through a
//! single `ApiError → Response` conversion, so status-code policy lives in
//! one place per route instead of being re-spelled at each early return.
//!
//! Payload binary fields travel base64-encoded inside JSON bodies.

use crate::attestation::{host_evidence, HostEvidence};
use crate::backend::MultiBackend;
use crate::overload::{check_deadline, Deadline, DeadlineScope};
use crate::resilience::{AttemptRecord, BreakerState, CircuitBreaker, RetryBudget, RetryPolicy};
use crate::service::{HealthSnapshot, VmService};
use crate::CoreError;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;
use vnfguard_attest::snp::SnpPlatform;
use vnfguard_attest::{AttestationBackend, Availability, BackendKind};
use vnfguard_container::host::ContainerHost;
use vnfguard_controller::SimClock;
use vnfguard_crypto::hmac::hmac_sha256;
use vnfguard_encoding::{base64, Json};
// backend-opt-out: this module hosts the IAS transport itself (serve_ias,
// RemoteIas) and the SGX host agent; they legitimately speak IAS/SGX types.
use vnfguard_ias::{AttestationReport, AttestationService, QuoteVerifier};
use vnfguard_ima::list::IMA_PCR;
use vnfguard_ima::tpm::SimTpm;
use vnfguard_net::fabric::Network;
use vnfguard_net::http::{Request, Response, Status};
use vnfguard_net::rest::{ApiError, ApiResult, Router};
use vnfguard_net::server::{serve, PlainUpgrade, ServerHandle};
// backend-opt-out: agent-side SGX platform plumbing (the host side of the
// paper's Figure 1), not verifier-side appraisal.
use vnfguard_sgx::enclave::Enclave;
use vnfguard_sgx::platform::SgxPlatform;
use vnfguard_telemetry::{Counter, Histogram, Telemetry, TraceContext, TraceSpan};
use vnfguard_vnf::VnfGuard;

// The SGX-era IAS-handle entry points now live in the backend adapter
// module; re-exported here so `vnfguard_core::remote::remote_attest_host`
// and friends keep resolving for existing harnesses.
pub use crate::backend::{
    remote_attest_host, remote_attest_host_traced, remote_enroll_vnf, remote_enroll_vnf_traced,
};

fn b64_field(doc: &Json, field: &str) -> Result<Vec<u8>, String> {
    let text = doc
        .get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing field {field:?}"))?;
    base64::decode(text).map_err(|e| format!("bad base64 in {field:?}: {e}"))
}

fn b64_array32(doc: &Json, field: &str) -> Result<[u8; 32], String> {
    let bytes = b64_field(doc, field)?;
    bytes
        .try_into()
        .map_err(|_| format!("{field:?} must be 32 bytes"))
}

/// Parse the JSON body of an API request, mapping malformed input to 400.
fn api_json(request: &Request) -> ApiResult<Json> {
    request
        .json()
        .map_err(|_| ApiError::bad_request("invalid JSON"))
}

/// Render one span (and, recursively, its children) as a JSON node for the
/// `GET /vm/traces/{id}` tree view.
fn span_node(span: &TraceSpan, children: &HashMap<u64, Vec<&TraceSpan>>) -> Json {
    let annotations: Json = span
        .annotations
        .iter()
        .map(|annotation| {
            Json::object()
                .with("time", annotation.time as i64)
                .with("kind", annotation.kind.as_str())
                .with("detail", annotation.detail.as_str())
        })
        .collect();
    let kids: Json = children
        .get(&span.span_id)
        .map(|kids| kids.iter().map(|kid| span_node(kid, children)).collect())
        .unwrap_or_else(|| std::iter::empty::<Json>().collect());
    Json::object()
        .with("span_id", format!("{:016x}", span.span_id))
        .with("service", span.service.as_str())
        .with("name", span.name.as_str())
        .with("started_at", span.started_at as i64)
        .with("offset_micros", span.offset_micros as i64)
        .with("duration_micros", span.duration_micros as i64)
        .with("annotations", annotations)
        .with("children", kids)
}

/// Serialize a [`ReplicationStatus`](crate::replication::ReplicationStatus)
/// — shared by `GET /vm/replication` and the per-shard health snapshot.
fn replication_json(status: &crate::replication::ReplicationStatus) -> Json {
    let standbys: Json = status
        .standbys
        .iter()
        .map(|s| {
            let mut entry = Json::object()
                .with("addr", s.addr.as_str())
                .with("acked_seq", s.acked_seq as i64)
                .with("lag_records", s.lag_records as i64)
                .with("snapshots_sent", s.snapshots_sent as i64);
            if let Some(secs) = s.lag_seconds {
                entry = entry.with("lag_seconds", secs as i64);
            }
            entry
        })
        .collect();
    let mut body = Json::object()
        .with("role", status.role)
        .with("epoch", status.epoch as i64)
        .with("head_seq", status.head_seq as i64)
        .with("fenced", status.fenced)
        .with("standbys", standbys);
    if let Some(age) = status.heartbeat_age_seconds {
        body = body.with("heartbeat_age_seconds", age as i64);
    }
    body
}

fn histogram_json(snapshot: &vnfguard_telemetry::HistogramSnapshot) -> Json {
    let buckets: Json = snapshot.buckets.iter().map(|&b| Json::from(b as i64)).collect();
    let exemplars: Json = snapshot
        .exemplars
        .iter()
        .map(|e| {
            Json::object()
                .with("value", e.value as i64)
                .with("trace_id", format!("{:032x}", e.trace_id))
                .with("bucket", e.bucket as i64)
        })
        .collect();
    Json::object()
        .with("buckets", buckets)
        .with("count", snapshot.count as i64)
        .with("sum", snapshot.sum as i64)
        .with("max", snapshot.max as i64)
        .with("exemplars", exemplars)
}

/// Serialize a [`HealthSnapshot`] for `GET /vm/health` — the same wire
/// shape the fleet monitor parses back for cross-node aggregation.
pub(crate) fn health_json(snapshot: &HealthSnapshot) -> Json {
    let admission: Json = snapshot
        .admission
        .iter()
        .map(|a| {
            Json::object()
                .with("class", a.class)
                .with("depth", a.depth as i64)
                .with("bound", a.bound as i64)
                .with("shed", a.shed as i64)
                .with("deadline_exceeded", a.deadline_exceeded as i64)
        })
        .collect();
    let shards: Json = snapshot
        .shards
        .iter()
        .map(|s| {
            let mut entry = Json::object()
                .with("shard", s.shard as i64)
                .with("wal_records", s.wal_records as i64)
                .with("wal_append_p50_micros", s.wal_append_p50_micros as i64)
                .with("wal_append_p99_micros", s.wal_append_p99_micros as i64)
                .with("wal_append_max_micros", s.wal_append_max_micros as i64)
                .with("recovery_generation", s.recovery_generation as i64);
            if let Some(site) = &s.crashed_site {
                entry = entry.with("crashed_site", site.as_str());
            }
            if let Some(replication) = &s.replication {
                entry = entry.with("replication", replication_json(replication));
            }
            entry
        })
        .collect();
    let latency: Json = snapshot
        .latency
        .iter()
        .map(|l| {
            Json::object()
                .with("class", l.class.as_str())
                .with("histogram", histogram_json(&l.histogram))
        })
        .collect();
    let alerts: Json = snapshot
        .alerts
        .iter()
        .map(|a| {
            let exemplars: Json = a
                .exemplar_trace_ids
                .iter()
                .map(|id| Json::from(format!("{id:032x}")))
                .collect();
            let mut entry = Json::object()
                .with("slo", a.slo.as_str())
                .with("workclass", a.workclass.as_str())
                .with("state", a.state.as_str())
                .with("state_code", a.state.code())
                .with("fast_burn_milli", (a.fast_burn * 1000.0).round() as i64)
                .with("slow_burn_milli", (a.slow_burn * 1000.0).round() as i64)
                .with("since", a.since as i64)
                .with("fast_good", a.fast_good as i64)
                .with("fast_bad", a.fast_bad as i64)
                .with("exemplar_trace_ids", exemplars);
            if let Some(at) = a.resolved_at {
                entry = entry.with("resolved_at", at as i64);
            }
            entry
        })
        .collect();
    Json::object()
        .with("at", snapshot.at as i64)
        .with("shard_count", snapshot.shard_count as i64)
        .with("admission", admission)
        .with("shards", shards)
        .with("latency", latency)
        .with("alerts", alerts)
}

/// Assemble a trace's spans into the nested-tree JSON body served by
/// `GET /vm/traces/{id}`. Spans whose parent fell out of the ring buffer
/// surface as additional roots rather than disappearing.
fn trace_tree_json(trace_id_hex: &str, spans: &[TraceSpan]) -> Json {
    let ids: BTreeSet<u64> = spans.iter().map(|span| span.span_id).collect();
    let mut children: HashMap<u64, Vec<&TraceSpan>> = HashMap::new();
    let mut roots: Vec<&TraceSpan> = Vec::new();
    for span in spans {
        match span.parent_id {
            Some(parent) if ids.contains(&parent) => {
                children.entry(parent).or_default().push(span)
            }
            _ => roots.push(span),
        }
    }
    let tree: Json = roots.iter().map(|root| span_node(root, &children)).collect();
    Json::object()
        .with("trace_id", trace_id_hex)
        .with("span_count", spans.len() as i64)
        .with("roots", tree)
}

// ---------------------------------------------------------------------------
// Remote IAS
// ---------------------------------------------------------------------------

/// Serve an attestation service on the fabric.
///
/// Endpoint: `POST /attestation/v4/report` with
/// `{"isvEnclaveQuote": base64, "nonce": base64}` → `{"report": base64}`.
pub fn serve_ias(
    network: &Network,
    address: &str,
    service: AttestationService,
) -> Result<(ServerHandle, Arc<Mutex<AttestationService>>), CoreError> {
    let service = Arc::new(Mutex::new(service));
    let mut router = Router::new();
    {
        let service = service.clone();
        router.post_api("/attestation/v4/report", move |request, _| {
            let body = api_json(request)?;
            let quote = b64_field(&body, "isvEnclaveQuote").map_err(ApiError::bad_request)?;
            let nonce = b64_field(&body, "nonce").map_err(ApiError::bad_request)?;
            let report = service.lock().verify_quote(&quote, &nonce);
            Ok(Response::json(
                Status::Ok,
                &Json::object().with("report", base64::encode(&report.encode())),
            ))
        });
    }
    {
        let service = service.clone();
        router.get_api("/attestation/v4/sigrl/:gid", move |_, params| {
            let gid = params
                .get("gid")
                .and_then(|g| u32::from_str_radix(g, 16).ok())
                .unwrap_or(0);
            Ok(Response::json(
                Status::Ok,
                &Json::object().with("sigrl_size", service.lock().sigrl_len(gid) as i64),
            ))
        });
    }
    // Server-side trace spans for requests that carry a `traceparent`
    // header, attributed to the `ias` service and timestamped from the
    // service's own clock.
    if let Some(telemetry) = service.lock().telemetry().cloned() {
        let service = service.clone();
        router.instrument_traces(&telemetry, "ias", move || service.lock().now());
    }
    let listener = network
        .listen(address)
        .map_err(|e| CoreError::WorkflowViolation(e.to_string()))?;
    Ok((serve(listener, PlainUpgrade, router), service))
}

/// Read deadline for one IAS request attempt.
const IAS_READ_TIMEOUT: Duration = Duration::from_millis(750);

/// Read deadline for one host-agent request.
const AGENT_READ_TIMEOUT: Duration = Duration::from_millis(750);

/// Client handle to a remote attestation service; implements
/// [`QuoteVerifier`] so the Verification Manager uses it transparently.
///
/// Every `POST /attestation/v4/report` runs under a [`RetryPolicy`] behind
/// a [`CircuitBreaker`]: transient refusals/timeouts are retried with
/// jittered backoff, and once the service has failed `failure_threshold`
/// consecutive operations the breaker opens and the handle reports
/// [`Availability::Unavailable`] until a half-open probe succeeds.
///
/// With [`with_telemetry`](Self::with_telemetry), each retried operation
/// records its wall-clock round-trip into
/// `vnfguard_core_ias_roundtrip_micros`, retries and exhausted operations
/// bump `vnfguard_core_ias_retries_total` /
/// `vnfguard_core_ias_failures_total`, and every breaker transition is
/// counted and journaled.
pub struct RemoteIas {
    network: Network,
    address: String,
    report_key: vnfguard_crypto::ed25519::VerifyingKey,
    clock: SimClock,
    retry: RetryPolicy,
    retry_budget: Option<Arc<RetryBudget>>,
    breaker: CircuitBreaker,
    last_attempts: Vec<AttemptRecord>,
    telemetry: Telemetry,
    trace: Option<TraceContext>,
    retries: Counter,
    failures: Counter,
    breaker_transitions: Counter,
    roundtrip_micros: Histogram,
}

impl RemoteIas {
    /// Connect parameters plus the out-of-band-distributed report signing
    /// key (Intel publishes this as a certificate). Uses a default retry
    /// policy and breaker against a private clock; deployments that want
    /// the breaker's cooldown tied to simulation time should follow up
    /// with [`with_resilience`](Self::with_resilience).
    pub fn new(
        network: &Network,
        address: &str,
        report_key: vnfguard_crypto::ed25519::VerifyingKey,
    ) -> RemoteIas {
        RemoteIas {
            network: network.clone(),
            address: address.to_string(),
            report_key,
            clock: SimClock::at(0),
            retry: RetryPolicy::default(),
            retry_budget: None,
            breaker: CircuitBreaker::new(3, 60),
            last_attempts: Vec::new(),
            telemetry: Telemetry::disabled(),
            trace: None,
            retries: Counter::detached(),
            failures: Counter::detached(),
            breaker_transitions: Counter::detached(),
            roundtrip_micros: Histogram::detached(),
        }
    }

    /// Share the deployment clock and choose the retry/breaker parameters.
    pub fn with_resilience(
        mut self,
        clock: SimClock,
        retry: RetryPolicy,
        breaker: CircuitBreaker,
    ) -> RemoteIas {
        self.clock = clock;
        self.retry = retry;
        self.breaker = breaker;
        self
    }

    /// Cap retry amplification with a shared token bucket: once the budget
    /// is empty, failed IAS calls are not retried until tokens refill —
    /// one brownout cannot turn N failing verifications into N × attempts
    /// extra load. The `Arc` is typically shared with the deployment's
    /// other clients so the cap is per-deployment, not per-handle.
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> RemoteIas {
        self.retry_budget = Some(budget);
        self
    }

    /// Record round-trips, retries, failures and breaker transitions into a
    /// shared telemetry bundle.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> RemoteIas {
        self.telemetry = telemetry.clone();
        self.retries = telemetry.counter("vnfguard_core_ias_retries_total");
        self.failures = telemetry.counter("vnfguard_core_ias_failures_total");
        self.breaker_transitions = telemetry.counter("vnfguard_core_ias_breaker_transitions_total");
        self.roundtrip_micros = telemetry.histogram("vnfguard_core_ias_roundtrip_micros");
        self
    }

    /// Current breaker state at the handle's clock.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state(self.clock.now())
    }

    /// Attempt log of the most recent retried operation.
    pub fn last_attempts(&self) -> &[AttemptRecord] {
        &self.last_attempts
    }

    fn post_report(
        network: &Network,
        address: &str,
        quote_bytes: &[u8],
        nonce: &[u8],
        trace: &TraceContext,
    ) -> Result<AttestationReport, String> {
        let mut stream = network
            .connect_from("vm", address)
            .map_err(|e| e.to_string())?;
        stream.set_read_timeout(Some(IAS_READ_TIMEOUT));
        let mut client = vnfguard_net::server::HttpClient::new(stream);
        let request = Request::post("/attestation/v4/report")
            .with_trace(trace)
            .with_json(
                &Json::object()
                    .with("isvEnclaveQuote", base64::encode(quote_bytes))
                    .with("nonce", base64::encode(nonce)),
            );
        let response = client.request(&request).map_err(|e| e.to_string())?;
        let doc = response.parse_json().map_err(|e| e.to_string())?;
        let bytes = b64_field(&doc, "report")?;
        AttestationReport::decode(&bytes).map_err(|e| e.to_string())
    }

    /// An unverifiable self-signed report: the caller's signature check
    /// against the real report key fails closed.
    // backend-opt-out: the IAS transport synthesizes a fail-closed report
    // in the service's own vocabulary when the round-trip dies.
    fn unverifiable_report(nonce: &[u8], advisory: &str) -> AttestationReport {
        let key = vnfguard_crypto::ed25519::SigningKey::from_seed(&[0; 32]);
        AttestationReport::create(
            0,
            0,
            vnfguard_ias::QuoteStatus::SignatureInvalid,
            nonce,
            None,
            vec![advisory.into()],
            &key,
        )
    }

    /// Count and journal any breaker transitions recorded past `before`.
    fn note_transitions(&self, before: usize) {
        let transitions = self.breaker.transitions();
        for (at, state) in &transitions[before.min(transitions.len())..] {
            self.breaker_transitions.inc();
            self.telemetry
                .event(*at, "ias_breaker_transition", &format!("{state:?}"));
        }
    }
}

impl QuoteVerifier for RemoteIas {
    fn verify_quote(&mut self, quote_bytes: &[u8], nonce: &[u8]) -> AttestationReport {
        let trace = self.trace.clone().unwrap_or_default();
        if check_deadline(&self.clock, "ias verify_quote").is_err() {
            // The request's budget is already gone: don't spend a network
            // round-trip (or a breaker sample) on an answer nobody will
            // read. The unverifiable report fails closed like the rest.
            self.telemetry.trace_annotate(
                &trace,
                self.clock.now(),
                "deadline",
                &format!("{}: budget exhausted before IAS round-trip", self.address),
            );
            return Self::unverifiable_report(nonce, "IAS_DEADLINE_EXCEEDED");
        }
        if !self.breaker.allows(self.clock.now()) {
            // Open circuit: fail fast without touching the network. The
            // report is unverifiable, so callers that ignore availability
            // still fail closed.
            self.telemetry.trace_annotate(
                &trace,
                self.clock.now(),
                "breaker",
                &format!("{}: circuit open, failing fast", self.address),
            );
            return Self::unverifiable_report(nonce, "IAS_CIRCUIT_OPEN");
        }
        let network = self.network.clone();
        let address = self.address.clone();
        let telemetry = self.telemetry.clone();
        let clock = self.clock.clone();
        let (roundtrip_ctx, outcome) = {
            // The whole retried operation is one `ias_roundtrip` span; each
            // attempt gets its own child span so retries show up as
            // distinct bars in the waterfall.
            let (roundtrip_ctx, span) = telemetry.trace_child(
                &trace,
                "vm",
                "ias_roundtrip",
                clock.now(),
            );
            let _span = span.with_histogram(self.roundtrip_micros.clone());
            // The retry loop itself re-checks the ambient deadline and the
            // shared retry budget before every backoff.
            let budget = self.retry_budget.as_deref();
            let outcome = self.retry.run_with_budget(&self.clock, budget, |attempt| {
                let (attempt_ctx, _attempt_span) = telemetry.trace_child(
                    &roundtrip_ctx,
                    "vm",
                    &format!("ias_attempt_{attempt}"),
                    clock.now(),
                );
                Self::post_report(&network, &address, quote_bytes, nonce, &attempt_ctx)
            });
            (roundtrip_ctx, outcome)
        };
        // Failed attempts become `fault`/`retry` annotations naming the
        // fault site, attached to the round-trip span.
        for record in &outcome.attempts {
            if let Some(error) = &record.error {
                let kind = if record.attempt == 0 { "fault" } else { "retry" };
                self.telemetry.trace_annotate(
                    &roundtrip_ctx,
                    record.at,
                    kind,
                    &format!("{} attempt {}: {}", self.address, record.attempt, error),
                );
            }
        }
        self.retries
            .add(outcome.attempts.len().saturating_sub(1) as u64);
        self.last_attempts = outcome.attempts;
        let transitions_before = self.breaker.transitions().len();
        let report = match outcome.result {
            Ok(report) => {
                self.breaker.record_success(self.clock.now());
                report
            }
            Err(_) => {
                // One retried operation is one breaker sample.
                self.breaker.record_failure(self.clock.now());
                self.failures.inc();
                Self::unverifiable_report(nonce, "IAS_UNREACHABLE")
            }
        };
        self.note_transitions(transitions_before);
        report
    }

    fn report_signing_key(&self) -> vnfguard_crypto::ed25519::VerifyingKey {
        self.report_key
    }

    fn availability(&self) -> Availability {
        if self.breaker.allows(self.clock.now()) {
            Availability::Available
        } else {
            Availability::Unavailable
        }
    }

    fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.trace = ctx;
    }
}

// ---------------------------------------------------------------------------
// Host agent
// ---------------------------------------------------------------------------

/// Shared state of a container host served by its agent.
pub struct HostAgentState {
    pub host_id: String,
    pub platform: SgxPlatform,
    pub container_host: RwLock<ContainerHost>,
    pub integrity_enclave: Enclave,
    pub tpm: Option<Mutex<SimTpm>>,
    pub guards: RwLock<HashMap<String, Arc<VnfGuard>>>,
    /// Serials revoked by VM notification (evicted ahead of the next CRL).
    pub revoked_serials: RwLock<BTreeSet<u64>>,
    /// The VM's HMAC key for authenticating revocation notices; `None`
    /// accepts unauthenticated notices (testbed convenience).
    pub vm_hmac_key: Option<[u8; 32]>,
    /// When `Some`, this host is a SEV-SNP confidential VM: attestation
    /// routes produce SNP report bundles instead of SGX quotes (binding
    /// the exact same report data), and `/agent/health` advertises the
    /// `snp` backend. `None` keeps the original SGX behavior untouched.
    pub snp: Option<SnpPlatform>,
}

impl HostAgentState {
    /// The attestation backend this host enrolls under.
    pub fn backend(&self) -> BackendKind {
        if self.snp.is_some() {
            BackendKind::SevSnp
        } else {
            BackendKind::SgxEpid
        }
    }
}

/// The per-host agent: answers the Verification Manager's attestation and
/// provisioning requests over the fabric.
pub struct HostAgent {
    pub state: Arc<HostAgentState>,
    handle: ServerHandle,
    pub address: String,
}

impl HostAgent {
    /// Serve the agent for a host at `agent:{host_id}`.
    pub fn serve(network: &Network, state: Arc<HostAgentState>) -> Result<HostAgent, CoreError> {
        Self::launch(network, state, None)
    }

    /// Serve the agent with distributed tracing: requests carrying a
    /// `traceparent` header are recorded as server spans attributed to the
    /// `agent` service, timestamped via `now_fn` (simulated unix seconds).
    pub fn serve_traced(
        network: &Network,
        state: Arc<HostAgentState>,
        telemetry: &Telemetry,
        now_fn: impl Fn() -> u64 + Send + Sync + 'static,
    ) -> Result<HostAgent, CoreError> {
        Self::launch(
            network,
            state,
            Some((telemetry.clone(), Arc::new(now_fn) as Arc<dyn Fn() -> u64 + Send + Sync>)),
        )
    }

    fn launch(
        network: &Network,
        state: Arc<HostAgentState>,
        tracing: Option<(Telemetry, Arc<dyn Fn() -> u64 + Send + Sync>)>,
    ) -> Result<HostAgent, CoreError> {
        let address = format!("agent:{}", state.host_id);
        let mut router = Router::new();

        // POST /agent/attest {nonce: b64} → {evidence: b64}
        {
            let state = state.clone();
            router.post_api("/agent/attest", move |request, _| {
                let body = api_json(request)?;
                let nonce = b64_array32(&body, "nonce").map_err(ApiError::bad_request)?;
                let tpm_quote = state
                    .tpm
                    .as_ref()
                    .map(|tpm| tpm.lock().quote(IMA_PCR, nonce).encode());
                let iml = state.container_host.read().measurement_list().encode();
                let evidence = match &state.snp {
                    // SNP CVM host: the report binds the identical IML
                    // hash + nonce report data; IML and TPM quote travel
                    // alongside exactly as in the SGX evidence bundle.
                    Some(snp) => HostEvidence {
                        quote: snp
                            .attest_self(crate::attestation::host_report_data(&iml, &nonce)),
                        iml,
                        tpm_quote,
                    },
                    None => host_evidence(
                        &state.platform,
                        &state.integrity_enclave,
                        &iml,
                        &nonce,
                        tpm_quote,
                    )
                    .map_err(|e| ApiError::server_error(e.to_string()))?,
                };
                Ok(Response::json(
                    Status::Ok,
                    &Json::object().with("evidence", base64::encode(&evidence.encode())),
                ))
            });
        }

        // POST /agent/vnf/:name/attest {nonce: b64, basename: b64}
        //   → {quote: b64, provisioning_key: b64}
        {
            let state = state.clone();
            router.post_api("/agent/vnf/:name/attest", move |request, params| {
                let name = params.get("name").unwrap_or("");
                let guards = state.guards.read();
                let guard = guards
                    .get(name)
                    .ok_or_else(|| ApiError::not_found(format!("no VNF {name:?}")))?;
                let body = api_json(request)?;
                let nonce = b64_array32(&body, "nonce").map_err(ApiError::bad_request)?;
                let basename = b64_array32(&body, "basename").map_err(ApiError::bad_request)?;
                let provisioning_key = guard
                    .provisioning_key()
                    .map_err(|e| ApiError::server_error(e.to_string()))?;
                let quote = match &state.snp {
                    // SNP host: per-VNF CVM evidence binding the same
                    // provisioning-key + nonce report data the SGX quote
                    // would carry. `basename` is an EPID concept; SNP
                    // reports have no equivalent and ignore it.
                    Some(snp) => snp.attest(
                        crate::backend::snp_vnf_measurement(name),
                        vnfguard_vnf::credential_enclave::provisioning_report_data(
                            &provisioning_key,
                            &nonce,
                        ),
                    ),
                    None => guard
                        .quote(&state.platform, &nonce, basename)
                        .map_err(|e| ApiError::server_error(e.to_string()))?
                        .encode(),
                };
                Ok(Response::json(
                    Status::Ok,
                    &Json::object()
                        .with("quote", base64::encode(&quote))
                        .with("provisioning_key", base64::encode(&provisioning_key)),
                ))
            });
        }

        // POST /agent/vnf/:name/provision {wrapped: b64} → {}
        {
            let state = state.clone();
            router.post_api("/agent/vnf/:name/provision", move |request, params| {
                let name = params.get("name").unwrap_or("");
                let guards = state.guards.read();
                let guard = guards
                    .get(name)
                    .ok_or_else(|| ApiError::not_found(format!("no VNF {name:?}")))?;
                let body = api_json(request)?;
                let wrapped = b64_field(&body, "wrapped").map_err(ApiError::bad_request)?;
                guard
                    .provision(&wrapped)
                    .map_err(|e| ApiError::server_error(e.to_string()))?;
                Ok(Response::json(Status::Ok, &Json::object().with("ok", true)))
            });
        }

        // POST /agent/revocations {serial, tag: b64} → {} — a VM-pushed
        // revocation notice, authenticated with the VM's HMAC key.
        {
            let state = state.clone();
            router.post_api("/agent/revocations", move |request, _| {
                let body = api_json(request)?;
                let serial = body
                    .get("serial")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| ApiError::bad_request("missing 'serial'"))?
                    as u64;
                if let Some(key) = &state.vm_hmac_key {
                    let tag = b64_array32(&body, "tag").map_err(ApiError::bad_request)?;
                    let message = crate::revocation::revocation_message(&state.host_id, serial);
                    if hmac_sha256(key, &message) != tag {
                        return Err(ApiError::forbidden("bad revocation tag"));
                    }
                }
                state.revoked_serials.write().insert(serial);
                Ok(Response::json(
                    Status::Ok,
                    &Json::object().with("revoked", true),
                ))
            });
        }

        // GET /agent/vnfs → list of deployed guard names.
        {
            let state = state.clone();
            router.get_api("/agent/vnfs", move |_, _| {
                let guards = state.guards.read();
                let names: Json = guards.keys().map(|k| Json::from(k.as_str())).collect();
                Ok(Response::json(Status::Ok, &names))
            });
        }

        // GET /agent/health → liveness + workload summary, scraped by the
        // fleet monitor alongside the VM nodes.
        {
            let state = state.clone();
            router.get_api("/agent/health", move |_, _| {
                let vnfs: Json = state
                    .guards
                    .read()
                    .keys()
                    .map(|k| Json::from(k.as_str()))
                    .collect();
                Ok(Response::json(
                    Status::Ok,
                    &Json::object()
                        .with("host_id", state.host_id.as_str())
                        .with("backend", state.backend().label())
                        .with("vnfs", vnfs)
                        .with("revoked_serials", state.revoked_serials.read().len() as i64),
                ))
            });
        }

        if let Some((telemetry, now_fn)) = tracing {
            router.instrument_traces(&telemetry, "agent", move || now_fn());
        }

        let listener = network
            .listen(&address)
            .map_err(|e| CoreError::WorkflowViolation(e.to_string()))?;
        let handle = serve(listener, PlainUpgrade, router);
        Ok(HostAgent {
            state,
            handle,
            address,
        })
    }

    pub fn requests_served(&self) -> u64 {
        self.handle.requests()
    }
}

// ---------------------------------------------------------------------------
// Remote orchestration (the VM driving agents over the fabric)
// ---------------------------------------------------------------------------

fn connect_agent(
    network: &Network,
    host_id: &str,
) -> Result<vnfguard_net::server::HttpClient<vnfguard_net::stream::Duplex>, CoreError> {
    let mut stream = network
        .connect_from("vm", &format!("agent:{host_id}"))
        .map_err(|e| CoreError::HostUnreachable(format!("agent:{host_id}: {e}")))?;
    stream.set_read_timeout(Some(AGENT_READ_TIMEOUT));
    Ok(vnfguard_net::server::HttpClient::new(stream))
}

/// Drive the full host attestation (steps 1–2) against a remote agent
/// through any [`AttestationBackend`]. Time comes from the manager's
/// injected clock.
///
/// When the backend reports itself [`Availability::Unavailable`]
/// (circuit open), no fresh appraisal is possible; the call falls back to
/// [`VmService::degraded_host_verdict`] — policy-gated reuse of
/// the cached verdict, audit-logged as `DegradedVerdict`.
pub fn remote_attest_host_backend(
    vm: &VmService,
    backend: &mut dyn AttestationBackend,
    network: &Network,
    host_id: &str,
    trace: Option<&TraceContext>,
) -> Result<vnfguard_ima::appraisal::Verdict, CoreError> {
    let base = trace.cloned().unwrap_or_default();
    let telemetry = vm.telemetry();
    backend.set_trace_context(Some(base.clone()));
    let result = remote_attest_host_inner(vm, backend, network, host_id, &base, &telemetry);
    backend.set_trace_context(None);
    result
}

fn remote_attest_host_inner(
    vm: &VmService,
    backend: &mut dyn AttestationBackend,
    network: &Network,
    host_id: &str,
    base: &TraceContext,
    telemetry: &Telemetry,
) -> Result<vnfguard_ima::appraisal::Verdict, CoreError> {
    if backend.availability() == Availability::Unavailable {
        return vm.degraded_host_verdict_traced(host_id, Some(base));
    }
    // Each `vm.*` call locks its shard only for the duration of the
    // manager work; the agent hop below runs with no shard lock held.
    let challenge = vm.begin_host_attestation(host_id);
    let mut client = connect_agent(network, host_id)?;
    let response = {
        let (agent_ctx, _span) =
            telemetry.trace_child(base, "vm", "agent_attest", vm.clock().now());
        client
            .request(
                &Request::post("/agent/attest")
                    .with_trace(&agent_ctx)
                    .with_json(&Json::object().with("nonce", base64::encode(&challenge.nonce))),
            )
            .map_err(|e| CoreError::HostUnreachable(format!("agent:{host_id}: {e}")))?
    };
    if !response.status.is_success() {
        return Err(CoreError::AttestationFailed(format!(
            "agent returned {}",
            response.status.code()
        )));
    }
    let body = response
        .parse_json()
        .map_err(|e| CoreError::Encoding(e.to_string()))?;
    let evidence_bytes = b64_field(&body, "evidence").map_err(CoreError::Encoding)?;
    let evidence = HostEvidence::decode(&evidence_bytes)?;
    vm.complete_host_attestation_traced(backend, challenge.id, &evidence, Some(base))
}

/// Drive VNF enrollment (steps 3–5) against a remote agent through any
/// [`AttestationBackend`]. Time comes from the manager's injected clock.
///
/// Credential issuance has no degraded mode: when the attestation backend
/// is unavailable the call fails fast and closed with
/// [`CoreError::ServiceUnavailable`]. Delivery uses the two-phase
/// prepare → commit protocol: if the wrapped bundle cannot be confirmed
/// delivered, the issued certificate is revoked and the enrollment rolled
/// back, so no half-provisioned state survives a mid-transfer fault.
#[allow(clippy::too_many_arguments)]
pub fn remote_enroll_vnf_backend(
    vm: &VmService,
    backend: &mut dyn AttestationBackend,
    network: &Network,
    host_id: &str,
    vnf_name: &str,
    controller_cn: &str,
    trace: Option<&TraceContext>,
) -> Result<vnfguard_pki::Certificate, CoreError> {
    let base = trace.cloned().unwrap_or_default();
    let telemetry = vm.telemetry();
    backend.set_trace_context(Some(base.clone()));
    let result = remote_enroll_vnf_inner(
        vm,
        backend,
        network,
        host_id,
        vnf_name,
        controller_cn,
        &base,
        &telemetry,
    );
    backend.set_trace_context(None);
    result
}

#[allow(clippy::too_many_arguments)]
fn remote_enroll_vnf_inner(
    vm: &VmService,
    backend: &mut dyn AttestationBackend,
    network: &Network,
    host_id: &str,
    vnf_name: &str,
    controller_cn: &str,
    base: &TraceContext,
    telemetry: &Telemetry,
) -> Result<vnfguard_pki::Certificate, CoreError> {
    if backend.availability() == Availability::Unavailable {
        return Err(CoreError::ServiceUnavailable(format!(
            "attestation service unavailable; refusing to enroll {vnf_name}"
        )));
    }
    // Shard locks are scoped inside each `vm.*` call: both agent hops in
    // this flow run with no shard lock held.
    let challenge = vm.begin_vnf_attestation(host_id, vnf_name)?;
    let mut client = connect_agent(network, host_id)?;

    // Step 3: challenge the enclave through the agent.
    let response = {
        let (agent_ctx, _span) =
            telemetry.trace_child(base, "vm", "agent_vnf_attest", vm.clock().now());
        client
            .request(
                &Request::post(&format!("/agent/vnf/{vnf_name}/attest"))
                    .with_trace(&agent_ctx)
                    .with_json(
                        &Json::object()
                            .with("nonce", base64::encode(&challenge.nonce))
                            .with("basename", base64::encode(&challenge.nonce)),
                    ),
            )
            .map_err(|e| CoreError::HostUnreachable(format!("agent:{host_id}: {e}")))?
    };
    if !response.status.is_success() {
        return Err(CoreError::AttestationFailed(format!(
            "agent returned {}",
            response.status.code()
        )));
    }
    let body = response
        .parse_json()
        .map_err(|e| CoreError::Encoding(e.to_string()))?;
    let quote = b64_field(&body, "quote").map_err(CoreError::Encoding)?;
    let provisioning_key = b64_array32(&body, "provisioning_key").map_err(CoreError::Encoding)?;

    // Steps 4-5: verify + generate + wrap (prepare), deliver through the
    // agent, and only then commit the enrollment.
    let (serial, wrapped, certificate) = vm.prepare_vnf_enrollment_traced(
        backend,
        challenge.id,
        &quote,
        &provisioning_key,
        controller_cn,
        Some(base),
    )?;
    let delivery = {
        let (agent_ctx, _span) =
            telemetry.trace_child(base, "vm", "agent_provision", vm.clock().now());
        client
            .request(
                &Request::post(&format!("/agent/vnf/{vnf_name}/provision"))
                    .with_trace(&agent_ctx)
                    .with_json(&Json::object().with("wrapped", base64::encode(&wrapped))),
            )
            .map_err(|e| e.to_string())
            .and_then(|response| {
                if response.status.is_success() {
                    Ok(())
                } else {
                    Err(format!("agent returned {}", response.status.code()))
                }
            })
    };
    match delivery {
        Ok(()) => {
            vm.commit_vnf_enrollment_traced(serial, Some(base))?;
            Ok(certificate)
        }
        Err(reason) => {
            vm.abort_vnf_enrollment_traced(serial, &reason, Some(base))?;
            Err(CoreError::ProvisioningRolledBack(format!(
                "{vnf_name} serial {serial}: {reason}"
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// The VM's operator API
// ---------------------------------------------------------------------------

/// Map a manager error to an API error: a halted (crashed) or fenced
/// manager is a zombie, and every route reports it as `503` with the
/// machine-readable code `"fenced"` so clients can tell zombie rejection
/// from overload; other errors fall through to the route's own mapping.
fn fenced_or(error: CoreError, fallback: impl FnOnce(CoreError) -> ApiError) -> ApiError {
    match &error {
        CoreError::VmCrashed(_) => {
            ApiError::unavailable(error.to_string()).with_code("fenced")
        }
        CoreError::ServiceUnavailable(detail) if detail.contains("fenced") => {
            ApiError::unavailable(error.to_string()).with_code("fenced")
        }
        // Admission shed: 503 `"overloaded"` with the retry hint in both
        // the body and a `retry-after` header, distinct from `"fenced"`.
        CoreError::Overloaded {
            retry_after_secs, ..
        } => ApiError::overloaded(error.to_string(), *retry_after_secs),
        // Budget ran out mid-request: 504 `"deadline"`, no retry hint —
        // the caller's own (refreshed) budget decides what happens next.
        CoreError::DeadlineExceeded(_) => ApiError::deadline(error.to_string()),
        _ => fallback(error),
    }
}

/// Install the request's propagated `x-vnfguard-deadline` budget (if any)
/// as the thread's ambient deadline for the rest of the handler: shard
/// admission gates, IAS retry loops and replication ack retries all check
/// it and fail fast once it dies. Requests without the header run
/// unbounded, as before.
fn enter_deadline(clock: &SimClock, request: &Request) -> Option<DeadlineScope> {
    request
        .deadline_millis()
        .map(|budget| DeadlineScope::enter(Deadline::start(clock, budget)))
}

/// Issue a VM API request, honoring overload backpressure: a 503
/// `"overloaded"` response waits out the server's `retry-after-secs` hint
/// (advancing the sim clock, not sleeping) before trying again, up to
/// `max_attempts` total tries. A 504 `"deadline"` is returned immediately
/// — the budget that died was this caller's own, so blind retry without a
/// fresh budget would just die again. Other responses, success or error,
/// pass straight through.
pub fn vm_request_with_backpressure(
    network: &Network,
    address: &str,
    request: &Request,
    clock: &SimClock,
    max_attempts: u32,
) -> Result<Response, CoreError> {
    let attempts = max_attempts.max(1);
    let mut last = None;
    for _ in 0..attempts {
        let mut stream = network
            .connect_from("operator", address)
            .map_err(|e| CoreError::ServiceUnavailable(format!("{address}: {e}")))?;
        stream.set_read_timeout(Some(AGENT_READ_TIMEOUT));
        let mut client = vnfguard_net::server::HttpClient::new(stream);
        let response = client
            .request(request)
            .map_err(|e| CoreError::ServiceUnavailable(format!("{address}: {e}")))?;
        if response.status == Status::ServiceUnavailable {
            if let Some(hint) = response.retry_after_secs() {
                clock.advance(hint.max(1));
                last = Some(response);
                continue;
            }
        }
        return Ok(response);
    }
    Ok(last.expect("at least one attempt ran"))
}

/// Serve the Verification Manager's operator API on the fabric.
///
/// Endpoints:
/// - `POST /vm/hosts/:id/attest` → `{verdict}`
/// - `POST /vm/hosts/:id/vnfs/:name/enroll` → `{serial, subject}`
/// - `POST /vm/revoke` `{serial, reason}` → `{}`
/// - `POST /vm/renew` `{serial, provisioning_key: b64}` → `{wrapped: b64,
///   serial, subject}` — the lightweight renewal path: re-issues a live
///   credential against the cached attestation verdict, without the
///   six-step protocol (403 when the verdict is stale)
/// - `POST /vm/rotate` → `{epoch, drain_deadline}` — rotate the CA key,
///   cross-signing the new root with the outgoing key
/// - `GET  /vm/ca` → `{certificate: b64, epoch, cross_signed?: b64,
///   chain: [{epoch, root: b64, cross_signed: b64}], previous: [b64],
///   drain_deadline?}` — everything a relying party needs to verify a
///   rotation handover and run the dual-trust window; `chain` carries one
///   entry per rotation so a monitor that missed intermediate epochs can
///   walk trust forward instead of wedging
/// - `GET  /vm/crl` → `{crl: b64, crl_number}` — re-serves the most
///   recently issued numbered CRL; a fresh one is minted (journaled,
///   monotonic) only when revocations, a rotation, or expiry obsoleted
///   the cached copy, so polling neither grows the WAL nor burns numbers
/// - `GET  /vm/lifecycle` → credential-estate posture (active/expiring
///   counts, CRL age, CA epoch, drain deadline)
/// - `GET  /vm/status` → summary counts
/// - `GET  /vm/recovery` → `{recovered}` plus the last recovery report and
///   sealed-store occupancy, for operators auditing a crash restart
/// - `GET  /vm/replication` → role (`primary`/`fenced`/`unreplicated`),
///   fencing epoch, and per-standby ack high-water mark and lag (records
///   and seconds); reading refreshes the replication lag gauges
/// - `GET  /vm/metrics` → Prometheus text exposition of every registered
///   metric in the manager's telemetry bundle
/// - `GET  /vm/events?since=N` → journal events with `seq > N` (use the
///   returned `next_seq` as the next `since` cursor)
/// - `GET  /vm/traces` → index of assembled distributed traces
/// - `GET  /vm/traces/{trace_id}` → one trace as a nested span tree
///   (append `?format=chrome` for Chrome `trace_event` JSON or
///   `?format=ascii` for the waterfall rendering)
///
/// The router itself is instrumented: every dispatch bumps
/// `vnfguard_core_api_requests_total`, every non-2xx response
/// `vnfguard_core_api_request_errors_total`. Workflow timestamps come from
/// the manager's injected clock.
pub fn serve_vm_api(
    network: &Network,
    address: &str,
    vm: VmService,
    ias: Arc<Mutex<dyn QuoteVerifier + Send>>,
    controller_cn: &str,
) -> Result<ServerHandle, CoreError> {
    let mut router = Router::new();
    let controller_cn = controller_cn.to_string();
    let telemetry = vm.telemetry();
    router.instrument(
        telemetry.counter("vnfguard_core_api_requests_total"),
        telemetry.counter("vnfguard_core_api_request_errors_total"),
    );
    // One clock clone for the whole router: `vm.clock()` locks the
    // authority shard, so handlers must not call it per-request.
    let clock = vm.clock();
    {
        let clock = clock.clone();
        router.instrument_traces(&telemetry, "vm_api", move || clock.now());
    }

    // Both evidence-carrying routes dispatch through a MultiBackend built
    // per request (two Arc clones): SNP evidence self-describes and goes
    // to the service's offline appraiser, everything else rides the IAS
    // path exactly as before.
    let snp = vm.snp_verifier().cloned();
    {
        let vm = vm.clone();
        let ias = ias.clone();
        let snp = snp.clone();
        let network = network.clone();
        let clock = clock.clone();
        router.post_api("/vm/hosts/:id/attest", move |request, params| {
            let _deadline = enter_deadline(&clock, request);
            let host_id = params.get("id").unwrap_or("");
            let trace = request.trace_context();
            let mut backend = MultiBackend::from_parts(ias.clone(), snp.clone());
            let verdict =
                remote_attest_host_backend(&vm, &mut backend, &network, host_id, trace.as_ref())
                    .map_err(|e| fenced_or(e, |e| ApiError::forbidden(e.to_string())))?;
            Ok(Response::json(
                Status::Ok,
                &Json::object().with("verdict", format!("{verdict:?}")),
            ))
        });
    }
    {
        let vm = vm.clone();
        let ias = ias.clone();
        let snp = snp.clone();
        let network = network.clone();
        let controller_cn = controller_cn.clone();
        let clock = clock.clone();
        router.post_api("/vm/hosts/:id/vnfs/:name/enroll", move |request, params| {
            let _deadline = enter_deadline(&clock, request);
            let host_id = params.get("id").unwrap_or("");
            let vnf_name = params.get("name").unwrap_or("");
            let trace = request.trace_context();
            let mut backend = MultiBackend::from_parts(ias.clone(), snp.clone());
            let cert = remote_enroll_vnf_backend(
                &vm,
                &mut backend,
                &network,
                host_id,
                vnf_name,
                &controller_cn,
                trace.as_ref(),
            )
            .map_err(|e| fenced_or(e, |e| ApiError::forbidden(e.to_string())))?;
            Ok(Response::json(
                Status::Ok,
                &Json::object()
                    .with("serial", cert.serial() as i64)
                    .with("subject", cert.subject_cn()),
            ))
        });
    }
    {
        let vm = vm.clone();
        let clock = clock.clone();
        router.post_api("/vm/revoke", move |request, _| {
            let _deadline = enter_deadline(&clock, request);
            let body = api_json(request)?;
            let serial = body
                .get("serial")
                .and_then(Json::as_i64)
                .ok_or_else(|| ApiError::bad_request("missing 'serial'"))?;
            vm.revoke_credential(
                serial as u64,
                vnfguard_pki::crl::RevocationReason::KeyCompromise,
            )
            .map_err(|e| fenced_or(e, |e| ApiError::not_found(e.to_string())))?;
            Ok(Response::json(
                Status::Ok,
                &Json::object().with("revoked", true),
            ))
        });
    }
    {
        let vm = vm.clone();
        let controller_cn = controller_cn.clone();
        let clock = clock.clone();
        router.post_api("/vm/renew", move |request, _| {
            let _deadline = enter_deadline(&clock, request);
            let body = api_json(request)?;
            let serial = body
                .get("serial")
                .and_then(Json::as_i64)
                .ok_or_else(|| ApiError::bad_request("missing 'serial'"))?;
            let provisioning_key =
                b64_array32(&body, "provisioning_key").map_err(ApiError::bad_request)?;
            let trace = request.trace_context();
            let (wrapped, cert) = vm
                .renew_vnf_credential_traced(
                    serial as u64,
                    &provisioning_key,
                    &controller_cn,
                    trace.as_ref(),
                )
                .map_err(|e| {
                    // A shed or expired renewal must not wait for the cert's
                    // renewal window to come around again: park this serial on
                    // a jittered backoff so the next lifecycle sweep retries
                    // it off-peak instead of rejoining the stampede.
                    match &e {
                        CoreError::Overloaded {
                            retry_after_secs, ..
                        } => vm.note_renewal_refused(serial as u64, *retry_after_secs),
                        CoreError::DeadlineExceeded(_) => {
                            vm.note_renewal_refused(serial as u64, 1)
                        }
                        _ => {}
                    }
                    fenced_or(e, |e| match e {
                        CoreError::WorkflowViolation(_) => ApiError::not_found(e.to_string()),
                        _ => ApiError::forbidden(e.to_string()),
                    })
                })?;
            Ok(Response::json(
                Status::Ok,
                &Json::object()
                    .with("wrapped", base64::encode(&wrapped))
                    .with("serial", cert.serial() as i64)
                    .with("subject", cert.subject_cn()),
            ))
        });
    }
    {
        let vm = vm.clone();
        let clock = clock.clone();
        router.post_api("/vm/rotate", move |request, _| {
            let _deadline = enter_deadline(&clock, request);
            let trace = request.trace_context();
            let rotation = vm
                .rotate_ca_traced(trace.as_ref())
                .map_err(|e| fenced_or(e, |e| ApiError::forbidden(e.to_string())))?;
            Ok(Response::json(
                Status::Ok,
                &Json::object()
                    .with("epoch", rotation.epoch as i64)
                    .with("drain_deadline", rotation.drain_deadline as i64),
            ))
        });
    }
    {
        let vm = vm.clone();
        let clock = clock.clone();
        router.get_api("/vm/ca", move |request, _| {
            let _deadline = enter_deadline(&clock, request);
            let mut body = Json::object()
                .with("certificate", base64::encode(&vm.ca_certificate().encode()))
                .with("epoch", vm.ca_epoch() as i64);
            if let Some(cross) = vm.ca_cross_signed() {
                body = body.with("cross_signed", base64::encode(&cross.encode()));
            }
            let chain: Vec<Json> = vm
                .ca_rotation_chain()
                .into_iter()
                .map(|(epoch, root, cross)| {
                    Json::object()
                        .with("epoch", epoch as i64)
                        .with("root", base64::encode(&root.encode()))
                        .with("cross_signed", base64::encode(&cross.encode()))
                })
                .collect();
            body = body.with("chain", chain);
            let previous: Vec<Json> = vm
                .ca_previous_roots()
                .iter()
                .map(|c| Json::from(base64::encode(&c.encode())))
                .collect();
            body = body.with("previous", previous);
            if let Some(deadline) = vm.rotation_drain_deadline() {
                body = body.with("drain_deadline", deadline as i64);
            }
            Ok(Response::json(Status::Ok, &body))
        });
    }
    {
        let vm = vm.clone();
        let clock = clock.clone();
        router.get_api("/vm/crl", move |request, _| {
            let _deadline = enter_deadline(&clock, request);
            let crl = vm
                .latest_crl()
                .map_err(|e| fenced_or(e, |e| ApiError::forbidden(e.to_string())))?;
            Ok(Response::json(
                Status::Ok,
                &Json::object()
                    .with("crl", base64::encode(&crl.encode()))
                    .with("crl_number", crl.crl_number as i64),
            ))
        });
    }
    {
        let vm = vm.clone();
        let clock = clock.clone();
        router.get_api("/vm/lifecycle", move |request, _| {
            let _deadline = enter_deadline(&clock, request);
            let trace = request.trace_context();
            let status = vm
                .lifecycle_status_admitted(trace.as_ref())
                .map_err(|e| fenced_or(e, |e| ApiError::unavailable(e.to_string())))?;
            let mut body = Json::object()
                .with("at", status.at as i64)
                .with("active", status.active as i64)
                .with("expiring", status.expiring as i64)
                .with("epoch", status.epoch as i64)
                .with("crl_number", status.crl_number as i64);
            if let Some(age) = status.crl_age_secs {
                body = body.with("crl_age_secs", age as i64);
            }
            if let Some(deadline) = status.drain_deadline {
                body = body.with("drain_deadline", deadline as i64);
            }
            Ok(Response::json(Status::Ok, &body))
        });
    }
    {
        let vm = vm.clone();
        let clock = clock.clone();
        router.get_api("/vm/status", move |request, _| {
            let _deadline = enter_deadline(&clock, request);
            Ok(Response::json(
                Status::Ok,
                &Json::object()
                    .with("issued", vm.issued_count() as i64)
                    .with("enrollments", vm.enrollments().count() as i64)
                    .with("events", vm.events().len() as i64),
            ))
        });
    }
    {
        let vm = vm.clone();
        let clock = clock.clone();
        router.get_api("/vm/recovery", move |request, _| {
            let _deadline = enter_deadline(&clock, request);
            let report = vm.recovery_report();
            let mut body = Json::object().with("recovered", report.is_some());
            if let Some(report) = report {
                body = body
                    .with("generation", report.generation as i64)
                    .with("recovered_at", report.at as i64)
                    .with("from_snapshot", report.from_snapshot)
                    .with("truncated_tail", report.truncated_tail)
                    .with("replayed_records", report.replayed_records as i64)
                    .with("enrollments_restored", report.enrollments_restored as i64)
                    .with("pending_restored", report.pending_restored as i64)
                    .with("revocations_restored", report.revocations_restored as i64)
                    .with("rotations_restored", report.rotations_restored as i64)
                    .with("rotation_rolled_back", report.rotation_rolled_back)
                    .with("orphans_aborted", report.orphans_aborted as i64)
                    .with("notices_requeued", report.notices_requeued as i64);
            }
            if let Some(stats) = vm.store_stats() {
                body = body.with(
                    "store",
                    Json::object()
                        .with("log_frames", stats.log_frames as i64)
                        .with("log_bytes", stats.log_bytes as i64)
                        .with("compactions", stats.compactions as i64)
                        .with("has_snapshot", stats.has_snapshot),
                );
            }
            Ok(Response::json(Status::Ok, &body))
        });
    }
    {
        let vm = vm.clone();
        let clock = clock.clone();
        router.get_api("/vm/replication", move |request, _| {
            let _deadline = enter_deadline(&clock, request);
            // Reading the status refreshes the replication gauges, so a
            // metrics scrape right after this sees current lag numbers.
            let body = match vm.replication_status() {
                None => Json::object().with("role", "unreplicated"),
                Some(status) => replication_json(&status),
            };
            Ok(Response::json(Status::Ok, &body))
        });
    }
    {
        let vm = vm.clone();
        router.get_api("/vm/health", move |_, _| {
            // deadline-opt-out: health is the mid-incident diagnosis
            // surface — it must answer while the admission queues are
            // full and every budgeted request is being shed.
            Ok(Response::json(Status::Ok, &health_json(&vm.health_snapshot())))
        });
    }
    {
        let telemetry = telemetry.clone();
        router.get_api("/vm/metrics", move |_, _| {
            // deadline-opt-out: metrics scrapes must stay readable while
            // the service is overloaded — exactly when operators need them.
            Ok(Response::text(Status::Ok, &telemetry.render_prometheus()))
        });
    }
    {
        let telemetry = telemetry.clone();
        router.get_api("/vm/traces", move |_, _| {
            // deadline-opt-out: trace reads are the overload debugging tool.
            let traces: Json = telemetry
                .traces()
                .summaries()
                .iter()
                .map(|summary| {
                    Json::object()
                        .with("trace_id", format!("{:032x}", summary.trace_id))
                        .with("root", summary.root_name.as_str())
                        .with("spans", summary.span_count as i64)
                        .with("annotations", summary.annotation_count as i64)
                        .with("started_at", summary.started_at as i64)
                        .with("duration_micros", summary.duration_micros as i64)
                })
                .collect();
            Ok(Response::json(
                Status::Ok,
                &Json::object()
                    .with("traces", traces)
                    .with("dropped", telemetry.traces().dropped() as i64),
            ))
        });
    }
    {
        let telemetry = telemetry.clone();
        router.get_api("/vm/traces/:id", move |request, params| {
            // deadline-opt-out: trace reads are the overload debugging tool.
            let raw = params.get("id").unwrap_or("");
            let trace_id = u128::from_str_radix(raw, 16)
                .map_err(|_| ApiError::bad_request("trace id must be hex"))?;
            let spans = telemetry.traces().trace(trace_id);
            if spans.is_empty() {
                return Err(ApiError::not_found(format!("no trace {raw}")));
            }
            match request.query_param("format") {
                None => Ok(Response::json(Status::Ok, &trace_tree_json(raw, &spans))),
                Some("chrome") => {
                    let body = telemetry
                        .traces()
                        .render_chrome(trace_id)
                        .unwrap_or_else(|| "[]".to_string());
                    let mut response = Response::new(Status::Ok);
                    response.body = body.into_bytes();
                    response
                        .headers
                        .insert("content-type".into(), "application/json".into());
                    Ok(response)
                }
                Some("ascii") => {
                    let body = telemetry
                        .traces()
                        .render_waterfall(trace_id)
                        .unwrap_or_default();
                    Ok(Response::text(Status::Ok, &body))
                }
                Some(other) => Err(ApiError::bad_request(format!(
                    "unknown format {other:?}; expected 'chrome' or 'ascii'"
                ))),
            }
        });
    }
    {
        let telemetry = telemetry.clone();
        router.get_api("/vm/events", move |request, _| {
            // deadline-opt-out: the audit journal feed stays readable under load.
            let since = match request.query_param("since") {
                Some(raw) => raw.parse::<u64>().map_err(|_| {
                    ApiError::bad_request("'since' must be an integer sequence number")
                })?,
                None => 0,
            };
            let journal = telemetry.journal();
            let events: Json = journal
                .since(since)
                .iter()
                .map(|e| {
                    Json::object()
                        .with("seq", e.seq as i64)
                        .with("time", e.time as i64)
                        .with("kind", e.kind.as_str())
                        .with("detail", e.detail.as_str())
                })
                .collect();
            Ok(Response::json(
                Status::Ok,
                &Json::object()
                    .with("events", events)
                    .with("next_seq", journal.next_seq() as i64),
            ))
        });
    }

    let listener = network
        .listen(address)
        .map_err(|e| CoreError::WorkflowViolation(e.to_string()))?;
    Ok(serve(listener, PlainUpgrade, router))
}
