//! A complete testbed: the deployment of Figure 1 in one value.
//!
//! Assembles the network fabric, the attestation service, the Verification
//! Manager — optionally partitioned into shards behind a
//! [`VmService`] handle — a controller (any of the three security modes),
//! and one or more SGX container hosts, then exposes one method per
//! workflow step. The examples and all benchmarks are built on this type.
//!
//! ## Sharding
//!
//! With [`TestbedBuilder::shards`] the manager state is partitioned by
//! VNF identity across `n` [`VerificationManager`] shards, each with its
//! own sealed WAL on its own media and its own SGX platform. Shard 0 is
//! the **authority shard**: the CA, CRL number, rotation epoch, host
//! attestation records, and operator certificates live there; the other
//! shards carry disjoint serial and challenge spans and adopt the
//! authority's rotations and host verdicts through the service layer.
//! `Testbed::vm` is always a [`VmService`] — a single-shard testbed is
//! simply a service with one shard, routing everything to it.

use crate::attestation::{host_evidence, IntegrityAttestationEnclave};
use crate::backend::snp_vnf_measurement;
use crate::crash::CrashPlan;
use crate::lifecycle::{verify_handover, CaRotation};
use crate::manager::{ManagerConfig, RecoveryReport, TcbPolicy, VerificationManager};
use crate::overload::{AdmissionConfig, AdmissionController};
use crate::replication::{ReplicaSet, ReplicationConfig, StandbyNode};
use crate::revocation::RevocationNotifier;
use crate::service::VmService;
use crate::CoreError;
use std::sync::Arc;
use std::time::Duration;
use vnfguard_container::host::ContainerHost;
use vnfguard_container::image::Image;
use vnfguard_container::registry::Registry;
use vnfguard_controller::{Controller, ControllerConfig, SecurityMode, SimClock};
use vnfguard_attest::snp::{
    launch_measurement, normalize_measurement, AmdRoot, SnpPlatform, SnpVerifier,
};
use vnfguard_attest::BackendKind;
use vnfguard_crypto::ed25519::SigningKey;
// backend-opt-out: the testbed assembles concrete TEE stacks — the IAS
// simulation is the SGX hosts' verification collateral, exactly as the
// AmdRoot above is the SNP hosts'.
use vnfguard_ias::AttestationService;
use vnfguard_ima::appraisal::Verdict;
use vnfguard_ima::list::IMA_PCR;
use vnfguard_ima::tpm::SimTpm;
use vnfguard_net::fabric::Network;
use vnfguard_net::fault::FaultPlan;
use vnfguard_pki::cert::Certificate;
use vnfguard_pki::{KeyStore, RevocationPolicy, TrustStore};
// backend-opt-out: the testbed *builds* the SGX hosts, shard platforms
// and state-vault enclaves — agent-side platform plumbing, not relying-
// party appraisal (which goes through vnfguard-attest backends).
use vnfguard_sgx::enclave::Enclave;
use vnfguard_sgx::measurement::Measurement;
use vnfguard_sgx::platform::{PlatformConfig, SgxPlatform};
use vnfguard_sgx::sigstruct::EnclaveAuthor;
use vnfguard_sgx::transition::TransitionModel;
use vnfguard_store::{Media, StateStore, StateVault};
use vnfguard_net::server::ServerHandle;
use vnfguard_telemetry::{HealthMonitor, Telemetry};
use vnfguard_tls::signer::LocalSigner;
use vnfguard_tls::validate::ClientValidator;
use vnfguard_vnf::credential_enclave::CredentialEnclave;
use vnfguard_vnf::VnfGuard;

/// How the trusted-HTTPS controller validates clients (E5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationModel {
    /// CA-signature validation (the paper's design).
    Ca,
    /// Per-client keystore membership (Floodlight's native model).
    Keystore,
}

/// One TEE-capable container host in the testbed.
///
/// Every host carries the SGX stack (platform + integrity enclave); a host
/// whose [`backend`](Self::backend) is [`BackendKind::SevSnp`] additionally
/// carries a provisioned [`SnpPlatform`] and attests as a confidential VM:
/// its evidence is an SNP attestation report over the same integrity
/// measurement list and the same REPORT_DATA bindings, appraised offline —
/// the SGX quote path is never exercised for it (and the host is not even
/// registered with IAS, so an accidental SGX quote fails closed).
pub struct TestbedHost {
    pub id: String,
    /// Which attestation backend this host enrolls under.
    pub backend: BackendKind,
    pub platform: SgxPlatform,
    /// The SNP chip + CVM identity, for [`BackendKind::SevSnp`] hosts.
    /// Public so fault drills can arm [`SnpFault`](vnfguard_attest::snp::SnpFault)
    /// hooks (forged signature, stale VCEK, debug policy) post-build.
    pub snp: Option<SnpPlatform>,
    pub container_host: ContainerHost,
    pub integrity_enclave: Enclave,
    pub tpm: Option<SimTpm>,
    tpm_synced_entries: usize,
}

impl TestbedHost {
    /// Extend the TPM with any measurement-list entries recorded since the
    /// last sync (the kernel does this on every measurement; the testbed
    /// batches it before attestation).
    pub fn sync_tpm(&mut self) {
        let entries = self.container_host.measurement_list().entries();
        // A rewound/replaced list can be *shorter* than what was already
        // extended — the TPM cannot rewind, so nothing more is extended and
        // the divergence surfaces at attestation.
        let start = self.tpm_synced_entries.min(entries.len());
        if let Some(tpm) = &mut self.tpm {
            for entry in &entries[start..] {
                tpm.extend(IMA_PCR, &entry.template_hash);
            }
        }
        self.tpm_synced_entries = self.tpm_synced_entries.max(entries.len());
    }
}

/// Builder for [`Testbed`].
pub struct TestbedBuilder {
    seed: Vec<u8>,
    mode: SecurityMode,
    validation: ValidationModel,
    host_count: usize,
    default_backend: BackendKind,
    host_backends: Vec<(usize, BackendKind)>,
    with_tpm: bool,
    tcb_policy: TcbPolicy,
    transition_spin: (u64, u64),
    controller_addr: String,
    degraded: Option<(bool, u64)>,
    telemetry: Option<Telemetry>,
    durable: bool,
    wal_compaction: u64,
    crash_plan: Option<CrashPlan>,
    pending_enrollment_ttl: Option<u64>,
    tracing: Option<f64>,
    renewal_window: Option<u64>,
    crl_lifetime: Option<u64>,
    rotation_drain: Option<u64>,
    revocation_policy: Option<RevocationPolicy>,
    replicas: usize,
    replication_config: Option<ReplicationConfig>,
    faults: Option<FaultPlan>,
    shards: usize,
    group_commit: bool,
    wal_write_latency: Option<Duration>,
    admission: Option<AdmissionConfig>,
    health: bool,
}

impl TestbedBuilder {
    pub fn new(seed: &[u8]) -> TestbedBuilder {
        TestbedBuilder {
            seed: seed.to_vec(),
            mode: SecurityMode::TrustedHttps,
            validation: ValidationModel::Ca,
            host_count: 1,
            default_backend: BackendKind::SgxEpid,
            host_backends: Vec::new(),
            with_tpm: false,
            tcb_policy: TcbPolicy::Strict,
            transition_spin: (0, 0),
            controller_addr: "controller:8443".into(),
            degraded: None,
            telemetry: None,
            durable: false,
            wal_compaction: 256,
            crash_plan: None,
            pending_enrollment_ttl: None,
            tracing: None,
            renewal_window: None,
            crl_lifetime: None,
            rotation_drain: None,
            revocation_policy: None,
            replicas: 0,
            replication_config: None,
            faults: None,
            shards: 1,
            group_commit: false,
            wal_write_latency: None,
            admission: None,
            health: false,
        }
    }

    pub fn mode(mut self, mode: SecurityMode) -> TestbedBuilder {
        self.mode = mode;
        self
    }

    pub fn validation(mut self, validation: ValidationModel) -> TestbedBuilder {
        self.validation = validation;
        self
    }

    pub fn hosts(mut self, count: usize) -> TestbedBuilder {
        self.host_count = count;
        self
    }

    /// Attestation backend for every host that has no per-host override
    /// (default [`BackendKind::SgxEpid`] — the paper's deployment).
    /// Building with any SEV-SNP host also provisions the model AMD root
    /// and wires an offline [`SnpVerifier`] into the service handle.
    pub fn backend(mut self, kind: BackendKind) -> TestbedBuilder {
        self.default_backend = kind;
        self
    }

    /// Override one host's attestation backend — mixed SGX+SNP fleets.
    /// The last override for an index wins.
    pub fn host_backend(mut self, host_idx: usize, kind: BackendKind) -> TestbedBuilder {
        self.host_backends.push((host_idx, kind));
        self
    }

    pub fn with_tpm(mut self) -> TestbedBuilder {
        self.with_tpm = true;
        self
    }

    pub fn tcb_policy(mut self, policy: TcbPolicy) -> TestbedBuilder {
        self.tcb_policy = policy;
        self
    }

    /// Calibrated enclave-transition cost (ecall spin, oret spin).
    pub fn transition_cost(mut self, ecall: u64, oret: u64) -> TestbedBuilder {
        self.transition_spin = (ecall, oret);
        self
    }

    /// Opt the Verification Manager in to graceful degradation (cached
    /// trusted verdicts honored for `ttl_secs` when IAS is unreachable).
    pub fn degraded(mut self, enabled: bool, ttl_secs: u64) -> TestbedBuilder {
        self.degraded = Some((enabled, ttl_secs));
        self
    }

    /// Share an existing telemetry bundle instead of creating a fresh one
    /// (lets a harness aggregate several testbeds, or pass
    /// [`Telemetry::disabled`] to measure instrumentation overhead).
    pub fn telemetry(mut self, telemetry: Telemetry) -> TestbedBuilder {
        self.telemetry = Some(telemetry);
        self
    }

    /// Give the Verification Manager a sealed write-ahead log on a crash-
    /// surviving medium, enabling [`Testbed::recover_vm`].
    pub fn durable(mut self) -> TestbedBuilder {
        self.durable = true;
        self
    }

    /// Log-frame threshold for WAL snapshot compaction (default 256; `0`
    /// disables compaction). Only meaningful with [`durable`](Self::durable).
    pub fn wal_compaction(mut self, frames: u64) -> TestbedBuilder {
        self.wal_compaction = frames;
        self
    }

    /// Partition the Verification Manager into `n` shards keyed by VNF
    /// identity (clamped to at least 1). Shard 0 is the authority shard:
    /// CA, CRL, rotation, and host attestation stay there, while
    /// enrollment and renewal state spread across all shards with
    /// disjoint serial spans. Each shard gets its own sealed WAL when
    /// the testbed is [`durable`](Self::durable).
    pub fn shards(mut self, n: usize) -> TestbedBuilder {
        self.shards = n.max(1);
        self
    }

    /// Coalesce concurrent WAL appends on each shard into single group
    /// frames (one media flush per group) instead of one flush per
    /// record. WAL-before-response semantics are preserved: a workflow
    /// call still returns only after its records are sealed on media.
    pub fn group_commit(mut self, enabled: bool) -> TestbedBuilder {
        self.group_commit = enabled;
        self
    }

    /// Model the flush cost of cloud block storage: every media flush on
    /// every shard WAL sleeps for `latency`. With sharding the sleeps of
    /// different shards overlap across server threads, and with
    /// [`group_commit`](Self::group_commit) a whole workflow pays one
    /// sleep instead of one per record — the effects E15 measures.
    pub fn wal_write_latency(mut self, latency: Duration) -> TestbedBuilder {
        self.wal_write_latency = Some(latency);
        self
    }

    /// Attach a crash-injection plan to the Verification Manager. The plan
    /// is shared across every shard (whichever shard first reaches an
    /// armed site crashes) and survives [`Testbed::recover_vm`] so
    /// multi-crash schedules replay across incarnations.
    pub fn crash_plan(mut self, plan: CrashPlan) -> TestbedBuilder {
        self.crash_plan = Some(plan);
        self
    }

    /// Expire prepared-but-uncommitted enrollments after `secs` (see
    /// `VerificationManager::sweep_pending_enrollments`).
    pub fn pending_enrollment_ttl(mut self, secs: u64) -> TestbedBuilder {
        self.pending_enrollment_ttl = Some(secs);
        self
    }

    /// Flag credentials for renewal `secs` before expiry (see
    /// `VerificationManager::certs_expiring`).
    pub fn renewal_window(mut self, secs: u64) -> TestbedBuilder {
        self.renewal_window = Some(secs);
        self
    }

    /// `next_update` horizon of CRLs issued by the VM.
    pub fn crl_lifetime(mut self, secs: u64) -> TestbedBuilder {
        self.crl_lifetime = Some(secs);
        self
    }

    /// Length of the dual-trust window after a CA rotation.
    pub fn rotation_drain(mut self, secs: u64) -> TestbedBuilder {
        self.rotation_drain = Some(secs);
        self
    }

    /// Revocation posture of the controller's trust store when its cached
    /// CRL goes stale (CA validation model only; default fail-open).
    pub fn revocation_policy(mut self, policy: RevocationPolicy) -> TestbedBuilder {
        self.revocation_policy = Some(policy);
        self
    }

    /// Replicate each shard's WAL to `n` standby managers over the fabric
    /// (implies [`durable`](Self::durable)), enabling
    /// [`Testbed::kill_primary`] and [`Testbed::promote`]. Every shard
    /// gets its own standby set with its own sequence space; `promote`
    /// fails over the authority shard.
    pub fn replicas(mut self, n: usize) -> TestbedBuilder {
        self.replicas = n;
        if n > 0 {
            self.durable = true;
        }
        self
    }

    /// Override the replication tuning (window, retention, link retries).
    pub fn replication_config(mut self, config: ReplicationConfig) -> TestbedBuilder {
        self.replication_config = Some(config);
        self
    }

    /// Install a fault plan on the fabric *before* any link is dialed.
    /// Unlike a post-build `Network::install_faults`, this also governs the
    /// long-lived links the testbed itself establishes — notably the
    /// primary-to-standby replication connections, which a later `isolate`
    /// or `partition` can then sever.
    pub fn faults(mut self, plan: FaultPlan) -> TestbedBuilder {
        self.faults = Some(plan);
        self
    }

    /// Put the VM service behind an admission controller with the default
    /// queue bounds: requests queue per priority class in front of the
    /// shard locks and are shed with a retry hint once a class's queue
    /// fills or its sojourn time stays above the CoDel target.
    pub fn admission(self) -> TestbedBuilder {
        self.admission_config(AdmissionConfig::default())
    }

    /// Like [`TestbedBuilder::admission`], with explicit queue bounds.
    pub fn admission_config(mut self, config: AdmissionConfig) -> TestbedBuilder {
        self.admission = Some(config);
        self
    }

    /// Enable the health plane: a [`HealthMonitor`] with the default SLO
    /// set (availability 99% + latency p95 ≤ 100ms per workclass) attached
    /// to the service handle, so every gated request feeds the burn-rate
    /// alert pipeline and `GET /vm/health` serves a full snapshot.
    pub fn health(mut self) -> TestbedBuilder {
        self.health = true;
        self
    }

    /// Enable end-to-end distributed tracing: seed the deployment's trace-id
    /// generator from the testbed seed (ids stay reproducible run-to-run),
    /// head-sample new traces at `sample_rate` (clamped to `0.0..=1.0`), and
    /// serve the controller's north-bound API with trace instrumentation.
    pub fn tracing(mut self, sample_rate: f64) -> TestbedBuilder {
        self.tracing = Some(sample_rate);
        self
    }

    pub fn build(self) -> Testbed {
        let shard_count = self.shards.max(1);
        let network = Network::new();
        let clock = SimClock::at(1_600_000_000);
        let telemetry = self.telemetry.unwrap_or_default();
        network.set_telemetry(&telemetry);
        if let Some(plan) = &self.faults {
            network.install_faults(plan);
        }
        if let Some(rate) = self.tracing {
            use vnfguard_crypto::drbg::SecureRandom;
            let mut drbg = vnfguard_crypto::drbg::HmacDrbg::new(
                &[&self.seed[..], b"trace ids"].concat(),
            );
            telemetry.seed_trace_ids(u64::from_be_bytes(drbg.gen_array::<8>()));
            telemetry.set_trace_sampling(rate);
        }
        let mut ias = AttestationService::new(&self.seed);
        ias.set_telemetry(&telemetry);

        // Per-host backend assignment (last override wins), and — when any
        // host is a SEV-SNP confidential VM — the model AMD root plus the
        // offline verifier that appraises against it. Pure-SGX testbeds
        // provision neither, so their builds stay bit-identical to before.
        let backend_kinds: Vec<BackendKind> = (0..self.host_count)
            .map(|i| {
                self.host_backends
                    .iter()
                    .rev()
                    .find(|(host, _)| *host == i)
                    .map(|&(_, kind)| kind)
                    .unwrap_or(self.default_backend)
            })
            .collect();
        let any_snp = backend_kinds.contains(&BackendKind::SevSnp);
        let amd_root = any_snp.then(|| {
            AmdRoot::new(&vnfguard_crypto::sha2::sha256(
                &[&self.seed[..], b"amd root"].concat(),
            ))
        });
        let snp_verifier = amd_root
            .as_ref()
            .map(|root| SnpVerifier::new(root.ark_public(), clock.clone()));

        let mut vm_config = ManagerConfig::builder()
            .tcb_policy(self.tcb_policy)
            .require_tpm(self.with_tpm);
        if let Some((enabled, ttl_secs)) = self.degraded {
            vm_config = vm_config.degraded_verdicts(enabled, ttl_secs);
        }
        if let Some(ttl) = self.pending_enrollment_ttl {
            vm_config = vm_config.pending_enrollment_ttl_secs(ttl);
        }
        if let Some(secs) = self.renewal_window {
            vm_config = vm_config.renewal_window_secs(secs);
        }
        if let Some(secs) = self.crl_lifetime {
            vm_config = vm_config.crl_lifetime_secs(secs);
        }
        if let Some(secs) = self.rotation_drain {
            vm_config = vm_config.rotation_drain_secs(secs);
        }
        let vm_config = vm_config.build().expect("testbed manager config is valid");

        // The enclave author whose MRSIGNER the deployment trusts.
        let enclave_author = EnclaveAuthor::from_seed(&vnfguard_crypto::sha2::sha256(
            &[&self.seed[..], b"enclave author"].concat(),
        ));

        // One SGX platform per shard — each hosts its own state vault
        // enclave, so each shard's sealed WAL blobs only ever open on its
        // own platform. Shard 0 keeps the historical single-manager seed
        // label so single-shard deployments are bit-identical to before.
        let mut shard_platforms = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            let label = if s == 0 {
                b"vm platform".to_vec()
            } else {
                format!("vm shard {s} platform").into_bytes()
            };
            shard_platforms.push(SgxPlatform::with_config(
                &vnfguard_crypto::sha2::sha256(&[&self.seed[..], &label[..]].concat()),
                PlatformConfig::default(),
                TransitionModel::new(0, 0),
            ));
        }

        // One medium + sealed store per shard.
        let mut shard_media: Vec<Option<Media>> = Vec::with_capacity(shard_count);
        let mut shard_stores: Vec<Option<StateStore>> = Vec::with_capacity(shard_count);
        for platform in shard_platforms.iter().take(shard_count) {
            let media = self.durable.then(Media::new);
            if let (Some(media), Some(latency)) = (&media, self.wal_write_latency) {
                media.set_write_latency(latency);
            }
            let store = media.as_ref().map(|media| {
                let vault = StateVault::load(platform, &enclave_author)
                    .expect("state vault loads on the shard platform");
                StateStore::new(media.clone(), vault)
                    .with_compaction(self.wal_compaction)
                    .with_group_commit(self.group_commit)
            });
            shard_media.push(media);
            shard_stores.push(store);
        }

        // Standbys come up before the managers so the very first journaled
        // record (the controller's server certificate) already streams:
        // each standby runs its own vault on its own platform and re-seals
        // what it receives into its own media. Every shard replicates into
        // its own standby set — sequence spaces are per shard.
        let mut standbys = Vec::with_capacity(self.replicas);
        let mut standby_media = Vec::with_capacity(self.replicas);
        let mut standby_platforms = Vec::with_capacity(self.replicas);
        let mut replication = None;
        let mut follower_replication = Vec::new();
        let replication_config = self.replication_config.clone().unwrap_or_default();
        if self.replicas > 0 {
            for (s, shard_store) in shard_stores.iter().enumerate() {
                let store = shard_store.as_ref().expect("replicas imply durable");
                let mut addrs = Vec::with_capacity(self.replicas);
                let mut nodes = Vec::with_capacity(self.replicas);
                let mut medias = Vec::with_capacity(self.replicas);
                let mut platforms = Vec::with_capacity(self.replicas);
                for i in 0..self.replicas {
                    let label = if s == 0 {
                        format!("vm standby {i} platform")
                    } else {
                        format!("vm shard {s} standby {i} platform")
                    };
                    let platform = SgxPlatform::with_config(
                        &vnfguard_crypto::sha2::sha256(
                            &[&self.seed[..], label.as_bytes()].concat(),
                        ),
                        PlatformConfig::default(),
                        TransitionModel::new(0, 0),
                    );
                    let vault = StateVault::load(&platform, &enclave_author)
                        .expect("state vault loads on the standby platform");
                    let media = Media::new();
                    let standby_store = StateStore::new(media.clone(), vault)
                        .with_compaction(self.wal_compaction);
                    let addr = if s == 0 {
                        format!("vm-standby-{i}:7600")
                    } else {
                        format!("vm-shard-{s}-standby-{i}:7600")
                    };
                    let node = StandbyNode::spawn(
                        &network,
                        &addr,
                        standby_store,
                        clock.clone(),
                        telemetry.clone(),
                        0,
                    )
                    .expect("standby binds its fabric address");
                    addrs.push(addr);
                    nodes.push(node);
                    medias.push(media);
                    platforms.push(platform);
                }
                let set = ReplicaSet::new(
                    &network,
                    &addrs,
                    0,
                    1,
                    replication_config.clone(),
                    clock.clone(),
                    telemetry.clone(),
                );
                set.attach_store(store.clone());
                store.set_observer(Arc::new(set.clone()));
                if s == 0 {
                    standbys = nodes;
                    standby_media = medias;
                    standby_platforms = platforms;
                    replication = Some(set);
                } else {
                    follower_replication.push(FollowerReplica {
                        shard: s,
                        set,
                        standbys: nodes,
                    });
                }
            }
        }

        // The manager fleet. Every shard derives from the same seed (so CA
        // key, root certificate, and HMAC key agree everywhere), then
        // `set_shard` moves non-authority shards onto their disjoint
        // serial/challenge spans and reseeds their nonce generators.
        let mut managers = Vec::with_capacity(shard_count);
        for (s, store) in shard_stores.iter().enumerate() {
            let mut manager = VerificationManager::with_runtime(
                vm_config.clone(),
                &self.seed,
                clock.clone(),
                telemetry.clone(),
            );
            if let Some(store) = store {
                manager = manager.with_store(store.clone());
            }
            if let Some(plan) = &self.crash_plan {
                manager = manager.with_crash_plan(plan.clone());
            }
            if s == 0 {
                if let Some(set) = &replication {
                    manager.with_replication(set.clone());
                }
            } else if let Some(f) = follower_replication.iter().find(|f| f.shard == s) {
                manager.with_replication(f.set.clone());
            }
            manager.set_shard(s as u32, shard_count as u32);
            managers.push(manager);
        }
        let mut vm = VmService::from_shards(managers);
        if let Some(verifier) = &snp_verifier {
            vm = vm.with_snp_verifier(verifier.clone());
        }
        if let Some(config) = self.admission {
            vm = vm.with_admission(Arc::new(AdmissionController::instrumented(
                config,
                clock.clone(),
                &telemetry,
            )));
        }
        if self.health {
            vm = vm.with_health(HealthMonitor::with_defaults(&telemetry));
        }

        let mut notifier = RevocationNotifier::new(&network).with_telemetry(&telemetry);
        if let Some(store) = &shard_stores[0] {
            notifier = notifier.with_store(store.clone());
        }

        // Whitelist the integrity attestation enclave and seed every
        // shard's host reference database with the standard software stack.
        vm.trust_integrity_enclave(
            IntegrityAttestationEnclave::expected_measurement(1),
            "integrity-attestation-v1",
        );
        for (path, content) in STANDARD_HOST_FILES {
            vm.allow_reference_content(path, content);
        }

        // SNP hosts all boot the standard CVM host image; whitelist its
        // launch measurement under the SNP backend (journaled into the
        // trust log so recovered incarnations re-learn it). The SGX
        // integrity-enclave whitelist above cannot satisfy SNP evidence —
        // whitelists key on (backend, measurement).
        let mut trust_log = Vec::new();
        let snp_host_measurement = launch_measurement(SNP_HOST_IMAGE);
        if any_snp {
            let measurement = Measurement(normalize_measurement(&snp_host_measurement));
            vm.trust_integrity_enclave_for(
                BackendKind::SevSnp,
                measurement,
                "snp-host-cvm-v1",
            );
            trust_log.push(TrustAction::TrustIntegrity(
                BackendKind::SevSnp,
                measurement,
                "snp-host-cvm-v1".to_string(),
            ));
        }

        // Controller identity and client validation.
        let controller_cn = "controller".to_string();
        let server_key = SigningKey::from_seed(&vnfguard_crypto::sha2::sha256(
            &[&self.seed[..], b"controller key"].concat(),
        ));
        let server_cert = vm.issue_server_certificate(&controller_cn, server_key.public_key());
        let server_identity = Arc::new(LocalSigner::new(server_key, server_cert));

        let validator = match self.validation {
            ValidationModel::Ca => {
                let mut store = TrustStore::new();
                store
                    .add_anchor(vm.ca_certificate())
                    .expect("VM CA is a valid anchor");
                if let Some(policy) = self.revocation_policy {
                    store.set_revocation_policy(policy);
                }
                ClientValidator::ca(store)
            }
            ValidationModel::Keystore => ClientValidator::keystore(KeyStore::new()),
        };

        let mut controller_config = match self.mode {
            SecurityMode::Http => ControllerConfig::http(&self.controller_addr),
            SecurityMode::Https => {
                ControllerConfig::https(&self.controller_addr, server_identity.clone())
            }
            SecurityMode::TrustedHttps => ControllerConfig::trusted_https(
                &self.controller_addr,
                server_identity.clone(),
                validator.clone(),
            ),
        }
        .with_clock(clock.clone());
        if self.tracing.is_some() {
            controller_config = controller_config.with_telemetry(&telemetry);
        }
        let controller =
            Controller::start(&network, controller_config).expect("controller start");

        let mut hosts = Vec::with_capacity(self.host_count);
        for (i, &backend) in backend_kinds.iter().enumerate() {
            let id = format!("host-{i}");
            let platform_seed = [&self.seed[..], id.as_bytes()].concat();
            let platform = SgxPlatform::with_config(
                &platform_seed,
                PlatformConfig::default(),
                TransitionModel::new(self.transition_spin.0, self.transition_spin.1),
            );
            // Only SGX hosts join the EPID group. An SNP host that somehow
            // produced an SGX quote would be refused by IAS — cross-backend
            // confusion fails closed at the membership layer too.
            if backend == BackendKind::SgxEpid {
                ias.register_member(
                    platform.epid_group_id(),
                    platform.attestation_public_key(),
                );
            }
            let snp = (backend == BackendKind::SevSnp).then(|| {
                SnpPlatform::provision(
                    amd_root.as_ref().expect("SNP hosts imply an AMD root"),
                    &[&platform_seed[..], b" snp"].concat(),
                    snp_host_measurement,
                    1,
                )
            });
            let container_host = ContainerHost::standard(&id);
            let integrity_enclave =
                IntegrityAttestationEnclave::load(&platform, &enclave_author, 1)
                    .expect("integrity enclave load");
            let tpm = if self.with_tpm {
                let tpm = SimTpm::new(&vnfguard_crypto::sha2::sha256(
                    &[&platform_seed[..], b"tpm"].concat(),
                ));
                vm.register_host_tpm(&id, tpm.aik_public());
                Some(tpm)
            } else {
                None
            };
            hosts.push(TestbedHost {
                id,
                backend,
                platform,
                snp,
                container_host,
                integrity_enclave,
                tpm,
                tpm_synced_entries: 0,
            });
        }

        Testbed {
            network,
            clock,
            telemetry,
            ias,
            vm,
            notifier,
            controller,
            controller_addr: self.controller_addr,
            controller_cn,
            registry: Registry::new(),
            hosts,
            enclave_author,
            mode: self.mode,
            validation: self.validation,
            seed: self.seed,
            vm_config,
            shard_platforms,
            shard_media,
            group_commit: self.group_commit,
            crash_plan: self.crash_plan,
            wal_compaction: self.wal_compaction,
            trust_log,
            amd_root,
            snp_verifier,
            replication,
            standbys,
            standby_media,
            standby_platforms,
            follower_replication,
            replication_config,
        }
    }
}

/// The standard host software stack (must match [`ContainerHost::standard`]).
const STANDARD_HOST_FILES: &[(&str, &[u8])] = &[
    ("/boot/vmlinuz-4.4.0-51-generic", b"kernel 4.4.0-51"),
    ("/usr/bin/dockerd", b"docker daemon 1.12.2"),
    ("/usr/bin/containerd", b"containerd 0.2.x"),
    ("/sbin/init", b"systemd 229"),
];

/// The confidential-VM host image every SNP testbed host boots; its launch
/// measurement is what the Verification Manager whitelists for SNP host
/// attestation.
const SNP_HOST_IMAGE: &[u8] = b"snp host cvm image v1";

/// Config-time trust decisions made after build, replayed into a recovered
/// manager (they are deployment inputs, not journaled state transitions).
/// Each whitelist entry records the backend it was granted under —
/// recovery must re-learn SNP trust as SNP trust, never as SGX trust.
enum TrustAction {
    TrustEnclave(BackendKind, Measurement, String),
    TrustIntegrity(BackendKind, Measurement, String),
    AllowContent(String, Vec<u8>),
}

/// Replication assets of a non-authority shard. The authority shard keeps
/// the testbed's historical top-level fields (`standbys`, `replication`)
/// so `promote` and the failover drills keep their shape.
struct FollowerReplica {
    shard: usize,
    set: ReplicaSet,
    standbys: Vec<StandbyNode>,
}

/// The assembled deployment.
pub struct Testbed {
    pub network: Network,
    pub clock: SimClock,
    /// The deployment-wide telemetry bundle (shared by fabric, IAS, and
    /// every Verification Manager shard).
    pub telemetry: Telemetry,
    pub ias: AttestationService,
    /// The sharded Verification Manager behind its service handle. Clone
    /// it ([`Testbed::vm_service`]) to serve the operator API or to drive
    /// the fleet from concurrent client threads.
    pub vm: VmService,
    /// Store-and-forward revocation notifier, journaling into the
    /// authority shard's WAL when the testbed is durable.
    pub notifier: RevocationNotifier,
    pub controller: Controller,
    pub controller_addr: String,
    pub controller_cn: String,
    pub registry: Registry,
    pub hosts: Vec<TestbedHost>,
    pub enclave_author: EnclaveAuthor,
    pub mode: SecurityMode,
    pub validation: ValidationModel,
    seed: Vec<u8>,
    vm_config: ManagerConfig,
    /// Each shard's SGX platform (its vault seals only open there).
    shard_platforms: Vec<SgxPlatform>,
    /// Each shard's crash-surviving medium (`None`: volatile testbed).
    shard_media: Vec<Option<Media>>,
    group_commit: bool,
    crash_plan: Option<CrashPlan>,
    wal_compaction: u64,
    trust_log: Vec<TrustAction>,
    /// The model AMD certificate root, when any host is SEV-SNP.
    amd_root: Option<AmdRoot>,
    /// The deployment's offline SNP appraiser (also wired into the
    /// service handle for `serve_vm_api` dispatch).
    snp_verifier: Option<SnpVerifier>,
    /// The authority shard's replication handle (a clone of the one
    /// installed as its store's append observer); `None` when
    /// unreplicated.
    replication: Option<ReplicaSet>,
    /// The authority shard's standby managers, in builder order.
    pub standbys: Vec<StandbyNode>,
    /// Each authority standby's crash-surviving medium (parallel to
    /// `standbys`).
    standby_media: Vec<Media>,
    /// Each authority standby's SGX platform.
    standby_platforms: Vec<SgxPlatform>,
    /// Standby sets of the non-authority shards.
    follower_replication: Vec<FollowerReplica>,
    replication_config: ReplicationConfig,
}

impl Testbed {
    /// A clone of the service handle — the supported way to hand the
    /// manager fleet to `serve_vm_api` or to concurrent client threads.
    pub fn vm_service(&self) -> VmService {
        self.vm.clone()
    }

    /// How many Verification Manager shards the deployment runs.
    pub fn shard_count(&self) -> usize {
        self.vm.shard_count()
    }

    /// The model AMD certificate root, when any host is SEV-SNP.
    pub fn amd_root(&self) -> Option<&AmdRoot> {
        self.amd_root.as_ref()
    }

    /// The deployment's offline SNP appraiser (a clone is also wired into
    /// the service handle for API dispatch).
    pub fn snp_verifier(&self) -> Option<&SnpVerifier> {
        self.snp_verifier.as_ref()
    }

    /// The launch measurement every SNP testbed host boots with.
    pub fn snp_host_measurement(&self) -> [u8; 48] {
        launch_measurement(SNP_HOST_IMAGE)
    }

    /// Steps 1–2: attest a container host through the backend it was
    /// built with — SGX hosts quote through the integrity attestation
    /// enclave and verify via IAS; SNP hosts produce an attestation
    /// report over the same measurement list and REPORT_DATA binding,
    /// appraised offline against the deployment's AMD root.
    pub fn attest_host(&mut self, host_idx: usize) -> Result<Verdict, CoreError> {
        let host = &mut self.hosts[host_idx];
        let challenge = self.vm.begin_host_attestation(&host.id);
        host.sync_tpm();
        let iml = host.container_host.measurement_list().encode();
        let tpm_quote = host
            .tpm
            .as_ref()
            .map(|tpm| tpm.quote(IMA_PCR, challenge.nonce).encode());
        match host.backend {
            BackendKind::SgxEpid => {
                let evidence = host_evidence(
                    &host.platform,
                    &host.integrity_enclave,
                    &iml,
                    &challenge.nonce,
                    tpm_quote,
                )?;
                self.vm
                    .complete_host_attestation(&mut self.ias, challenge.id, &evidence)
            }
            BackendKind::SevSnp => {
                let snp = host.snp.as_ref().expect("SNP host has an SNP platform");
                let report_data =
                    crate::attestation::host_report_data(&iml, &challenge.nonce);
                let evidence = crate::attestation::HostEvidence {
                    quote: snp.attest_self(report_data),
                    iml,
                    tpm_quote,
                };
                let verifier = self
                    .snp_verifier
                    .as_mut()
                    .expect("SNP hosts imply an SNP verifier");
                self.vm
                    .complete_host_attestation_backend(verifier, challenge.id, &evidence)
            }
        }
    }

    /// Deploy a VNF container: the host runs `actual_image`, while the VM's
    /// reference database is fed the digests of `reference_image` (what the
    /// orchestrator *believes* is being deployed). Passing the same image
    /// for both models honest deployment.
    pub fn deploy_container(
        &mut self,
        host_idx: usize,
        reference_image: &Image,
        actual_image: &Image,
    ) -> Result<String, CoreError> {
        let host = &mut self.hosts[host_idx];
        let container = host
            .container_host
            .run(actual_image)
            .map_err(|e| CoreError::WorkflowViolation(e.to_string()))?;
        let id = container.id.clone();
        for (i, layer) in reference_image.layers.iter().enumerate() {
            let path = format!("/var/lib/docker/overlay2/{id}/layer-{i}");
            self.vm.allow_reference_content(&path, &layer.content);
            self.trust_log
                .push(TrustAction::AllowContent(path, layer.content.clone()));
        }
        let entrypoint = format!("/var/lib/docker/overlay2/{id}/entrypoint");
        self.vm
            .allow_reference_content(&entrypoint, &reference_image.entrypoint.content);
        self.trust_log.push(TrustAction::AllowContent(
            entrypoint,
            reference_image.entrypoint.content.clone(),
        ));
        Ok(id)
    }

    /// Load a VNF's credential enclave on a host and whitelist its
    /// measurement with the VM.
    pub fn deploy_guard(
        &mut self,
        host_idx: usize,
        vnf_name: &str,
        version: u32,
    ) -> Result<VnfGuard, CoreError> {
        let host = &self.hosts[host_idx];
        let guard = VnfGuard::load(
            &host.platform,
            &self.network,
            &self.enclave_author,
            vnf_name,
            version,
        )?;
        let label = format!("{vnf_name}-v{version}");
        match self.hosts[host_idx].backend {
            BackendKind::SgxEpid => {
                let image = CredentialEnclave::image_for(vnf_name, version);
                let measurement =
                    SgxPlatform::measure_image(&image, vnfguard_vnf::guard::ENCLAVE_SIZE);
                self.vm.trust_enclave(measurement, &label);
                self.trust_log.push(TrustAction::TrustEnclave(
                    BackendKind::SgxEpid,
                    measurement,
                    label,
                ));
            }
            BackendKind::SevSnp => {
                // On a confidential-VM host the credential workload runs
                // as its own CVM; whitelist its deterministic launch
                // measurement under the SNP backend.
                let measurement =
                    Measurement(normalize_measurement(&snp_vnf_measurement(vnf_name)));
                self.vm
                    .trust_enclave_for(BackendKind::SevSnp, measurement, &label);
                self.trust_log.push(TrustAction::TrustEnclave(
                    BackendKind::SevSnp,
                    measurement,
                    label,
                ));
            }
        }
        Ok(guard)
    }

    /// Load a guard from explicit enclave image bytes *without* whitelisting
    /// (attack scenarios: tampered enclave images).
    pub fn deploy_guard_unlisted(
        &mut self,
        host_idx: usize,
        vnf_name: &str,
        image: &[u8],
    ) -> Result<VnfGuard, CoreError> {
        let host = &self.hosts[host_idx];
        Ok(VnfGuard::load_image(
            &host.platform,
            &self.network,
            &self.enclave_author,
            vnf_name,
            image,
            1,
        )?)
    }

    /// Steps 3–5: attest the VNF enclave and provision credentials into it.
    /// Returns the issued certificate.
    pub fn enroll(
        &mut self,
        host_idx: usize,
        guard: &VnfGuard,
    ) -> Result<Certificate, CoreError> {
        let host_id = self.hosts[host_idx].id.clone();
        let challenge = self.vm.begin_vnf_attestation(&host_id, &guard.name)?;
        let provisioning_key = guard.provisioning_key()?;
        let (wrapped, certificate) = match self.hosts[host_idx].backend {
            BackendKind::SgxEpid => {
                let quote = guard.quote(
                    &self.hosts[host_idx].platform,
                    &challenge.nonce,
                    challenge.nonce,
                )?;
                self.vm.complete_vnf_enrollment(
                    &mut self.ias,
                    challenge.id,
                    &quote.encode(),
                    &provisioning_key,
                    &self.controller_cn,
                )?
            }
            BackendKind::SevSnp => {
                // The workload CVM binds the same REPORT_DATA an SGX
                // guard would: sha256(provisioning key) || nonce.
                let snp = self.hosts[host_idx]
                    .snp
                    .as_ref()
                    .expect("SNP host has an SNP platform");
                let evidence = snp.attest(
                    snp_vnf_measurement(&guard.name),
                    vnfguard_vnf::credential_enclave::provisioning_report_data(
                        &provisioning_key,
                        &challenge.nonce,
                    ),
                );
                let verifier = self
                    .snp_verifier
                    .as_mut()
                    .expect("SNP hosts imply an SNP verifier");
                self.vm.complete_vnf_enrollment_backend(
                    verifier,
                    challenge.id,
                    &evidence,
                    &provisioning_key,
                    &self.controller_cn,
                )?
            }
        };
        guard.provision(&wrapped)?;
        // Keystore validation model: the controller's keystore must be
        // updated with the new certificate (the maintenance burden the
        // paper's CA approach removes).
        if self.validation == ValidationModel::Keystore {
            if let Some(validator) = self.controller.client_validator() {
                if let Some(keystore) = validator.key_store() {
                    keystore.write().set(&guard.name, certificate.clone());
                }
            }
        }
        Ok(certificate)
    }

    /// Issue a fresh, journaled CRL on the VM and distribute it to the
    /// controller (revocation propagation; experiments E8 and E13).
    pub fn push_crl(&mut self) -> Result<(), CoreError> {
        let crl = self.vm.issue_crl()?;
        if let Some(validator) = self.controller.client_validator() {
            if let Some(store) = validator.trust_store() {
                store.write().install_crl(crl)?;
            }
        }
        Ok(())
    }

    /// Renew an enrolled guard's credential by serial: a fresh certificate
    /// is wrapped to the guard's provisioning key without re-running the
    /// six-step enrollment, provided the host's attestation verdict is
    /// still fresh. Returns the new certificate.
    pub fn renew(&mut self, guard: &VnfGuard, serial: u64) -> Result<Certificate, CoreError> {
        let provisioning_key = guard.provisioning_key()?;
        let (wrapped, certificate) =
            self.vm
                .renew_vnf_credential(serial, &provisioning_key, &self.controller_cn)?;
        guard.provision(&wrapped)?;
        if self.validation == ValidationModel::Keystore {
            if let Some(validator) = self.controller.client_validator() {
                if let Some(keystore) = validator.key_store() {
                    keystore.write().set(&guard.name, certificate.clone());
                }
            }
        }
        Ok(certificate)
    }

    /// Rotate the VM's CA to a new key, cross-signed by the old one. The
    /// controller keeps trusting the old root until
    /// [`retire_previous_roots`](Testbed::retire_previous_roots) — the
    /// dual-trust drain window.
    pub fn rotate_ca(&mut self) -> Result<CaRotation, CoreError> {
        self.vm.rotate_ca()
    }

    /// Deliver a CA rotation to the controller: verify the cross-signed
    /// handover against its existing anchors, then add the new root so
    /// both generations validate during the drain window.
    pub fn distribute_ca(&mut self, rotation: &CaRotation) -> Result<(), CoreError> {
        if let Some(validator) = self.controller.client_validator() {
            if let Some(store) = validator.trust_store() {
                let mut store = store.write();
                verify_handover(&store, &rotation.new_root, &rotation.cross_signed)?;
                store.add_anchor(rotation.new_root.clone())?;
            }
        }
        Ok(())
    }

    /// Catch the controller up on every rotation it missed: walk the VM's
    /// handover chain oldest-first and adopt each epoch not yet anchored,
    /// verifying each cross-signature against an anchor adopted one step
    /// earlier. This is the CA monitor's catch-up walk, for harnesses that
    /// rotated while the controller was out of the loop — e.g. when a
    /// crash-retry across a failover committed more than one epoch.
    /// Returns how many roots were adopted.
    pub fn distribute_ca_chain(&mut self) -> Result<usize, CoreError> {
        let chain = self.vm.ca_rotation_chain();
        let mut adopted = 0;
        if let Some(validator) = self.controller.client_validator() {
            if let Some(store) = validator.trust_store() {
                let mut store = store.write();
                for (_, root, cross) in chain {
                    let fingerprint = root.fingerprint();
                    if store.anchors().any(|a| a.fingerprint() == fingerprint) {
                        continue;
                    }
                    verify_handover(&store, &root, &cross)?;
                    store.add_anchor(root)?;
                    adopted += 1;
                }
            }
        }
        Ok(adopted)
    }

    /// End the dual-trust window: drop every controller anchor that is not
    /// the VM's current CA root. Returns how many anchors were retired.
    pub fn retire_previous_roots(&mut self) -> usize {
        let current = self.vm.ca_certificate().fingerprint();
        let cn = self.vm.ca_certificate().subject_cn().to_string();
        let mut retired = 0;
        if let Some(validator) = self.controller.client_validator() {
            if let Some(store) = validator.trust_store() {
                let mut store = store.write();
                let stale: Vec<[u8; 32]> = store
                    .anchors()
                    .filter(|a| a.subject_cn() == cn && a.fingerprint() != current)
                    .map(|a| a.fingerprint())
                    .collect();
                for fp in stale {
                    if store.remove_anchor(&fp) {
                        retired += 1;
                    }
                }
            }
        }
        retired
    }

    /// Step 6 convenience: open an in-enclave TLS session from a guard to
    /// the controller.
    pub fn open_session(&self, guard: &mut VnfGuard) -> Result<u32, CoreError> {
        Ok(guard.open_session(&self.controller_addr, self.clock.now())?)
    }

    /// The crash-surviving medium behind the authority shard's WAL, if the
    /// testbed was built [`durable`](TestbedBuilder::durable). Exposed so
    /// chaos tests can inject media faults (torn tails, flipped bytes)
    /// between crash and recovery.
    pub fn store_media(&self) -> Option<&Media> {
        self.shard_media[0].as_ref()
    }

    /// The crash-surviving medium behind one shard's WAL.
    pub fn shard_store_media(&self, shard: usize) -> Option<&Media> {
        self.shard_media.get(shard).and_then(Option::as_ref)
    }

    /// Restart the Verification Manager fleet after a crash: for every
    /// shard — authority first — reload its state vault on its own
    /// platform, replay its sealed snapshot + WAL, and swap the recovered
    /// incarnation into the service handle **in place**, so every clone of
    /// the handle (including the one `serve_vm_api` routes against) sees
    /// the new incarnations on its next call. Returns the authority
    /// shard's recovery report.
    ///
    /// Config-time trust (integrity enclave, reference files, TPM AIKs,
    /// whitelisted guard measurements) is replayed from the deployment's
    /// own records — it is input, not journaled state. Host attestations
    /// are *not* carried over: every host must re-attest to the new
    /// incarnation before further enrollments. Follower shards re-adopt
    /// the authority's rotation chain after replay, because adoption is
    /// un-journaled by design (the rotated certificates re-derive
    /// bit-identically from the shared seed).
    pub fn recover_vm(&mut self) -> Result<RecoveryReport, CoreError> {
        let shard_count = self.vm.shard_count();
        let mut authority_report = None;
        for s in 0..shard_count {
            let (vm, notifier, report) = self.recover_shard_incarnation(s)?;
            *self.vm.shard_mutex(s).lock() = vm;
            if s == 0 {
                self.notifier =
                    notifier.expect("authority shard recovery rebuilds the notifier");
                authority_report = Some(report);
            }
        }
        if shard_count > 1 {
            let chain = self.vm.ca_rotation_chain();
            let now = self.clock.now();
            for s in 1..shard_count {
                let mut shard = self.vm.shard_mutex(s).lock();
                for (epoch, root, cross) in &chain {
                    let _ = shard.adopt_rotation(*epoch, root.serial(), cross.serial(), now);
                }
            }
        }
        Ok(authority_report.expect("testbed has at least one shard"))
    }

    /// Recover one shard's incarnation from its own media. Only the
    /// authority shard owns the revocation notifier (its store-and-forward
    /// queue journals into the authority WAL).
    fn recover_shard_incarnation(
        &self,
        shard: usize,
    ) -> Result<(VerificationManager, Option<RevocationNotifier>, RecoveryReport), CoreError>
    {
        let media = self.shard_media[shard].clone().ok_or_else(|| {
            CoreError::Store(
                "testbed is not durable (build with TestbedBuilder::durable)".into(),
            )
        })?;
        let vault = StateVault::load(&self.shard_platforms[shard], &self.enclave_author)?;
        let store = StateStore::new(media, vault)
            .with_compaction(self.wal_compaction)
            .with_group_commit(self.group_commit);
        let mut notifier = (shard == 0).then(|| {
            RevocationNotifier::new(&self.network)
                .with_telemetry(&self.telemetry)
                .with_store(store.clone())
        });
        let (mut vm, report) = VerificationManager::recover(
            self.vm_config.clone(),
            &self.seed,
            self.clock.clone(),
            self.telemetry.clone(),
            store,
            notifier.as_mut(),
        )?;
        vm.trust_integrity_enclave(
            IntegrityAttestationEnclave::expected_measurement(1),
            "integrity-attestation-v1",
        );
        for (path, content) in STANDARD_HOST_FILES {
            vm.reference_db_mut().allow_content(path, content);
        }
        for host in &self.hosts {
            if let Some(tpm) = &host.tpm {
                vm.register_host_tpm(&host.id, tpm.aik_public());
            }
        }
        for action in &self.trust_log {
            match action {
                TrustAction::TrustEnclave(backend, measurement, label) => {
                    vm.trust_enclave_for(*backend, *measurement, label);
                }
                TrustAction::TrustIntegrity(backend, measurement, label) => {
                    vm.trust_integrity_enclave_for(*backend, *measurement, label);
                }
                TrustAction::AllowContent(path, content) => {
                    vm.reference_db_mut().allow_content(path, content);
                }
            }
        }
        if let Some(plan) = &self.crash_plan {
            vm = vm.with_crash_plan(plan.clone());
        }
        // Replay restored the journaled allocator high-water marks; the
        // shard floors are max-semantics, so re-applying them is safe.
        vm.set_shard(shard as u32, self.vm.shard_count() as u32);
        Ok((vm, notifier, report))
    }

    /// Detach the authority shard's current incarnation — e.g. to keep a
    /// partitioned-away zombie primary alive across a failover drill —
    /// leaving a fresh placeholder incarnation behind in the service
    /// handle so the testbed's own methods keep working.
    pub fn detach_primary(&mut self) -> VerificationManager {
        let placeholder = VerificationManager::with_runtime(
            self.vm_config.clone(),
            &self.seed,
            self.clock.clone(),
            self.telemetry.clone(),
        );
        std::mem::replace(&mut *self.vm.shard_mutex(0).lock(), placeholder)
    }

    /// The authority shard's replication handle, when built with
    /// [`replicas`](TestbedBuilder::replicas).
    pub fn replication(&self) -> Option<&ReplicaSet> {
        self.replication.as_ref()
    }

    /// One shard's replication handle (shard 0 is the authority).
    pub fn shard_replication(&self, shard: usize) -> Option<&ReplicaSet> {
        if shard == 0 {
            self.replication.as_ref()
        } else {
            self.follower_replication
                .iter()
                .find(|f| f.shard == shard)
                .map(|f| &f.set)
        }
    }

    /// One shard's standby nodes (empty when unreplicated).
    pub fn shard_standbys(&self, shard: usize) -> &[StandbyNode] {
        if shard == 0 {
            &self.standbys
        } else {
            self.follower_replication
                .iter()
                .find(|f| f.shard == shard)
                .map(|f| &f.standbys[..])
                .unwrap_or(&[])
        }
    }

    /// Stand up the fleet health plane over the fabric: one
    /// `GET /standby/health` server per authority standby (at
    /// `health-<standby addr>`) plus a
    /// [`FleetMonitor`](crate::fleet::FleetMonitor) registered against
    /// the primary's API at `vm_addr` and every standby endpoint. The
    /// caller adds host agents it launched via
    /// [`FleetMonitor::add_agent`](crate::fleet::FleetMonitor::add_agent),
    /// and must keep the returned
    /// [`ServerHandle`]s alive for as long as the monitor scrapes.
    ///
    /// The primary's API itself is served separately
    /// ([`serve_vm_api`](crate::remote::serve_vm_api)) — this helper only
    /// wires the observers.
    pub fn fleet_monitor(
        &self,
        origin: &str,
        vm_addr: &str,
    ) -> Result<(crate::fleet::FleetMonitor, Vec<ServerHandle>), CoreError> {
        let mut monitor = crate::fleet::FleetMonitor::new(
            self.network.clone(),
            self.clock.clone(),
            origin,
            &self.telemetry,
        );
        monitor.add_vm("vm-primary", vm_addr);
        let mut handles = Vec::with_capacity(self.standbys.len());
        for (i, standby) in self.standbys.iter().enumerate() {
            let health_addr = format!("health-{}", standby.addr());
            handles.push(crate::fleet::serve_standby_health(
                &self.network,
                &health_addr,
                standby.status_probe(),
                self.clock.clone(),
            )?);
            monitor.add_standby(&format!("vm-standby-{i}"), &health_addr);
        }
        Ok((monitor, handles))
    }

    /// Node-loss injection: kill the Verification Manager fleet in place.
    /// Every later call on it fails [`CoreError::VmCrashed`]; the standbys
    /// keep everything it journaled. Follow with
    /// [`promote`](Self::promote) to fail over the authority shard.
    pub fn kill_primary(&mut self, reason: &str) {
        self.vm.halt(reason);
    }

    /// True once every authority standby's view of the primary is staler
    /// than `timeout_secs` — the missed-heartbeat promotion trigger for
    /// operators who poll instead of being told.
    pub fn failover_due(&self, timeout_secs: u64) -> bool {
        !self.standbys.is_empty()
            && self
                .standbys
                .iter()
                .all(|s| s.primary_suspect(timeout_secs))
    }

    /// Deterministic failover: promote the authority standby with the
    /// highest contiguous WAL high-water mark (lowest builder index on
    /// ties) to primary.
    ///
    /// The chosen standby stops accepting frames and its store is
    /// recovered through the exact crash-recovery path — CA and HMAC keys
    /// re-derive from the deployment seed, serial and CRL-number
    /// high-water marks reconcile from the replayed state, orphaned
    /// two-phase enrollments abort via the grace-TTL sweep, and the
    /// failed primary's undelivered revocation notices are requeued and
    /// drained. The surviving standbys (and the new primary's frames)
    /// move to `epoch + 1`, fencing the old primary: its next append is
    /// rejected and the operation fails instead of committing into a dead
    /// timeline. The recovered incarnation is swapped into the service
    /// handle in place, so API servers keep routing to the same handle.
    pub fn promote(&mut self) -> Result<PromotionReport, CoreError> {
        if self.standbys.is_empty() {
            return Err(CoreError::ServiceUnavailable(
                "no standbys to promote (build with TestbedBuilder::replicas)".into(),
            ));
        }
        let chosen = self
            .standbys
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.status().next_seq))
            .max_by_key(|&(i, next_seq)| (next_seq, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("standbys is non-empty");
        let node = self.standbys.remove(chosen);
        let media = self.standby_media.remove(chosen);
        let platform = self.standby_platforms.remove(chosen);
        let high_water = node.status().next_seq - 1;
        node.stop();
        let old_epoch = self.replication.as_ref().map_or(0, ReplicaSet::epoch);
        let new_epoch = old_epoch + 1;
        for standby in &self.standbys {
            standby.set_epoch(new_epoch);
        }
        let store = node.store();
        let survivors: Vec<String> = self
            .standbys
            .iter()
            .map(|s| s.addr().to_string())
            .collect();
        let set = ReplicaSet::new(
            &self.network,
            &survivors,
            new_epoch,
            high_water + 1,
            self.replication_config.clone(),
            self.clock.clone(),
            self.telemetry.clone(),
        );
        set.attach_store(store.clone());
        // Observer before recovery: the records recovery itself journals
        // (orphan aborts, RecoveryCompleted) stream to the survivors at
        // the new epoch; a survivor that was lagging answers with a gap
        // ack and is caught up from the retained buffer or a snapshot.
        store.set_observer(Arc::new(set.clone()));
        let mut notifier = RevocationNotifier::new(&self.network)
            .with_telemetry(&self.telemetry)
            .with_store(store.clone());
        let (mut vm, recovery) = VerificationManager::recover(
            self.vm_config.clone(),
            &self.seed,
            self.clock.clone(),
            self.telemetry.clone(),
            store,
            Some(&mut notifier),
        )?;
        vm.trust_integrity_enclave(
            IntegrityAttestationEnclave::expected_measurement(1),
            "integrity-attestation-v1",
        );
        for (path, content) in STANDARD_HOST_FILES {
            vm.reference_db_mut().allow_content(path, content);
        }
        for host in &self.hosts {
            if let Some(tpm) = &host.tpm {
                vm.register_host_tpm(&host.id, tpm.aik_public());
            }
        }
        for action in &self.trust_log {
            match action {
                TrustAction::TrustEnclave(backend, measurement, label) => {
                    vm.trust_enclave_for(*backend, *measurement, label);
                }
                TrustAction::TrustIntegrity(backend, measurement, label) => {
                    vm.trust_integrity_enclave_for(*backend, *measurement, label);
                }
                TrustAction::AllowContent(path, content) => {
                    vm.reference_db_mut().allow_content(path, content);
                }
            }
        }
        if let Some(plan) = &self.crash_plan {
            vm = vm.with_crash_plan(plan.clone());
        }
        vm.set_shard(0, self.vm.shard_count() as u32);
        vm.with_replication(set.clone());
        // The failed primary's store-and-forward queue was part of the
        // replicated state, so its undelivered notices came back in the
        // replay; push them out now rather than waiting for the next
        // revocation.
        let notices_requeued = notifier.pending().len();
        let notices_delivered = notifier.drain(self.clock.now());
        let promoted_addr = node.addr().to_string();
        self.telemetry.event(
            self.clock.now(),
            "failover_promoted",
            &format!("{promoted_addr} promoted to primary at epoch {new_epoch} (high-water {high_water})"),
        );
        *self.vm.shard_mutex(0).lock() = vm;
        self.notifier = notifier;
        self.shard_media[0] = Some(media);
        self.shard_platforms[0] = platform;
        self.replication = Some(set);
        Ok(PromotionReport {
            epoch: new_epoch,
            promoted_addr,
            high_water,
            recovery,
            notices_requeued,
            notices_delivered,
        })
    }

    /// An *oracle twin* of the authority shard: a manager recovered from
    /// an independent fork of its media, without touching the deployment.
    /// The chaos tests compare a promoted standby against this —
    /// byte-equal CA roots, serials, enrollment records, and CRL numbers
    /// mean the replication stream lost nothing the primary had made
    /// durable.
    pub fn oracle_twin(&self) -> Result<VerificationManager, CoreError> {
        self.oracle_twin_for(0)
    }

    /// An oracle twin of one shard, recovered from a fork of that shard's
    /// media (the fork drops the injected write latency, so building
    /// twins is fast even on a slow-media testbed).
    pub fn oracle_twin_for(&self, shard: usize) -> Result<VerificationManager, CoreError> {
        let media = self
            .shard_media
            .get(shard)
            .and_then(Option::as_ref)
            .ok_or_else(|| {
                CoreError::Store(
                    "testbed is not durable (build with TestbedBuilder::durable)".into(),
                )
            })?
            .fork();
        let vault = StateVault::load(&self.shard_platforms[shard], &self.enclave_author)?;
        let store = StateStore::new(media, vault)
            .with_compaction(self.wal_compaction)
            .with_group_commit(self.group_commit);
        // Fresh telemetry: the twin is a measuring instrument, not part of
        // the deployment, and must not disturb the shared metrics.
        let (mut vm, _) = VerificationManager::recover(
            self.vm_config.clone(),
            &self.seed,
            self.clock.clone(),
            Telemetry::new(),
            store,
            None,
        )?;
        vm.set_shard(shard as u32, self.vm.shard_count() as u32);
        Ok(vm)
    }

    /// Oracle twins of every shard, in shard order.
    pub fn oracle_twins(&self) -> Result<Vec<VerificationManager>, CoreError> {
        (0..self.vm.shard_count())
            .map(|s| self.oracle_twin_for(s))
            .collect()
    }
}

/// Outcome of a [`Testbed::promote`] failover.
#[derive(Debug)]
pub struct PromotionReport {
    /// The fencing epoch the deployment moved to.
    pub epoch: u64,
    /// Fabric address of the standby that became primary.
    pub promoted_addr: String,
    /// The promoted standby's contiguous WAL high-water mark at selection.
    pub high_water: u64,
    /// The crash-recovery pass that rebuilt manager state from its store.
    pub recovery: RecoveryReport,
    /// Undelivered revocation notices recovered from the replicated queue.
    pub notices_requeued: usize,
    /// How many of those were delivered by the post-promotion drain.
    pub notices_delivered: usize,
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbed")
            .field("mode", &self.mode.as_str())
            .field("shards", &self.vm.shard_count())
            .field("hosts", &self.hosts.len())
            .field("enrollments", &self.vm.issued_count())
            .finish_non_exhaustive()
    }
}
