//! Deterministic crash-point injection for the Verification Manager.
//!
//! The network failure domain is covered by `vnfguard_net::fault`; this
//! module covers the *process* failure domain: a [`CrashPlan`] kills the
//! VM at named sites placed **between a WAL append and the response** —
//! the window where crash consistency is actually decided. Like
//! `FaultPlan`, a plan is seeded: the same seed replays the same crash
//! schedule, and the recorded [`CrashEvent`] log is the witness.
//!
//! A fired crash surfaces as [`CoreError::VmCrashed`](crate::CoreError)
//! and marks the manager dead — every subsequent workflow call fails until
//! the operator runs `VerificationManager::recover` against the sealed
//! store, exactly as a real restart would.

use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The named crash sites the manager evaluates. Each sits after the
/// operation's WAL append and before its acknowledgement.
pub const CRASH_SITES: &[&str] = &[
    "enrollment.prepare",
    "enrollment.commit",
    "enrollment.abort",
    "enrollment.expire",
    "revocation.revoke",
    "degraded.verdict",
    "renewal.issue",
    "rotation.prepare",
    "rotation.commit",
    "crl.issue",
];

/// One evaluated crash decision (the replay witness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashEvent {
    pub site: String,
    /// 1-based hit count of the site at evaluation time.
    pub hit: u64,
    pub fired: bool,
}

#[derive(Default)]
struct SiteRule {
    /// Explicit 1-based hit numbers that crash.
    at_hits: BTreeSet<u64>,
    /// Per-hit crash probability (seeded draw).
    probability: f64,
}

struct PlanInner {
    seed: u64,
    rng: u64,
    rules: HashMap<String, SiteRule>,
    hits: HashMap<String, u64>,
    events: Vec<CrashEvent>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A seeded, shareable crash schedule. Clones observe the same state, so
/// the testbed and the manager hold the same plan.
#[derive(Clone)]
pub struct CrashPlan {
    inner: Arc<Mutex<PlanInner>>,
}

impl CrashPlan {
    /// A plan whose probabilistic decisions replay from `seed`.
    pub fn seeded(seed: u64) -> CrashPlan {
        CrashPlan {
            inner: Arc::new(Mutex::new(PlanInner {
                seed,
                rng: seed,
                rules: HashMap::new(),
                hits: HashMap::new(),
                events: Vec::new(),
            })),
        }
    }

    pub fn seed(&self) -> u64 {
        self.inner.lock().seed
    }

    /// Crash at the next hit of `site`.
    pub fn crash_once(&self, site: &str) -> &CrashPlan {
        let mut inner = self.inner.lock();
        let next = inner.hits.get(site).copied().unwrap_or(0) + 1;
        inner.rules.entry(site.to_string()).or_default().at_hits.insert(next);
        drop(inner);
        self
    }

    /// Crash at the `hit`-th (1-based) hit of `site`.
    pub fn crash_at_hit(&self, site: &str, hit: u64) -> &CrashPlan {
        self.inner
            .lock()
            .rules
            .entry(site.to_string())
            .or_default()
            .at_hits
            .insert(hit.max(1));
        self
    }

    /// Crash each hit of `site` with probability `p` (seeded draw).
    pub fn crash_with_probability(&self, site: &str, p: f64) -> &CrashPlan {
        self.inner
            .lock()
            .rules
            .entry(site.to_string())
            .or_default()
            .probability = p.clamp(0.0, 1.0);
        self
    }

    /// Remove every rule for `site` (scheduled hits and probability).
    pub fn clear(&self, site: &str) {
        self.inner.lock().rules.remove(site);
    }

    /// Evaluate the plan at `site`: count the hit, decide, record the
    /// decision. Called by the manager at each crash point.
    pub fn fires(&self, site: &str) -> bool {
        let mut inner = self.inner.lock();
        let hit = inner.hits.entry(site.to_string()).or_insert(0);
        *hit += 1;
        let hit = *hit;
        let (scheduled, probability) = match inner.rules.get(site) {
            Some(rule) => (rule.at_hits.contains(&hit), rule.probability),
            None => (false, 0.0),
        };
        let fired = scheduled
            || (probability > 0.0 && {
                let draw = splitmix(&mut inner.rng) as f64 / u64::MAX as f64;
                draw < probability
            });
        inner.events.push(CrashEvent {
            site: site.to_string(),
            hit,
            fired,
        });
        fired
    }

    /// Every decision taken so far, in order.
    pub fn events(&self) -> Vec<CrashEvent> {
        self.inner.lock().events.clone()
    }

    /// Number of crashes that actually fired.
    pub fn fired_count(&self) -> usize {
        self.inner.lock().events.iter().filter(|e| e.fired).count()
    }
}

impl std::fmt::Debug for CrashPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CrashPlan")
            .field("seed", &inner.seed)
            .field("rules", &inner.rules.len())
            .field("evaluations", &inner.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_hit_fires_exactly_once() {
        let plan = CrashPlan::seeded(1);
        plan.crash_at_hit("enrollment.commit", 2);
        assert!(!plan.fires("enrollment.commit"));
        assert!(plan.fires("enrollment.commit"));
        assert!(!plan.fires("enrollment.commit"));
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn crash_once_targets_the_next_hit() {
        let plan = CrashPlan::seeded(2);
        assert!(!plan.fires("enrollment.prepare"));
        plan.crash_once("enrollment.prepare");
        assert!(plan.fires("enrollment.prepare"));
        assert!(!plan.fires("enrollment.prepare"));
    }

    #[test]
    fn sites_are_independent() {
        let plan = CrashPlan::seeded(3);
        plan.crash_at_hit("revocation.revoke", 1);
        assert!(!plan.fires("enrollment.prepare"));
        assert!(plan.fires("revocation.revoke"));
    }

    #[test]
    fn same_seed_replays_probabilistic_schedule() {
        let run = |seed: u64| {
            let plan = CrashPlan::seeded(seed);
            plan.crash_with_probability("enrollment.commit", 0.5);
            (0..32).map(|_| plan.fires("enrollment.commit")).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn event_log_witnesses_every_decision() {
        let plan = CrashPlan::seeded(4);
        plan.crash_at_hit("degraded.verdict", 1);
        plan.fires("degraded.verdict");
        plan.fires("enrollment.abort");
        let events = plan.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].fired);
        assert_eq!(events[0].hit, 1);
        assert!(!events[1].fired);
    }

    #[test]
    fn clear_removes_rules() {
        let plan = CrashPlan::seeded(5);
        plan.crash_at_hit("enrollment.commit", 1);
        plan.clear("enrollment.commit");
        assert!(!plan.fires("enrollment.commit"));
    }
}
