//! The Verification Manager.

use crate::attestation::{host_report_data, HostEvidence};
use crate::CoreError;
use std::collections::{BTreeMap, HashMap};
use vnfguard_crypto::drbg::{HmacDrbg, SecureRandom};
use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_crypto::sha2::sha256;
use vnfguard_ias::{QuoteStatus, QuoteVerifier};
use vnfguard_ima::appraisal::{AppraisalPolicy, ReferenceDatabase, Verdict};
use vnfguard_ima::list::IMA_PCR;
use vnfguard_pki::ca::{CertificateAuthority, IssueProfile};
use vnfguard_pki::cert::{Certificate, DistinguishedName, Validity};
use vnfguard_pki::crl::{Crl, RevocationReason};
use vnfguard_sgx::measurement::Measurement;
use vnfguard_vnf::credential_enclave::{provisioning_report_data, ProvisionBundle};
use vnfguard_vnf::wrap_credentials;

/// How strictly IAS TCB warnings are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcbPolicy {
    /// Only `OK` is acceptable.
    Strict,
    /// `GROUP_OUT_OF_DATE` / `CONFIGURATION_NEEDED` are tolerated.
    Lenient,
}

impl TcbPolicy {
    fn accepts(self, status: QuoteStatus) -> bool {
        match self {
            TcbPolicy::Strict => status.is_ok_strict(),
            TcbPolicy::Lenient => status.is_ok_lenient(),
        }
    }
}

/// Verification Manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    pub name: String,
    pub ca_validity: Validity,
    pub credential_validity_secs: u64,
    pub appraisal: AppraisalPolicy,
    pub tcb_policy: TcbPolicy,
    /// Challenges expire after this many seconds.
    pub challenge_lifetime_secs: u64,
    /// Host attestations are considered fresh for this long.
    pub host_freshness_secs: u64,
    /// Require the §4 TPM anchoring of the IMA aggregate.
    pub require_tpm: bool,
    /// Graceful degradation: when the attestation service is unreachable,
    /// allow a host's *cached* trusted verdict to stand in for a fresh
    /// appraisal. Disabled by default — the safe posture is fail-closed.
    pub degraded_verdicts: bool,
    /// How long a cached verdict may be re-used under degradation. Bounded
    /// separately from (and typically tighter than) `host_freshness_secs`.
    pub degraded_ttl_secs: u64,
}

impl Default for ManagerConfig {
    fn default() -> ManagerConfig {
        ManagerConfig {
            name: "verification-manager".into(),
            ca_validity: Validity::new(0, u64::MAX / 2),
            credential_validity_secs: 24 * 3600,
            appraisal: AppraisalPolicy::default(),
            tcb_policy: TcbPolicy::Strict,
            challenge_lifetime_secs: 300,
            host_freshness_secs: 3600,
            require_tpm: false,
            degraded_verdicts: false,
            degraded_ttl_secs: 900,
        }
    }
}

/// An outstanding attestation challenge.
#[derive(Debug, Clone)]
pub struct Challenge {
    pub id: u64,
    pub nonce: [u8; 32],
    pub issued_at: u64,
    subject: ChallengeSubject,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ChallengeSubject {
    Host { host_id: String },
    Vnf { host_id: String, vnf_name: String },
}

/// Host trust record.
#[derive(Debug, Clone)]
pub struct HostRecord {
    pub host_id: String,
    pub verdict: Verdict,
    pub attested_at: u64,
    pub iml_entries: usize,
    /// TPM AIK public key registered for this host (§4 extension).
    pub tpm_aik: Option<vnfguard_crypto::ed25519::VerifyingKey>,
}

/// Enrollment record for an issued credential.
#[derive(Debug, Clone)]
pub struct EnrollmentRecord {
    pub serial: u64,
    pub vnf_name: String,
    pub host_id: String,
    pub mrenclave: Measurement,
    pub issued_at: u64,
    pub revoked: bool,
}

/// An enrollment whose credential was issued but not yet delivered. The
/// two-phase protocol (prepare → commit, abort on delivery failure) keeps
/// the manager's records consistent with what actually reached an enclave.
#[derive(Debug, Clone)]
pub struct PendingEnrollment {
    pub serial: u64,
    pub vnf_name: String,
    pub host_id: String,
    pub mrenclave: Measurement,
    pub prepared_at: u64,
}

/// Audit event emitted by the manager.
#[derive(Debug, Clone)]
pub struct VmEvent {
    pub time: u64,
    pub kind: String,
    pub detail: String,
}

/// The Verification Manager (Figure 1, center).
pub struct VerificationManager {
    config: ManagerConfig,
    ca: CertificateAuthority,
    rng: HmacDrbg,
    reference_db: ReferenceDatabase,
    /// Whitelisted VNF credential-enclave measurements, with labels.
    trusted_enclaves: BTreeMap<Measurement, String>,
    /// Whitelisted integrity-attestation-enclave measurements.
    trusted_integrity_enclaves: BTreeMap<Measurement, String>,
    hosts: HashMap<String, HostRecord>,
    enrollments: BTreeMap<u64, EnrollmentRecord>,
    /// Prepared-but-uncommitted enrollments, keyed by certificate serial.
    pending_enrollments: BTreeMap<u64, PendingEnrollment>,
    challenges: HashMap<u64, Challenge>,
    next_challenge: u64,
    events: Vec<VmEvent>,
    /// The HMAC key the paper has the VM generate (used to authenticate
    /// VM-originated notifications to hosts).
    hmac_key: [u8; 32],
}

impl VerificationManager {
    pub fn new(config: ManagerConfig, seed: &[u8]) -> VerificationManager {
        let mut rng = HmacDrbg::new(seed);
        let ca = CertificateAuthority::new(
            DistinguishedName::new(&config.name),
            config.ca_validity,
            &mut rng,
        );
        let hmac_key = rng.gen_array::<32>();
        VerificationManager {
            config,
            ca,
            rng,
            reference_db: ReferenceDatabase::new(),
            trusted_enclaves: BTreeMap::new(),
            trusted_integrity_enclaves: BTreeMap::new(),
            hosts: HashMap::new(),
            enrollments: BTreeMap::new(),
            pending_enrollments: BTreeMap::new(),
            challenges: HashMap::new(),
            next_challenge: 1,
            events: Vec::new(),
            hmac_key: [0; 32],
        }
        .with_hmac(hmac_key)
    }

    fn with_hmac(mut self, key: [u8; 32]) -> Self {
        self.hmac_key = key;
        self
    }

    /// The CA certificate to provision into the controller's trust store —
    /// the paper's replacement for per-client keystore maintenance.
    pub fn ca_certificate(&self) -> &Certificate {
        self.ca.certificate()
    }

    /// Authenticate a VM-originated message (the paper's HMAC key).
    pub fn hmac_tag(&self, message: &[u8]) -> [u8; 32] {
        vnfguard_crypto::hmac::hmac_sha256(&self.hmac_key, message)
    }

    /// The VM-generated HMAC key, for distribution to host agents so they
    /// can authenticate VM-originated notifications (the paper's §2 key).
    pub fn share_hmac_key(&self) -> [u8; 32] {
        self.hmac_key
    }

    /// Opt in to (or out of) graceful degradation at runtime.
    pub fn set_degraded_policy(&mut self, enabled: bool, ttl_secs: u64) {
        self.config.degraded_verdicts = enabled;
        self.config.degraded_ttl_secs = ttl_secs;
    }

    /// Reference database of known-good host file digests.
    pub fn reference_db_mut(&mut self) -> &mut ReferenceDatabase {
        &mut self.reference_db
    }

    /// Whitelist a VNF credential-enclave measurement.
    pub fn trust_enclave(&mut self, measurement: Measurement, label: &str) {
        self.trusted_enclaves.insert(measurement, label.to_string());
    }

    /// Whitelist an integrity-attestation-enclave measurement.
    pub fn trust_integrity_enclave(&mut self, measurement: Measurement, label: &str) {
        self.trusted_integrity_enclaves
            .insert(measurement, label.to_string());
    }

    /// Register a host's TPM AIK (the §4 extension).
    pub fn register_host_tpm(
        &mut self,
        host_id: &str,
        aik: vnfguard_crypto::ed25519::VerifyingKey,
        now: u64,
    ) {
        let record = self.hosts.entry(host_id.to_string()).or_insert(HostRecord {
            host_id: host_id.to_string(),
            verdict: Verdict::UnknownComponents,
            attested_at: 0,
            iml_entries: 0,
            tpm_aik: None,
        });
        record.tpm_aik = Some(aik);
        self.event(now, "tpm_registered", host_id);
    }

    fn event(&mut self, time: u64, kind: &str, detail: &str) {
        self.events.push(VmEvent {
            time,
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
    }

    pub fn events(&self) -> &[VmEvent] {
        &self.events
    }

    pub fn host_record(&self, host_id: &str) -> Option<&HostRecord> {
        self.hosts.get(host_id)
    }

    pub fn enrollments(&self) -> impl Iterator<Item = &EnrollmentRecord> {
        self.enrollments.values()
    }

    fn new_challenge(&mut self, subject: ChallengeSubject, now: u64) -> Challenge {
        let id = self.next_challenge;
        self.next_challenge += 1;
        let challenge = Challenge {
            id,
            nonce: self.rng.gen_array::<32>(),
            issued_at: now,
            subject,
        };
        self.challenges.insert(id, challenge.clone());
        challenge
    }

    fn take_challenge(&mut self, id: u64, now: u64) -> Result<Challenge, CoreError> {
        let challenge = self
            .challenges
            .remove(&id)
            .ok_or_else(|| CoreError::BadChallenge(format!("unknown challenge {id}")))?;
        if now > challenge.issued_at + self.config.challenge_lifetime_secs {
            return Err(CoreError::BadChallenge(format!(
                "challenge {id} expired"
            )));
        }
        Ok(challenge)
    }

    // ---- Steps 1–2: host attestation -------------------------------------

    /// Step 1: initiate remote attestation of a container host.
    pub fn begin_host_attestation(&mut self, host_id: &str, now: u64) -> Challenge {
        self.event(now, "host_attestation_started", host_id);
        self.new_challenge(
            ChallengeSubject::Host {
                host_id: host_id.to_string(),
            },
            now,
        )
    }

    /// Step 2: verify the quote with the attestation service and appraise
    /// the measurement list.
    pub fn complete_host_attestation(
        &mut self,
        ias: &mut dyn QuoteVerifier,
        challenge_id: u64,
        evidence: &HostEvidence,
        now: u64,
    ) -> Result<Verdict, CoreError> {
        let challenge = self.take_challenge(challenge_id, now)?;
        let ChallengeSubject::Host { host_id } = challenge.subject.clone() else {
            return Err(CoreError::BadChallenge(
                "challenge is not a host challenge".into(),
            ));
        };

        // IAS verification of the quote (revocation list + quote validity).
        let report = ias.verify_quote(&evidence.quote, &challenge.nonce);
        report
            .verify(&ias.report_signing_key())
            .map_err(|e| CoreError::AttestationFailed(e.to_string()))?;
        if !self.config.tcb_policy.accepts(report.status) {
            self.event(now, "host_attestation_rejected", &format!("{host_id}: {}", report.status));
            return Err(CoreError::AttestationFailed(format!(
                "IAS status {}",
                report.status
            )));
        }
        let body = report
            .quote_body
            .as_ref()
            .ok_or_else(|| CoreError::AttestationFailed("report carries no quote body".into()))?;

        // The quoting enclave must be one of our integrity enclaves and not
        // a debug build.
        if body.is_debug() {
            return Err(CoreError::AttestationFailed("debug enclave".into()));
        }
        if !self.trusted_integrity_enclaves.contains_key(&body.mrenclave) {
            self.event(now, "host_attestation_rejected", &format!("{host_id}: unknown enclave"));
            return Err(CoreError::AttestationFailed(format!(
                "integrity enclave measurement {} not whitelisted",
                body.mrenclave
            )));
        }

        // The quote must bind exactly the measurement list we received.
        let expected = host_report_data(&evidence.iml, &challenge.nonce);
        if body.report_data != expected {
            return Err(CoreError::AttestationFailed(
                "quote does not bind the transmitted measurement list".into(),
            ));
        }

        // Appraise the list.
        let list = evidence.measurement_list()?;
        let result = self.reference_db.appraise(&list, &self.config.appraisal);

        // §4 extension: check the TPM anchor if required/available.
        if self.config.require_tpm || evidence.tpm_quote.is_some() {
            let aik = self
                .hosts
                .get(&host_id)
                .and_then(|h| h.tpm_aik)
                .ok_or_else(|| {
                    CoreError::AttestationFailed(format!("no TPM AIK registered for {host_id}"))
                })?;
            let quote = evidence.parsed_tpm_quote()?.ok_or_else(|| {
                CoreError::AttestationFailed("TPM quote required but absent".into())
            })?;
            quote
                .verify(&aik, &challenge.nonce)
                .map_err(|e| CoreError::AttestationFailed(e.to_string()))?;
            if quote.pcr_index != IMA_PCR {
                return Err(CoreError::AttestationFailed("wrong PCR index".into()));
            }
            if quote.pcr_value != list.aggregate() {
                self.event(now, "host_attestation_rejected", &format!("{host_id}: TPM/IML divergence"));
                return Err(CoreError::AttestationFailed(
                    "measurement list does not match the TPM-anchored aggregate".into(),
                ));
            }
        }

        let verdict = result.verdict;
        let previous_aik = self.hosts.get(&host_id).and_then(|h| h.tpm_aik);
        self.hosts.insert(
            host_id.clone(),
            HostRecord {
                host_id: host_id.clone(),
                verdict,
                attested_at: now,
                iml_entries: result.entries,
                tpm_aik: previous_aik,
            },
        );
        self.event(
            now,
            if verdict.is_trusted() {
                "host_attested"
            } else {
                "host_untrusted"
            },
            &format!("{host_id}: {verdict:?}"),
        );
        Ok(verdict)
    }

    fn host_is_trusted(&self, host_id: &str, now: u64) -> bool {
        match self.hosts.get(host_id) {
            Some(record) => {
                record.verdict.is_trusted()
                    && now <= record.attested_at + self.config.host_freshness_secs
            }
            None => false,
        }
    }

    /// Graceful degradation: answer a host-trust query from the cached
    /// verdict when the attestation service cannot be reached. Only
    /// permitted when the policy opts in, the host's **last real appraisal
    /// succeeded**, and that appraisal is within `degraded_ttl_secs`. Every
    /// degraded answer is audit-logged as a `DegradedVerdict` event so
    /// operators can see exactly which trust decisions lacked fresh
    /// evidence.
    pub fn degraded_host_verdict(
        &mut self,
        host_id: &str,
        now: u64,
    ) -> Result<Verdict, CoreError> {
        if !self.config.degraded_verdicts {
            return Err(CoreError::ServiceUnavailable(format!(
                "attestation service unreachable and degraded verdicts are disabled \
                 (host {host_id})"
            )));
        }
        let record = self.hosts.get(host_id).ok_or_else(|| {
            CoreError::ServiceUnavailable(format!(
                "attestation service unreachable and host {host_id} has no cached verdict"
            ))
        })?;
        if !record.verdict.is_trusted() {
            return Err(CoreError::ServiceUnavailable(format!(
                "attestation service unreachable and host {host_id}'s last appraisal failed"
            )));
        }
        if now > record.attested_at + self.config.degraded_ttl_secs {
            return Err(CoreError::ServiceUnavailable(format!(
                "attestation service unreachable and host {host_id}'s cached verdict expired"
            )));
        }
        let verdict = record.verdict;
        self.event(
            now,
            "DegradedVerdict",
            &format!("{host_id}: reusing cached {verdict:?} (attestation service unreachable)"),
        );
        Ok(verdict)
    }

    // ---- Steps 3–5: VNF attestation and enrollment ------------------------

    /// Step 3: initiate attestation of a VNF credential enclave. Fails
    /// unless the hosting platform has a fresh, trusted attestation — the
    /// paper's "the protocol continues only if the host is considered
    /// trustworthy following the appraisal".
    pub fn begin_vnf_attestation(
        &mut self,
        host_id: &str,
        vnf_name: &str,
        now: u64,
    ) -> Result<Challenge, CoreError> {
        if !self.host_is_trusted(host_id, now) {
            self.event(now, "vnf_attestation_refused", &format!("{vnf_name}: host {host_id} untrusted"));
            return Err(CoreError::WorkflowViolation(format!(
                "host {host_id} has no fresh trusted attestation"
            )));
        }
        self.event(now, "vnf_attestation_started", vnf_name);
        Ok(self.new_challenge(
            ChallengeSubject::Vnf {
                host_id: host_id.to_string(),
                vnf_name: vnf_name.to_string(),
            },
            now,
        ))
    }

    /// Steps 4–5: verify the enclave quote via IAS, then generate and wrap
    /// the credentials for the attested enclave's provisioning key.
    ///
    /// Returns the wrapped bundle (deliver to the enclave) and the issued
    /// certificate (for records; it is public anyway).
    ///
    /// Equivalent to [`prepare_vnf_enrollment`](Self::prepare_vnf_enrollment)
    /// immediately followed by [`commit_vnf_enrollment`](Self::commit_vnf_enrollment)
    /// — use the two-phase form when the bundle crosses a network that can
    /// fail mid-delivery.
    pub fn complete_vnf_enrollment(
        &mut self,
        ias: &mut dyn QuoteVerifier,
        challenge_id: u64,
        quote_bytes: &[u8],
        provisioning_key: &[u8; 32],
        controller_cn: &str,
        now: u64,
    ) -> Result<(Vec<u8>, Certificate), CoreError> {
        let (serial, wrapped, certificate) = self.prepare_vnf_enrollment(
            ias,
            challenge_id,
            quote_bytes,
            provisioning_key,
            controller_cn,
            now,
        )?;
        self.commit_vnf_enrollment(serial, now)?;
        Ok((wrapped, certificate))
    }

    /// Phase one of enrollment: run every check of steps 4–5, issue the
    /// certificate and wrap the credentials — but record the enrollment as
    /// *pending* rather than established. The returned serial is the commit
    /// token. If delivery of the wrapped bundle fails, call
    /// [`abort_vnf_enrollment`](Self::abort_vnf_enrollment) to revoke the
    /// issued certificate; nothing half-provisioned survives.
    pub fn prepare_vnf_enrollment(
        &mut self,
        ias: &mut dyn QuoteVerifier,
        challenge_id: u64,
        quote_bytes: &[u8],
        provisioning_key: &[u8; 32],
        controller_cn: &str,
        now: u64,
    ) -> Result<(u64, Vec<u8>, Certificate), CoreError> {
        let challenge = self.take_challenge(challenge_id, now)?;
        let ChallengeSubject::Vnf { host_id, vnf_name } = challenge.subject.clone() else {
            return Err(CoreError::BadChallenge(
                "challenge is not a VNF challenge".into(),
            ));
        };
        // Host trust may have been revoked between steps.
        if !self.host_is_trusted(&host_id, now) {
            return Err(CoreError::WorkflowViolation(format!(
                "host {host_id} lost trust during enrollment"
            )));
        }

        let report = ias.verify_quote(quote_bytes, &challenge.nonce);
        report
            .verify(&ias.report_signing_key())
            .map_err(|e| CoreError::AttestationFailed(e.to_string()))?;
        if !self.config.tcb_policy.accepts(report.status) {
            self.event(now, "vnf_attestation_rejected", &format!("{vnf_name}: {}", report.status));
            return Err(CoreError::AttestationFailed(format!(
                "IAS status {}",
                report.status
            )));
        }
        let body = report
            .quote_body
            .as_ref()
            .ok_or_else(|| CoreError::AttestationFailed("report carries no quote body".into()))?;
        if body.is_debug() {
            return Err(CoreError::AttestationFailed("debug enclave".into()));
        }
        // The enclave measurement must be whitelisted: this is where a
        // trojaned VNF image (different enclave code) is caught.
        if !self.trusted_enclaves.contains_key(&body.mrenclave) {
            self.event(
                now,
                "vnf_attestation_rejected",
                &format!("{vnf_name}: measurement {} unknown", body.mrenclave),
            );
            return Err(CoreError::AttestationFailed(format!(
                "enclave measurement {} not whitelisted",
                body.mrenclave
            )));
        }
        // The quote must bind the provisioning key we are about to use —
        // otherwise a man-in-the-middle could substitute its own key.
        let expected = provisioning_report_data(provisioning_key, &challenge.nonce);
        if body.report_data != expected {
            return Err(CoreError::AttestationFailed(
                "quote does not bind the provisioning key".into(),
            ));
        }

        // Step 5: generate key material, certify, wrap.
        let key_seed = self.rng.gen_array::<32>();
        let client_key = SigningKey::from_seed(&key_seed);
        let certificate = self.ca.issue(
            DistinguishedName::new(&vnf_name).with_org(&self.config.name),
            client_key.public_key(),
            &IssueProfile {
                validity_secs: self.config.credential_validity_secs,
                ..IssueProfile::vnf_client(*body.mrenclave.as_bytes())
            },
            now,
        );
        let bundle = ProvisionBundle {
            key_seed,
            certificate: certificate.clone(),
            ca_certificate: self.ca.certificate().clone(),
            server_cn: controller_cn.to_string(),
        };
        let wrapped = wrap_credentials(&mut self.rng, provisioning_key, &bundle);
        let serial = certificate.serial();
        self.pending_enrollments.insert(
            serial,
            PendingEnrollment {
                serial,
                vnf_name: vnf_name.clone(),
                host_id,
                mrenclave: body.mrenclave,
                prepared_at: now,
            },
        );
        self.event(now, "enrollment_prepared", &format!("{vnf_name} serial {serial}"));
        Ok((serial, wrapped, certificate))
    }

    /// Phase two of enrollment: the wrapped bundle reached the enclave, so
    /// promote the pending record to an established enrollment.
    pub fn commit_vnf_enrollment(&mut self, serial: u64, now: u64) -> Result<(), CoreError> {
        let pending = self.pending_enrollments.remove(&serial).ok_or_else(|| {
            CoreError::WorkflowViolation(format!("no pending enrollment with serial {serial}"))
        })?;
        self.event(
            now,
            "vnf_enrolled",
            &format!("{} serial {serial}", pending.vnf_name),
        );
        self.enrollments.insert(
            serial,
            EnrollmentRecord {
                serial,
                vnf_name: pending.vnf_name,
                host_id: pending.host_id,
                mrenclave: pending.mrenclave,
                issued_at: now,
                revoked: false,
            },
        );
        Ok(())
    }

    /// Roll back a prepared enrollment whose credential never reached the
    /// enclave: the issued certificate is revoked (it may have crossed a
    /// partially working network) and the pending record is dropped, so the
    /// manager's state is exactly as if the enrollment never happened —
    /// except for the audit trail and the CRL entry.
    pub fn abort_vnf_enrollment(
        &mut self,
        serial: u64,
        reason: &str,
        now: u64,
    ) -> Result<(), CoreError> {
        let pending = self.pending_enrollments.remove(&serial).ok_or_else(|| {
            CoreError::WorkflowViolation(format!("no pending enrollment with serial {serial}"))
        })?;
        self.ca
            .revoke(serial, RevocationReason::CessationOfOperation, now);
        self.event(
            now,
            "enrollment_rolled_back",
            &format!("{} serial {serial}: {reason}", pending.vnf_name),
        );
        Ok(())
    }

    /// Enrollments issued but not yet committed (normally transient).
    pub fn pending_enrollments(&self) -> impl Iterator<Item = &PendingEnrollment> {
        self.pending_enrollments.values()
    }

    // ---- Revocation --------------------------------------------------------

    /// Revoke one credential by serial.
    pub fn revoke_credential(
        &mut self,
        serial: u64,
        reason: RevocationReason,
        now: u64,
    ) -> Result<(), CoreError> {
        let record = self.enrollments.get_mut(&serial).ok_or_else(|| {
            CoreError::WorkflowViolation(format!("no enrollment with serial {serial}"))
        })?;
        record.revoked = true;
        self.ca.revoke(serial, reason, now);
        self.event(now, "credential_revoked", &format!("serial {serial}"));
        Ok(())
    }

    /// Revoke every credential issued to VNFs on a host (platform
    /// compromise response).
    pub fn revoke_host(&mut self, host_id: &str, now: u64) -> usize {
        let serials: Vec<u64> = self
            .enrollments
            .values()
            .filter(|e| e.host_id == host_id && !e.revoked)
            .map(|e| e.serial)
            .collect();
        for serial in &serials {
            let _ = self.revoke_credential(*serial, RevocationReason::PlatformCompromise, now);
        }
        // The host loses its trusted status.
        if let Some(record) = self.hosts.get_mut(host_id) {
            record.verdict = Verdict::Mismatch;
        }
        self.event(now, "host_revoked", &format!("{host_id}: {} credentials", serials.len()));
        serials.len()
    }

    /// Produce the current CRL for distribution to relying parties.
    pub fn current_crl(&self, now: u64, lifetime_secs: u64) -> Crl {
        self.ca.current_crl(now, lifetime_secs)
    }

    /// Issue a client certificate for a non-enclave principal (operator
    /// tooling, baseline clients in E4). No enclave binding is attached.
    pub fn issue_client_certificate(
        &mut self,
        cn: &str,
        public_key: vnfguard_crypto::ed25519::VerifyingKey,
        now: u64,
    ) -> Certificate {
        self.ca.issue(
            DistinguishedName::new(cn).with_org(&self.config.name),
            public_key,
            &IssueProfile {
                validity_secs: self.config.credential_validity_secs,
                enclave_binding: None,
                ..IssueProfile::vnf_client([0; 32])
            },
            now,
        )
    }

    /// Issue a server certificate (for the controller's TLS identity).
    pub fn issue_server_certificate(
        &mut self,
        cn: &str,
        public_key: vnfguard_crypto::ed25519::VerifyingKey,
        now: u64,
    ) -> Certificate {
        self.ca.issue(
            DistinguishedName::new(cn).with_org(&self.config.name),
            public_key,
            &IssueProfile::server(),
            now,
        )
    }

    /// Number of credentials issued so far.
    pub fn issued_count(&self) -> u64 {
        self.ca.issued_count()
    }

    /// Short identity fingerprint for logs.
    pub fn fingerprint(&self) -> String {
        let digest = sha256(&self.ca.certificate().encode());
        digest[..6].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for VerificationManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerificationManager")
            .field("name", &self.config.name)
            .field("hosts", &self.hosts.len())
            .field("enrollments", &self.enrollments.len())
            .field("trusted_enclaves", &self.trusted_enclaves.len())
            .finish_non_exhaustive()
    }
}
