//! The Verification Manager.

use crate::attestation::{host_report_data, HostEvidence};
use crate::crash::CrashPlan;
use crate::lifecycle::{CaRotation, LifecycleStatus, RenewalDue};
use crate::replication::{ReplicaSet, ReplicationStatus};
use crate::revocation::{revocation_message, RevocationNotifier};
use crate::CoreError;
use std::collections::{BTreeMap, HashMap};
use vnfguard_store::{StateStore, StoreStats, WalRecord};
use vnfguard_controller::clock::SimClock;
use vnfguard_crypto::drbg::{HmacDrbg, SecureRandom};
use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_crypto::sha2::sha256;
use vnfguard_attest::{
    AppraisalPolicy as BackendPolicy, AttestationBackend, BackendKind, Measurement,
    PolicyRegistry,
};
use vnfguard_ima::appraisal::{AppraisalPolicy, ReferenceDatabase, Verdict};
use vnfguard_ima::list::IMA_PCR;
use vnfguard_pki::ca::{CertificateAuthority, IssueProfile};
use vnfguard_pki::cert::{Certificate, DistinguishedName, Validity};
use vnfguard_pki::crl::{Crl, CrlEntry, RevocationReason};
use vnfguard_telemetry::{Counter, Gauge, Histogram, SpanGuard, Telemetry, TraceContext};
use vnfguard_vnf::credential_enclave::{provisioning_report_data, ProvisionBundle};
use vnfguard_vnf::wrap_credentials;

/// How strictly TCB warnings in attestation evidence are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcbPolicy {
    /// Only a fully up-to-date TCB is acceptable.
    Strict,
    /// Out-of-date / configuration-needed platforms are tolerated.
    Lenient,
}

impl TcbPolicy {
    /// The equivalent normalized per-backend appraisal policy: the manager
    /// seeds its [`PolicyRegistry`] uniformly from this, and
    /// [`VerificationManager::set_backend_policy`] overrides per backend.
    pub fn backend_policy(self) -> BackendPolicy {
        match self {
            TcbPolicy::Strict => BackendPolicy::strict(),
            TcbPolicy::Lenient => BackendPolicy::lenient(),
        }
    }
}

/// Verification Manager configuration.
///
/// Built through [`ManagerConfig::builder`], which validates the combination
/// of settings; `Default` yields the safe fail-closed posture.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    name: String,
    ca_validity: Validity,
    credential_validity_secs: u64,
    appraisal: AppraisalPolicy,
    tcb_policy: TcbPolicy,
    /// Challenges expire after this many seconds.
    challenge_lifetime_secs: u64,
    /// Host attestations are considered fresh for this long.
    host_freshness_secs: u64,
    /// Require the §4 TPM anchoring of the IMA aggregate.
    require_tpm: bool,
    /// Graceful degradation: when the attestation service is unreachable,
    /// allow a host's *cached* trusted verdict to stand in for a fresh
    /// appraisal. Disabled by default — the safe posture is fail-closed.
    degraded_verdicts: bool,
    /// How long a cached verdict may be re-used under degradation. Bounded
    /// separately from (and typically tighter than) `host_freshness_secs`.
    degraded_ttl_secs: u64,
    /// Prepared enrollments older than this are aborted by
    /// [`VerificationManager::sweep_pending_enrollments`] (and treated as
    /// crash orphans during recovery). `0` disables the sweep and leaves
    /// recovery on its default grace period.
    pending_enrollment_ttl_secs: u64,
    /// A credential becomes *due for renewal* this long before its
    /// `not_after`. The renewal sweep and the guards' auto-renew hook both
    /// key off this window; sweeps clamp it below the credential lifetime
    /// so a short-lived deployment is not perpetually "due".
    renewal_window_secs: u64,
    /// `next_update` horizon of issued CRLs: a relying party whose cached
    /// CRL is older than this is running on stale revocation data.
    crl_lifetime_secs: u64,
    /// After a CA rotation, relying parties keep the previous root
    /// trusted for this long (the dual-trust drain window) so credentials
    /// issued under the old key keep validating while the fleet renews.
    rotation_drain_secs: u64,
}

impl Default for ManagerConfig {
    fn default() -> ManagerConfig {
        ManagerConfig {
            name: "verification-manager".into(),
            ca_validity: Validity::new(0, u64::MAX / 2),
            credential_validity_secs: 24 * 3600,
            appraisal: AppraisalPolicy::default(),
            tcb_policy: TcbPolicy::Strict,
            challenge_lifetime_secs: 300,
            host_freshness_secs: 3600,
            require_tpm: false,
            degraded_verdicts: false,
            degraded_ttl_secs: 900,
            pending_enrollment_ttl_secs: 0,
            renewal_window_secs: 6 * 3600,
            crl_lifetime_secs: 3600,
            rotation_drain_secs: 24 * 3600,
        }
    }
}

impl ManagerConfig {
    /// Start from the validated defaults.
    pub fn builder() -> ManagerConfigBuilder {
        ManagerConfigBuilder {
            config: ManagerConfig::default(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn tcb_policy(&self) -> TcbPolicy {
        self.tcb_policy
    }

    pub fn credential_validity_secs(&self) -> u64 {
        self.credential_validity_secs
    }

    pub fn challenge_lifetime_secs(&self) -> u64 {
        self.challenge_lifetime_secs
    }

    pub fn host_freshness_secs(&self) -> u64 {
        self.host_freshness_secs
    }

    pub fn require_tpm(&self) -> bool {
        self.require_tpm
    }

    pub fn degraded_verdicts(&self) -> bool {
        self.degraded_verdicts
    }

    pub fn degraded_ttl_secs(&self) -> u64 {
        self.degraded_ttl_secs
    }

    pub fn pending_enrollment_ttl_secs(&self) -> u64 {
        self.pending_enrollment_ttl_secs
    }

    pub fn renewal_window_secs(&self) -> u64 {
        self.renewal_window_secs
    }

    pub fn crl_lifetime_secs(&self) -> u64 {
        self.crl_lifetime_secs
    }

    pub fn rotation_drain_secs(&self) -> u64 {
        self.rotation_drain_secs
    }
}

/// Builder for [`ManagerConfig`]; `build` rejects inconsistent settings
/// instead of letting them surface as confusing runtime behavior.
#[derive(Debug, Clone)]
pub struct ManagerConfigBuilder {
    config: ManagerConfig,
}

impl ManagerConfigBuilder {
    pub fn name(mut self, name: &str) -> Self {
        self.config.name = name.to_string();
        self
    }

    pub fn ca_validity(mut self, validity: Validity) -> Self {
        self.config.ca_validity = validity;
        self
    }

    pub fn credential_validity_secs(mut self, secs: u64) -> Self {
        self.config.credential_validity_secs = secs;
        self
    }

    pub fn appraisal(mut self, policy: AppraisalPolicy) -> Self {
        self.config.appraisal = policy;
        self
    }

    pub fn tcb_policy(mut self, policy: TcbPolicy) -> Self {
        self.config.tcb_policy = policy;
        self
    }

    pub fn challenge_lifetime_secs(mut self, secs: u64) -> Self {
        self.config.challenge_lifetime_secs = secs;
        self
    }

    pub fn host_freshness_secs(mut self, secs: u64) -> Self {
        self.config.host_freshness_secs = secs;
        self
    }

    pub fn require_tpm(mut self, required: bool) -> Self {
        self.config.require_tpm = required;
        self
    }

    /// Opt in to graceful degradation: cached trusted verdicts may answer
    /// host-trust queries for `ttl_secs` when the attestation service is
    /// unreachable. (This subsumes the former `set_degraded_policy` runtime
    /// toggle — degradation is a deployment decision, made at build time.)
    pub fn degraded_verdicts(mut self, enabled: bool, ttl_secs: u64) -> Self {
        self.config.degraded_verdicts = enabled;
        self.config.degraded_ttl_secs = ttl_secs;
        self
    }

    /// Expire prepared-but-uncommitted enrollments after `secs` (see
    /// [`VerificationManager::sweep_pending_enrollments`]). `0` disables.
    pub fn pending_enrollment_ttl_secs(mut self, secs: u64) -> Self {
        self.config.pending_enrollment_ttl_secs = secs;
        self
    }

    /// Flag credentials for renewal `secs` before they expire.
    pub fn renewal_window_secs(mut self, secs: u64) -> Self {
        self.config.renewal_window_secs = secs;
        self
    }

    /// `next_update` horizon of issued CRLs.
    pub fn crl_lifetime_secs(mut self, secs: u64) -> Self {
        self.config.crl_lifetime_secs = secs;
        self
    }

    /// Length of the dual-trust window after a CA rotation.
    pub fn rotation_drain_secs(mut self, secs: u64) -> Self {
        self.config.rotation_drain_secs = secs;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ManagerConfig, CoreError> {
        let c = &self.config;
        if c.name.is_empty() {
            return Err(CoreError::InvalidConfig("manager name is empty".into()));
        }
        if c.credential_validity_secs == 0 {
            return Err(CoreError::InvalidConfig(
                "credential_validity_secs must be nonzero".into(),
            ));
        }
        if c.challenge_lifetime_secs == 0 {
            return Err(CoreError::InvalidConfig(
                "challenge_lifetime_secs must be nonzero".into(),
            ));
        }
        if c.ca_validity.not_after <= c.ca_validity.not_before {
            return Err(CoreError::InvalidConfig(
                "ca_validity interval is empty".into(),
            ));
        }
        if c.degraded_verdicts && c.degraded_ttl_secs == 0 {
            return Err(CoreError::InvalidConfig(
                "degraded_ttl_secs must be nonzero when degraded verdicts are enabled".into(),
            ));
        }
        if c.degraded_ttl_secs > c.credential_validity_secs {
            return Err(CoreError::InvalidConfig(format!(
                "degraded_ttl_secs ({}) exceeds credential_validity_secs ({})",
                c.degraded_ttl_secs, c.credential_validity_secs
            )));
        }
        if c.pending_enrollment_ttl_secs > c.credential_validity_secs {
            return Err(CoreError::InvalidConfig(format!(
                "pending_enrollment_ttl_secs ({}) exceeds credential_validity_secs ({})",
                c.pending_enrollment_ttl_secs, c.credential_validity_secs
            )));
        }
        if c.renewal_window_secs == 0 {
            return Err(CoreError::InvalidConfig(
                "renewal_window_secs must be nonzero".into(),
            ));
        }
        if c.crl_lifetime_secs == 0 {
            return Err(CoreError::InvalidConfig(
                "crl_lifetime_secs must be nonzero".into(),
            ));
        }
        if c.rotation_drain_secs == 0 {
            return Err(CoreError::InvalidConfig(
                "rotation_drain_secs must be nonzero: credentials issued under the old \
                 root need a window to renew"
                    .into(),
            ));
        }
        Ok(self.config)
    }
}

/// An outstanding attestation challenge.
#[derive(Debug, Clone)]
pub struct Challenge {
    pub id: u64,
    pub nonce: [u8; 32],
    pub issued_at: u64,
    subject: ChallengeSubject,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ChallengeSubject {
    Host { host_id: String },
    Vnf { host_id: String, vnf_name: String },
}

/// Host trust record.
#[derive(Debug, Clone)]
pub struct HostRecord {
    pub host_id: String,
    pub verdict: Verdict,
    pub attested_at: u64,
    pub iml_entries: usize,
    /// Which TEE technology vouched for the last appraisal. Renewal and
    /// re-attestation re-bind to the same backend.
    pub backend: BackendKind,
    /// TPM AIK public key registered for this host (§4 extension).
    pub tpm_aik: Option<vnfguard_crypto::ed25519::VerifyingKey>,
}

/// Enrollment record for an issued credential.
#[derive(Debug, Clone)]
pub struct EnrollmentRecord {
    pub serial: u64,
    pub vnf_name: String,
    pub host_id: String,
    /// The TEE backend whose evidence established this enrollment. The
    /// WAL persists the code, so recovery and renewal re-bind the record
    /// to the same backend's appraisal policy and whitelist.
    pub backend: BackendKind,
    pub mrenclave: Measurement,
    /// Digest of the enclave's provisioning public key as bound by the
    /// enrollment quote (see [`provisioning_key_hash`]). Renewals must
    /// present the same key — serials are public, so without this check
    /// anyone could have a successor credential wrapped to their own key.
    pub provisioning_key_hash: [u8; 32],
    pub issued_at: u64,
    pub revoked: bool,
}

/// An enrollment whose credential was issued but not yet delivered. The
/// two-phase protocol (prepare → commit, abort on delivery failure) keeps
/// the manager's records consistent with what actually reached an enclave.
#[derive(Debug, Clone)]
pub struct PendingEnrollment {
    pub serial: u64,
    pub vnf_name: String,
    pub host_id: String,
    /// The TEE backend whose evidence prepared this enrollment.
    pub backend: BackendKind,
    pub mrenclave: Measurement,
    /// Digest of the quote-bound provisioning public key (see
    /// [`provisioning_key_hash`]).
    pub provisioning_key_hash: [u8; 32],
    pub prepared_at: u64,
}

/// Domain-separated digest of an enclave's provisioning public key, as
/// persisted in enrollment records and the WAL. The manager stores the
/// digest rather than the key itself: renewal only ever needs an equality
/// check, and the WAL should not accumulate key material.
pub fn provisioning_key_hash(provisioning_key: &[u8; 32]) -> [u8; 32] {
    let mut input = Vec::with_capacity(64);
    input.extend_from_slice(b"vnfguard-provisioning-key-v1\0\0\0\0");
    input.extend_from_slice(provisioning_key);
    sha256(&input)
}

/// Audit event emitted by the manager — an entry in the telemetry
/// [`Journal`](vnfguard_telemetry::Journal), which subsumed the former
/// ad-hoc event vec (ring-buffered, sequence-numbered).
pub type VmEvent = vnfguard_telemetry::Event;

/// Pre-fetched manager metrics, bound once at construction so the hot path
/// never takes the registry lock for name lookups.
struct ManagerMetrics {
    challenges: Counter,
    host_attestations: Counter,
    host_attestation_failures: Counter,
    enrollments: Counter,
    enrollment_failures: Counter,
    enrollment_aborts: Counter,
    degraded_verdicts: Counter,
    revocations: Counter,
    certificates_issued: Counter,
    recoveries: Counter,
    recovered_orphans: Counter,
    wal_records: Counter,
    renewals: Counter,
    renewal_failures: Counter,
    /// Per-backend breakouts of the verdict / enrollment / renewal
    /// counters, indexed by [`BackendKind::as_u8`]. The unlabeled series
    /// above keep counting everything, so existing dashboards and tests
    /// are undisturbed; these add the `{backend="sgx"|"snp"}` dimension.
    host_attestations_by_backend: [Counter; 2],
    enrollments_by_backend: [Counter; 2],
    renewals_by_backend: [Counter; 2],
    rotations: Counter,
    crls_issued: Counter,
    certs_active: Gauge,
    certs_expiring: Gauge,
    crl_age_seconds: Gauge,
    host_attestation_micros: Histogram,
    enrollment_micros: Histogram,
    renewal_micros: Histogram,
    wal_append_micros: Histogram,
}

impl ManagerMetrics {
    fn bind(telemetry: &Telemetry) -> ManagerMetrics {
        ManagerMetrics::bind_with(telemetry, None)
    }

    /// Bind this shard's series under a `{shard="i"}` label so N shards'
    /// metrics stop colliding into one registry entry. Authority-only
    /// series — CA rotations, CRL issuance and age — exist once per
    /// deployment and stay unlabeled.
    fn bind_sharded(telemetry: &Telemetry, shard: u32) -> ManagerMetrics {
        ManagerMetrics::bind_with(telemetry, Some(shard))
    }

    fn bind_with(telemetry: &Telemetry, shard: Option<u32>) -> ManagerMetrics {
        let shard = shard.map(|s| s.to_string());
        let series = |family: &str| match &shard {
            Some(shard) => vnfguard_telemetry::labeled(family, "shard", shard),
            None => family.to_string(),
        };
        // Two-dimensional series are hand-composed: `labeled` carries one
        // dimension, and label order is lexicographic (backend before
        // shard) so renderers see one canonical key per series.
        let backend_series = |family: &str, backend: BackendKind| match &shard {
            Some(shard) => format!(
                "{family}{{backend=\"{}\",shard=\"{shard}\"}}",
                backend.label()
            ),
            None => vnfguard_telemetry::labeled(family, "backend", backend.label()),
        };
        let per_backend = |family: &str| {
            BackendKind::ALL.map(|b| telemetry.counter(&backend_series(family, b)))
        };
        ManagerMetrics {
            challenges: telemetry.counter(&series("vnfguard_core_challenges_total")),
            host_attestations: telemetry.counter(&series("vnfguard_core_host_attestations_total")),
            host_attestation_failures: telemetry
                .counter(&series("vnfguard_core_host_attestation_failures_total")),
            enrollments: telemetry.counter(&series("vnfguard_core_enrollments_total")),
            enrollment_failures: telemetry
                .counter(&series("vnfguard_core_enrollment_failures_total")),
            enrollment_aborts: telemetry.counter(&series("vnfguard_core_enrollment_aborts_total")),
            degraded_verdicts: telemetry.counter(&series("vnfguard_core_degraded_verdicts_total")),
            revocations: telemetry.counter(&series("vnfguard_core_revocations_total")),
            certificates_issued: telemetry
                .counter(&series("vnfguard_core_certificates_issued_total")),
            recoveries: telemetry.counter(&series("vnfguard_core_recoveries_total")),
            recovered_orphans: telemetry.counter(&series("vnfguard_core_recovery_orphans_total")),
            wal_records: telemetry.counter(&series("vnfguard_core_wal_records_total")),
            renewals: telemetry.counter(&series("vnfguard_core_renewals_total")),
            renewal_failures: telemetry.counter(&series("vnfguard_core_renewal_failures_total")),
            host_attestations_by_backend: per_backend("vnfguard_core_host_attestations_total"),
            enrollments_by_backend: per_backend("vnfguard_core_enrollments_total"),
            renewals_by_backend: per_backend("vnfguard_core_renewals_total"),
            rotations: telemetry.counter("vnfguard_core_ca_rotations_total"),
            crls_issued: telemetry.counter("vnfguard_core_crls_issued_total"),
            certs_active: telemetry.gauge(&series("vnfguard_core_certs_active")),
            certs_expiring: telemetry.gauge(&series("vnfguard_core_certs_expiring")),
            crl_age_seconds: telemetry.gauge("vnfguard_core_crl_age_seconds"),
            host_attestation_micros: telemetry
                .histogram(&series("vnfguard_core_host_attestation_micros")),
            enrollment_micros: telemetry.histogram(&series("vnfguard_core_enrollment_micros")),
            renewal_micros: telemetry.histogram(&series("vnfguard_core_renewal_micros")),
            wal_append_micros: telemetry.histogram(&series("vnfguard_core_wal_append_micros")),
        }
    }
}

/// What a [`VerificationManager::recover`] pass reconstructed and repaired.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// When the recovery ran.
    pub at: u64,
    /// Manager incarnation number (previous generation + 1).
    pub generation: u64,
    /// Whether a compacted snapshot seeded the replay.
    pub from_snapshot: bool,
    /// Whether a torn or corrupt log tail was dropped. Dropped records were
    /// never acknowledged, so this is informational, not a loss.
    pub truncated_tail: bool,
    /// Log records applied on top of the snapshot.
    pub replayed_records: u64,
    /// Committed enrollments restored into the live manager.
    pub enrollments_restored: usize,
    /// In-grace pending enrollments restored (still awaiting commit/abort).
    pub pending_restored: usize,
    /// Revocation-registry entries re-applied to the CA.
    pub revocations_restored: usize,
    /// Committed CA rotations re-applied (deterministic key re-derivation
    /// plus [`install_rotation`](CertificateAuthority::install_rotation)).
    pub rotations_restored: usize,
    /// A rotation was prepared but never committed before the crash: the
    /// pass left the CA on the pre-rotation key (rollback) and the
    /// operator should re-run the rotation.
    pub rotation_rolled_back: bool,
    /// Orphaned pending enrollments aborted and revoked by this pass.
    pub orphans_aborted: usize,
    /// Undelivered revocation notices handed back to the notifier.
    pub notices_requeued: usize,
}

/// Grace period applied to pending enrollments during recovery when the
/// config does not set `pending_enrollment_ttl_secs`: a prepare younger
/// than this may still be awaiting its commit, so it is restored as
/// pending rather than aborted.
pub const DEFAULT_ORPHAN_GRACE_SECS: u64 = 300;

/// The Verification Manager (Figure 1, center).
///
/// Time comes from the [`SimClock`] injected at construction: workflow
/// methods read it implicitly, and each has a thin `*_at(now)` shim for
/// callers that need to pin an explicit instant (expiry tests, replays).
pub struct VerificationManager {
    config: ManagerConfig,
    ca: CertificateAuthority,
    rng: HmacDrbg,
    reference_db: ReferenceDatabase,
    /// Per-backend appraisal policies, seeded uniformly from the config's
    /// [`TcbPolicy`] and overridable per backend.
    policies: PolicyRegistry,
    /// Whitelisted VNF credential-enclave (or CVM launch) measurements,
    /// keyed by the backend that may present them — equal bytes from a
    /// different TEE never satisfy an entry — with labels.
    trusted_enclaves: BTreeMap<(BackendKind, Measurement), String>,
    /// Whitelisted integrity-attestation measurements, keyed per backend.
    trusted_integrity_enclaves: BTreeMap<(BackendKind, Measurement), String>,
    hosts: HashMap<String, HostRecord>,
    enrollments: BTreeMap<u64, EnrollmentRecord>,
    /// Prepared-but-uncommitted enrollments, keyed by certificate serial.
    pending_enrollments: BTreeMap<u64, PendingEnrollment>,
    challenges: HashMap<u64, Challenge>,
    next_challenge: u64,
    clock: SimClock,
    telemetry: Telemetry,
    metrics: ManagerMetrics,
    /// The HMAC key the paper has the VM generate (used to authenticate
    /// VM-originated notifications to hosts).
    hmac_key: [u8; 32],
    /// Sealed write-ahead log; `None` runs the manager volatile (the
    /// paper's original posture).
    store: Option<StateStore>,
    /// Seed for deriving per-epoch CA rotation keys (see
    /// [`epoch_key`](Self::epoch_key)): recovery re-derives the same keys
    /// from the same manager seed instead of persisting key material.
    rotation_seed: [u8; 32],
    /// When the last signed CRL was issued (drives the age gauge).
    last_crl_issued_at: Option<u64>,
    /// The most recently issued numbered CRL, re-served to read-only
    /// distribution requests so polling does not grow the WAL.
    last_crl: Option<Crl>,
    /// Set when revocations or a key rotation obsolete `last_crl`; the
    /// next [`latest_crl_at`](Self::latest_crl_at) mints a fresh one.
    crl_dirty: bool,
    /// End of the dual-trust window opened by the last rotation.
    rotation_drain_deadline: Option<u64>,
    /// Crash-point injection schedule (tests only in practice).
    crash_plan: Option<CrashPlan>,
    /// Set once a crash point fires: the site name. A crashed manager
    /// refuses every further workflow call.
    crashed: Option<String>,
    /// Outcome of the recovery pass that produced this incarnation.
    last_recovery: Option<RecoveryReport>,
    /// Distributed-trace context scoping the current workflow call; set by
    /// the remote orchestration layer, never persisted.
    active_trace: Option<TraceContext>,
    /// Primary-side replication handle (also installed as the store's
    /// append observer); `None` runs unreplicated.
    replication: Option<ReplicaSet>,
    /// This manager's shard index (0 = the authority shard) and the total
    /// shard count of the deployment it belongs to.
    shard: u32,
    shard_count: u32,
    /// Per-serial next-attempt state for renewals the serving layer
    /// refused (shed or deadline-expired):
    /// [`certs_expiring`](Self::certs_expiring) skips a serial until its jittered
    /// next-attempt time, so a refused fleet doesn't re-offer the same
    /// renewals every sweep. Volatile soft state — never journaled, never
    /// recovered; after a restart the worst case is one extra offer.
    renewal_backoff: HashMap<u64, RenewalBackoff>,
}

/// Backoff state for one refused renewal (see
/// [`VerificationManager::note_renewal_refused`]).
#[derive(Debug, Default, Clone)]
struct RenewalBackoff {
    attempts: u32,
    next_attempt_at: u64,
}

/// Serial-number span reserved per shard: shard `i` allocates serials in
/// `[i * SPAN, (i+1) * SPAN)`, so a serial names its owning shard.
pub const SHARD_SERIAL_SPAN: u64 = 1 << 40;
/// Challenge-id span reserved per shard (same ownership trick as serials).
pub const SHARD_CHALLENGE_SPAN: u64 = 1 << 32;

/// The shard that allocated `serial` (shard 0 for pre-sharding serials).
pub fn shard_of_serial(serial: u64) -> u32 {
    (serial / SHARD_SERIAL_SPAN) as u32
}

/// The shard that minted challenge `id`.
pub fn shard_of_challenge(id: u64) -> u32 {
    (id / SHARD_CHALLENGE_SPAN) as u32
}

impl VerificationManager {
    /// A manager with its own clock (starting at 0) and telemetry bundle.
    pub fn new(config: ManagerConfig, seed: &[u8]) -> VerificationManager {
        VerificationManager::with_runtime(config, seed, SimClock::at(0), Telemetry::new())
    }

    /// A manager sharing the deployment's clock and telemetry. Clones of
    /// both handles observe the same state.
    pub fn with_runtime(
        config: ManagerConfig,
        seed: &[u8],
        clock: SimClock,
        telemetry: Telemetry,
    ) -> VerificationManager {
        let mut rng = HmacDrbg::new(seed);
        let ca = CertificateAuthority::new(
            DistinguishedName::new(&config.name),
            config.ca_validity,
            &mut rng,
        );
        let hmac_key = rng.gen_array::<32>();
        // Rotation keys derive from the construction seed, not the DRBG
        // stream: recovery must re-derive the exact epoch keys regardless
        // of how far the dead incarnation had advanced its DRBG.
        let rotation_seed = sha256(&[seed, b"ca rotation" as &[u8]].concat());
        let metrics = ManagerMetrics::bind(&telemetry);
        let policies = PolicyRegistry::uniform(config.tcb_policy.backend_policy());
        VerificationManager {
            config,
            ca,
            rng,
            reference_db: ReferenceDatabase::new(),
            policies,
            trusted_enclaves: BTreeMap::new(),
            trusted_integrity_enclaves: BTreeMap::new(),
            hosts: HashMap::new(),
            enrollments: BTreeMap::new(),
            pending_enrollments: BTreeMap::new(),
            challenges: HashMap::new(),
            next_challenge: 1,
            clock,
            telemetry,
            metrics,
            hmac_key,
            rotation_seed,
            last_crl_issued_at: None,
            last_crl: None,
            crl_dirty: false,
            rotation_drain_deadline: None,
            store: None,
            crash_plan: None,
            crashed: None,
            last_recovery: None,
            active_trace: None,
            replication: None,
            shard: 0,
            shard_count: 1,
            renewal_backoff: HashMap::new(),
        }
    }

    /// Place this manager at shard `index` of `count`.
    ///
    /// Shard 0 — the authority shard — keeps the default allocators, so a
    /// single-shard deployment is bit-identical to an unsharded one. A
    /// non-authority shard floors its serial and challenge allocators at
    /// the base of its reserved span and diverges its DRBG (two shards
    /// must never mint the same key seeds or nonces). All floors use
    /// max-semantics, so re-applying after a crash-recovery replay (which
    /// restores allocators from the shard's own WAL, already inside the
    /// span) is idempotent.
    pub fn set_shard(&mut self, index: u32, count: u32) {
        self.shard = index;
        self.shard_count = count.max(1);
        // In a multi-shard deployment every shard's per-shard series carry
        // a `{shard="i"}` label (otherwise N registries collide into one);
        // a single-shard deployment keeps the unlabeled names.
        if self.shard_count > 1 {
            self.metrics = ManagerMetrics::bind_sharded(&self.telemetry, index);
        }
        if index == 0 {
            return;
        }
        self.ca.restore_issuance(u64::from(index) * SHARD_SERIAL_SPAN, 0);
        self.next_challenge = self
            .next_challenge
            .max(u64::from(index) * SHARD_CHALLENGE_SPAN + 1);
        self.rng
            .reseed(&[b"shard" as &[u8], &index.to_be_bytes()].concat());
    }

    /// This manager's shard index (0 when unsharded).
    pub fn shard_index(&self) -> u32 {
        self.shard
    }

    /// Total shards in the deployment this manager belongs to.
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// Attach a sealed state store: from here on every state transition is
    /// journaled before the operation is acknowledged (WAL-before-response).
    pub fn with_store(mut self, store: StateStore) -> VerificationManager {
        self.store = Some(store);
        self
    }

    /// Attach a crash-injection plan evaluated at each named crash point.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> VerificationManager {
        self.crash_plan = Some(plan);
        self
    }

    /// The clock this manager reads for all implicit `now` values.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The telemetry bundle receiving this manager's metrics, spans and
    /// audit events.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Scope subsequent workflow calls to a distributed-trace context: the
    /// workflow spans (host attestation, enrollment) and their inner steps
    /// become children of `ctx`, and crash points annotate it. Pass `None`
    /// to clear. The remote orchestration layer sets this around each call.
    pub fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.active_trace = ctx;
    }

    /// The distributed-trace context currently scoping workflow calls.
    pub fn trace_context(&self) -> Option<&TraceContext> {
        self.active_trace.as_ref()
    }

    /// Open a top-level workflow span. Under an active trace context the
    /// span joins the trace and `active_trace` is swapped to its context so
    /// inner steps chain under it — the caller must restore the saved
    /// context when the workflow returns.
    fn workflow_span(&mut self, name: &str, now: u64) -> SpanGuard {
        match self.active_trace.clone() {
            Some(parent) => {
                let (ctx, guard) = self.telemetry.trace_child(&parent, "vm", name, now);
                self.active_trace = Some(ctx);
                guard
            }
            None => self.telemetry.span(name, now),
        }
    }

    /// Open an inner workflow step span, chained under the active trace
    /// context when one is set. Returns the step's own context (for
    /// propagation to a remote backend) alongside the guard.
    fn step_span(&self, name: &str, now: u64) -> (Option<TraceContext>, SpanGuard) {
        match &self.active_trace {
            Some(parent) => {
                let (ctx, guard) = self.telemetry.trace_child(parent, "vm", name, now);
                (Some(ctx), guard)
            }
            None => (None, self.telemetry.span(name, now)),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// The CA certificate to provision into the controller's trust store —
    /// the paper's replacement for per-client keystore maintenance.
    pub fn ca_certificate(&self) -> &Certificate {
        self.ca.certificate()
    }

    /// Authenticate a VM-originated message (the paper's HMAC key).
    pub fn hmac_tag(&self, message: &[u8]) -> [u8; 32] {
        vnfguard_crypto::hmac::hmac_sha256(&self.hmac_key, message)
    }

    /// The VM-generated HMAC key, for distribution to host agents so they
    /// can authenticate VM-originated notifications (the paper's §2 key).
    pub fn share_hmac_key(&self) -> [u8; 32] {
        self.hmac_key
    }

    /// Reference database of known-good host file digests.
    pub fn reference_db_mut(&mut self) -> &mut ReferenceDatabase {
        &mut self.reference_db
    }

    /// Whitelist a VNF credential-enclave measurement (SGX backend; the
    /// paper's original single-TEE form).
    pub fn trust_enclave(&mut self, measurement: Measurement, label: &str) {
        self.trust_enclave_for(BackendKind::SgxEpid, measurement, label);
    }

    /// Whitelist a workload measurement for one backend: MRENCLAVE under
    /// SGX, the normalized CVM launch measurement under SNP. The key is
    /// `(backend, measurement)`, so cross-backend presentation of the
    /// same bytes stays unauthorized.
    pub fn trust_enclave_for(
        &mut self,
        backend: BackendKind,
        measurement: Measurement,
        label: &str,
    ) {
        self.trusted_enclaves
            .insert((backend, measurement), label.to_string());
    }

    /// Whitelist an integrity-attestation-enclave measurement (SGX).
    pub fn trust_integrity_enclave(&mut self, measurement: Measurement, label: &str) {
        self.trust_integrity_enclave_for(BackendKind::SgxEpid, measurement, label);
    }

    /// Whitelist a host integrity-attestation measurement for one backend.
    pub fn trust_integrity_enclave_for(
        &mut self,
        backend: BackendKind,
        measurement: Measurement,
        label: &str,
    ) {
        self.trusted_integrity_enclaves
            .insert((backend, measurement), label.to_string());
    }

    /// The per-backend appraisal policies in force.
    pub fn backend_policies(&self) -> &PolicyRegistry {
        &self.policies
    }

    /// Override the appraisal policy for one backend (the registry starts
    /// uniform at the config's [`TcbPolicy`] equivalent).
    pub fn set_backend_policy(&mut self, backend: BackendKind, policy: BackendPolicy) {
        self.policies.set(backend, policy);
    }

    /// Register a host's TPM AIK (the §4 extension).
    pub fn register_host_tpm(
        &mut self,
        host_id: &str,
        aik: vnfguard_crypto::ed25519::VerifyingKey,
    ) {
        let now = self.clock.now();
        let record = self.hosts.entry(host_id.to_string()).or_insert(HostRecord {
            host_id: host_id.to_string(),
            verdict: Verdict::UnknownComponents,
            attested_at: 0,
            iml_entries: 0,
            // Placeholder until the host actually attests; the record is
            // untrusted (UnknownComponents) so the value never gates anything.
            backend: BackendKind::SgxEpid,
            tpm_aik: None,
        });
        record.tpm_aik = Some(aik);
        self.event(now, "tpm_registered", host_id);
    }

    fn event(&self, time: u64, kind: &str, detail: &str) {
        self.telemetry.event(time, kind, detail);
    }

    /// WAL-before-response: seal and append `record`, failing the
    /// operation if the journal write fails. A no-op without a store.
    fn journal(&self, record: &WalRecord) -> Result<(), CoreError> {
        if let Some(store) = &self.store {
            let begun = std::time::Instant::now();
            store.append(record)?;
            self.metrics
                .wal_append_micros
                .record(begun.elapsed().as_micros() as u64);
            self.metrics.wal_records.inc();
        }
        Ok(())
    }

    /// Journal a whole workflow's records in one flush (see
    /// [`StateStore::append_group`]): with group commit enabled on the
    /// store, the records land in a single group frame — one device write
    /// for a multi-record workflow — and a torn tail drops all of them or
    /// none. A no-op without a store.
    fn journal_group(&self, records: &[WalRecord]) -> Result<(), CoreError> {
        if let Some(store) = &self.store {
            let begun = std::time::Instant::now();
            store.append_group(records)?;
            self.metrics
                .wal_append_micros
                .record(begun.elapsed().as_micros() as u64);
            self.metrics.wal_records.add(records.len() as u64);
        }
        Ok(())
    }

    /// Journal from a path whose signature cannot surface an error. The
    /// failure is still audited so an operator sees the durability gap.
    fn journal_infallible(&self, record: &WalRecord) {
        if let Err(e) = self.journal(record) {
            self.event(self.clock.now(), "wal_append_failed", &e.to_string());
        }
    }

    /// Evaluate the crash plan at `site`. A firing plan kills the manager:
    /// the WAL retains whatever was journaled, memory mutations after the
    /// site never happen, and every later call fails [`CoreError::VmCrashed`].
    fn crash_point(&mut self, site: &str) -> Result<(), CoreError> {
        let fired = self
            .crash_plan
            .as_ref()
            .is_some_and(|plan| plan.fires(site));
        if fired {
            self.crashed = Some(site.to_string());
            self.event(self.clock.now(), "vm_crashed", site);
            if let Some(ctx) = &self.active_trace {
                // Stitch the crash onto the active trace and remember the
                // context so the recovery pass (a new manager incarnation
                // sharing this telemetry bundle) can annotate the same
                // trace with the generation it restores into.
                self.telemetry
                    .trace_annotate(ctx, self.clock.now(), "crash", site);
                self.telemetry.traces().set_crash_scope(ctx.clone());
            }
            return Err(CoreError::VmCrashed(site.to_string()));
        }
        Ok(())
    }

    /// A crashed manager answers nothing until recovered; a fenced one —
    /// deposed by a promoted standby at a higher replication epoch —
    /// answers nothing ever again (its timeline is dead).
    fn ensure_alive(&self) -> Result<(), CoreError> {
        if let Some(site) = &self.crashed {
            return Err(CoreError::VmCrashed(site.clone()));
        }
        if let Some(replication) = &self.replication {
            if replication.is_fenced() {
                return Err(CoreError::ServiceUnavailable(format!(
                    "manager fenced: a newer primary holds a replication epoch above {}",
                    replication.epoch()
                )));
            }
        }
        Ok(())
    }

    /// Occupancy of the attached state store, if any.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// Distribution of wall-clock WAL append latency (empty when the
    /// manager runs volatile). Feeds the per-shard health snapshot.
    pub fn wal_append_latency(&self) -> vnfguard_telemetry::HistogramSnapshot {
        self.metrics.wal_append_micros.snapshot()
    }

    /// Total WAL records journaled by this incarnation's counter.
    pub fn wal_record_count(&self) -> u64 {
        self.metrics.wal_records.get()
    }

    /// The recovery pass that produced this incarnation, if any.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// The crash site that killed this manager, if a crash point fired.
    pub fn crashed_site(&self) -> Option<&str> {
        self.crashed.as_deref()
    }

    /// Attach the primary-side replication handle. The same [`ReplicaSet`]
    /// clone must already be installed as the store's append observer —
    /// this hook only gives the manager fencing awareness and the
    /// `GET /vm/replication` surface.
    pub fn with_replication(&mut self, replication: ReplicaSet) {
        self.replication = Some(replication);
    }

    /// Role, epoch, and per-standby lag; `None` when unreplicated.
    /// Reading refreshes the replication gauges, mirroring how
    /// [`lifecycle_status`](Self::lifecycle_status) refreshes its own.
    pub fn replication_status(&self) -> Option<ReplicationStatus> {
        self.replication.as_ref().map(ReplicaSet::status)
    }

    /// Stream a liveness frame to every standby (a no-op when
    /// unreplicated). Drains any buffered records first, so a quiet
    /// primary still converges its standbys.
    pub fn replication_heartbeat(&self) {
        if let Some(replication) = &self.replication {
            replication.heartbeat();
        }
    }

    /// Kill this incarnation in place (node-loss injection): every later
    /// call fails [`CoreError::VmCrashed`], exactly as if a crash point
    /// fired. The WAL and the standbys keep what was already journaled.
    pub fn halt(&mut self, reason: &str) {
        self.crashed = Some(reason.to_string());
        self.event(self.clock.now(), "vm_halted", reason);
    }

    /// Whether the CA's revocation registry contains `serial`.
    pub fn credential_is_revoked(&self, serial: u64) -> bool {
        self.ca.is_revoked(serial)
    }

    /// The manager's audit journal (retained events, oldest first).
    pub fn events(&self) -> Vec<VmEvent> {
        self.telemetry.journal().events()
    }

    pub fn host_record(&self, host_id: &str) -> Option<&HostRecord> {
        self.hosts.get(host_id)
    }

    /// Every host trust record this manager holds (the service layer
    /// propagates these to non-authority shards after attestations, so
    /// shard-local enrollment checks see the authority's verdicts).
    pub fn host_records(&self) -> Vec<HostRecord> {
        self.hosts.values().cloned().collect()
    }

    pub fn enrollments(&self) -> impl Iterator<Item = &EnrollmentRecord> {
        self.enrollments.values()
    }

    fn new_challenge(&mut self, subject: ChallengeSubject, now: u64) -> Challenge {
        let id = self.next_challenge;
        self.next_challenge += 1;
        let challenge = Challenge {
            id,
            nonce: self.rng.gen_array::<32>(),
            issued_at: now,
            subject,
        };
        self.challenges.insert(id, challenge.clone());
        self.metrics.challenges.inc();
        challenge
    }

    fn take_challenge(&mut self, id: u64, now: u64) -> Result<Challenge, CoreError> {
        let challenge = self
            .challenges
            .remove(&id)
            .ok_or_else(|| CoreError::BadChallenge(format!("unknown challenge {id}")))?;
        if now > challenge.issued_at + self.config.challenge_lifetime_secs {
            return Err(CoreError::BadChallenge(format!(
                "challenge {id} expired"
            )));
        }
        Ok(challenge)
    }

    // ---- Steps 1–2: host attestation -------------------------------------

    /// Step 1: initiate remote attestation of a container host.
    pub fn begin_host_attestation(&mut self, host_id: &str) -> Challenge {
        let now = self.clock.now();
        self.event(now, "host_attestation_started", host_id);
        self.new_challenge(
            ChallengeSubject::Host {
                host_id: host_id.to_string(),
            },
            now,
        )
    }

    /// Step 2: verify the evidence with the backend's verifier (IAS for
    /// SGX, the offline VCEK chain for SNP) and appraise the measurement
    /// list.
    pub fn complete_host_attestation(
        &mut self,
        backend: &mut dyn AttestationBackend,
        challenge_id: u64,
        evidence: &HostEvidence,
    ) -> Result<Verdict, CoreError> {
        let now = self.clock.now();
        let saved_trace = self.active_trace.clone();
        let result = {
            let _span = self
                .workflow_span("host_attestation", now)
                .with_histogram(self.metrics.host_attestation_micros.clone());
            self.host_attestation_inner(backend, challenge_id, evidence, now)
        };
        self.active_trace = saved_trace;
        match &result {
            Ok(_) => self.metrics.host_attestations.inc(),
            Err(_) => self.metrics.host_attestation_failures.inc(),
        }
        result
    }

    fn host_attestation_inner(
        &mut self,
        backend: &mut dyn AttestationBackend,
        challenge_id: u64,
        evidence: &HostEvidence,
        now: u64,
    ) -> Result<Verdict, CoreError> {
        let challenge = self.take_challenge(challenge_id, now)?;
        let ChallengeSubject::Host { host_id } = challenge.subject.clone() else {
            return Err(CoreError::BadChallenge(
                "challenge is not a host challenge".into(),
            ));
        };

        // Backend verification of the evidence: signature chains,
        // revocation collateral, TCB status. (The span keeps the name
        // "ias_verify" from the single-TEE days — renaming would orphan
        // every stored trace comparison.)
        let (verify_ctx, verify_span) = self.step_span("ias_verify", now);
        if let Some(ctx) = verify_ctx {
            // A remote backend propagates this step's context on the wire,
            // so its server spans and retry attempts chain under it.
            backend.set_trace_context(Some(ctx));
        }
        let appraised = backend
            .appraise(&evidence.quote, &challenge.nonce)
            .map_err(|e| CoreError::AttestationFailed(e.to_string()));
        drop(verify_span);
        let appraisal = match appraised {
            Ok(appraisal) => appraisal,
            Err(e) => {
                self.event(now, "host_attestation_rejected", &format!("{host_id}: {e}"));
                return Err(e);
            }
        };
        if let Err(reason) = self.policies.policy_for(appraisal.backend).check(&appraisal) {
            self.event(now, "host_attestation_rejected", &format!("{host_id}: {reason}"));
            return Err(CoreError::AttestationFailed(reason));
        }
        let measurement = Measurement(appraisal.measurement);
        if !self
            .trusted_integrity_enclaves
            .contains_key(&(appraisal.backend, measurement))
        {
            self.event(now, "host_attestation_rejected", &format!("{host_id}: unknown enclave"));
            return Err(CoreError::AttestationFailed(format!(
                "integrity measurement {measurement} not whitelisted for backend {}",
                appraisal.backend
            )));
        }

        // The evidence must bind exactly the measurement list we received.
        let expected = host_report_data(&evidence.iml, &challenge.nonce);
        if appraisal.report_data != expected {
            return Err(CoreError::AttestationFailed(
                "quote does not bind the transmitted measurement list".into(),
            ));
        }

        // Appraise the list.
        let (_, appraise_span) = self.step_span("appraise", now);
        let list = evidence.measurement_list()?;
        let result = self.reference_db.appraise(&list, &self.config.appraisal);
        drop(appraise_span);

        // §4 extension: check the TPM anchor if required/available.
        if self.config.require_tpm || evidence.tpm_quote.is_some() {
            let (_, _tpm_span) = self.step_span("tpm_check", now);
            let aik = self
                .hosts
                .get(&host_id)
                .and_then(|h| h.tpm_aik)
                .ok_or_else(|| {
                    CoreError::AttestationFailed(format!("no TPM AIK registered for {host_id}"))
                })?;
            let quote = evidence.parsed_tpm_quote()?.ok_or_else(|| {
                CoreError::AttestationFailed("TPM quote required but absent".into())
            })?;
            quote
                .verify(&aik, &challenge.nonce)
                .map_err(|e| CoreError::AttestationFailed(e.to_string()))?;
            if quote.pcr_index != IMA_PCR {
                return Err(CoreError::AttestationFailed("wrong PCR index".into()));
            }
            if quote.pcr_value != list.aggregate() {
                self.event(now, "host_attestation_rejected", &format!("{host_id}: TPM/IML divergence"));
                return Err(CoreError::AttestationFailed(
                    "measurement list does not match the TPM-anchored aggregate".into(),
                ));
            }
        }

        let verdict = result.verdict;
        let previous_aik = self.hosts.get(&host_id).and_then(|h| h.tpm_aik);
        self.hosts.insert(
            host_id.clone(),
            HostRecord {
                host_id: host_id.clone(),
                verdict,
                attested_at: now,
                iml_entries: result.entries,
                backend: appraisal.backend,
                tpm_aik: previous_aik,
            },
        );
        self.metrics.host_attestations_by_backend[appraisal.backend.as_u8() as usize].inc();
        self.event(
            now,
            if verdict.is_trusted() {
                "host_attested"
            } else {
                "host_untrusted"
            },
            &format!("{host_id}: {verdict:?}"),
        );
        Ok(verdict)
    }

    fn host_is_trusted(&self, host_id: &str, now: u64) -> bool {
        match self.hosts.get(host_id) {
            Some(record) => {
                record.verdict.is_trusted()
                    && now <= record.attested_at + self.config.host_freshness_secs
            }
            None => false,
        }
    }

    /// Graceful degradation: answer a host-trust query from the cached
    /// verdict when the attestation service cannot be reached. Only
    /// permitted when the policy opts in, the host's **last real appraisal
    /// succeeded**, and that appraisal is within `degraded_ttl_secs`. Every
    /// degraded answer is audit-logged as a `DegradedVerdict` event so
    /// operators can see exactly which trust decisions lacked fresh
    /// evidence.
    pub fn degraded_host_verdict(
        &mut self,
        host_id: &str,
    ) -> Result<Verdict, CoreError> {
        let now = self.clock.now();
        self.ensure_alive()?;
        if !self.config.degraded_verdicts {
            return Err(CoreError::ServiceUnavailable(format!(
                "attestation service unreachable and degraded verdicts are disabled \
                 (host {host_id})"
            )));
        }
        let record = self.hosts.get(host_id).ok_or_else(|| {
            CoreError::ServiceUnavailable(format!(
                "attestation service unreachable and host {host_id} has no cached verdict"
            ))
        })?;
        if !record.verdict.is_trusted() {
            return Err(CoreError::ServiceUnavailable(format!(
                "attestation service unreachable and host {host_id}'s last appraisal failed"
            )));
        }
        if now > record.attested_at + self.config.degraded_ttl_secs {
            return Err(CoreError::ServiceUnavailable(format!(
                "attestation service unreachable and host {host_id}'s cached verdict expired"
            )));
        }
        let verdict = record.verdict;
        self.journal(&WalRecord::DegradedVerdictGranted {
            host_id: host_id.to_string(),
            at: now,
        })?;
        self.crash_point("degraded.verdict")?;
        self.metrics.degraded_verdicts.inc();
        self.event(
            now,
            "DegradedVerdict",
            &format!("{host_id}: reusing cached {verdict:?} (attestation service unreachable)"),
        );
        Ok(verdict)
    }

    // ---- Steps 3–5: VNF attestation and enrollment ------------------------

    /// Step 3: initiate attestation of a VNF credential enclave. Fails
    /// unless the hosting platform has a fresh, trusted attestation — the
    /// paper's "the protocol continues only if the host is considered
    /// trustworthy following the appraisal".
    pub fn begin_vnf_attestation(
        &mut self,
        host_id: &str,
        vnf_name: &str,
    ) -> Result<Challenge, CoreError> {
        let now = self.clock.now();
        if !self.host_is_trusted(host_id, now) {
            self.event(now, "vnf_attestation_refused", &format!("{vnf_name}: host {host_id} untrusted"));
            return Err(CoreError::WorkflowViolation(format!(
                "host {host_id} has no fresh trusted attestation"
            )));
        }
        self.event(now, "vnf_attestation_started", vnf_name);
        Ok(self.new_challenge(
            ChallengeSubject::Vnf {
                host_id: host_id.to_string(),
                vnf_name: vnf_name.to_string(),
            },
            now,
        ))
    }

    /// Steps 4–5: verify the enclave quote via IAS, then generate and wrap
    /// the credentials for the attested enclave's provisioning key.
    ///
    /// Returns the wrapped bundle (deliver to the enclave) and the issued
    /// certificate (for records; it is public anyway).
    ///
    /// Equivalent to [`prepare_vnf_enrollment`](Self::prepare_vnf_enrollment)
    /// immediately followed by [`commit_vnf_enrollment`](Self::commit_vnf_enrollment)
    /// — use the two-phase form when the bundle crosses a network that can
    /// fail mid-delivery.
    pub fn complete_vnf_enrollment(
        &mut self,
        backend: &mut dyn AttestationBackend,
        challenge_id: u64,
        quote_bytes: &[u8],
        provisioning_key: &[u8; 32],
        controller_cn: &str,
    ) -> Result<(Vec<u8>, Certificate), CoreError> {
        let (serial, wrapped, certificate) = self.prepare_vnf_enrollment(
            backend,
            challenge_id,
            quote_bytes,
            provisioning_key,
            controller_cn,
        )?;
        self.commit_vnf_enrollment(serial)?;
        Ok((wrapped, certificate))
    }

    /// Phase one of enrollment: run every check of steps 4–5, issue the
    /// certificate and wrap the credentials — but record the enrollment as
    /// *pending* rather than established. The returned serial is the commit
    /// token. If delivery of the wrapped bundle fails, call
    /// [`abort_vnf_enrollment`](Self::abort_vnf_enrollment) to revoke the
    /// issued certificate; nothing half-provisioned survives.
    pub fn prepare_vnf_enrollment(
        &mut self,
        backend: &mut dyn AttestationBackend,
        challenge_id: u64,
        quote_bytes: &[u8],
        provisioning_key: &[u8; 32],
        controller_cn: &str,
    ) -> Result<(u64, Vec<u8>, Certificate), CoreError> {
        let now = self.clock.now();
        let saved_trace = self.active_trace.clone();
        let result = {
            let _span = self
                .workflow_span("vnf_enrollment", now)
                .with_histogram(self.metrics.enrollment_micros.clone());
            self.prepare_enrollment_inner(
                backend,
                challenge_id,
                quote_bytes,
                provisioning_key,
                controller_cn,
                now,
            )
        };
        self.active_trace = saved_trace;
        if result.is_err() {
            self.metrics.enrollment_failures.inc();
        }
        result
    }

    fn prepare_enrollment_inner(
        &mut self,
        backend: &mut dyn AttestationBackend,
        challenge_id: u64,
        quote_bytes: &[u8],
        provisioning_key: &[u8; 32],
        controller_cn: &str,
        now: u64,
    ) -> Result<(u64, Vec<u8>, Certificate), CoreError> {
        self.ensure_alive()?;
        let challenge = self.take_challenge(challenge_id, now)?;
        let ChallengeSubject::Vnf { host_id, vnf_name } = challenge.subject.clone() else {
            return Err(CoreError::BadChallenge(
                "challenge is not a VNF challenge".into(),
            ));
        };
        // Host trust may have been revoked between steps.
        if !self.host_is_trusted(&host_id, now) {
            return Err(CoreError::WorkflowViolation(format!(
                "host {host_id} lost trust during enrollment"
            )));
        }

        let (verify_ctx, verify_span) = self.step_span("ias_verify", now);
        if let Some(ctx) = verify_ctx {
            backend.set_trace_context(Some(ctx));
        }
        let appraised = backend
            .appraise(quote_bytes, &challenge.nonce)
            .map_err(|e| CoreError::AttestationFailed(e.to_string()));
        drop(verify_span);
        let appraisal = match appraised {
            Ok(appraisal) => appraisal,
            Err(e) => {
                self.event(now, "vnf_attestation_rejected", &format!("{vnf_name}: {e}"));
                return Err(e);
            }
        };
        if let Err(reason) = self.policies.policy_for(appraisal.backend).check(&appraisal) {
            self.event(now, "vnf_attestation_rejected", &format!("{vnf_name}: {reason}"));
            return Err(CoreError::AttestationFailed(reason));
        }
        let measurement = Measurement(appraisal.measurement);
        // The workload measurement must be whitelisted *for this backend*:
        // this is where a trojaned VNF image (different enclave or CVM
        // code) — or known-good bytes presented through the wrong TEE —
        // is caught.
        if !self
            .trusted_enclaves
            .contains_key(&(appraisal.backend, measurement))
        {
            self.event(
                now,
                "vnf_attestation_rejected",
                &format!("{vnf_name}: measurement {measurement} unknown"),
            );
            return Err(CoreError::AttestationFailed(format!(
                "enclave measurement {measurement} not whitelisted for backend {}",
                appraisal.backend
            )));
        }
        // The evidence must bind the provisioning key we are about to use —
        // otherwise a man-in-the-middle could substitute its own key.
        let expected = provisioning_report_data(provisioning_key, &challenge.nonce);
        if appraisal.report_data != expected {
            return Err(CoreError::AttestationFailed(
                "quote does not bind the provisioning key".into(),
            ));
        }

        // Step 5: generate key material, certify, wrap.
        let (_, issue_span) = self.step_span("issue_certificate", now);
        let key_seed = self.rng.gen_array::<32>();
        let client_key = SigningKey::from_seed(&key_seed);
        let certificate = self.ca.issue(
            DistinguishedName::new(&vnf_name).with_org(&self.config.name),
            client_key.public_key(),
            &IssueProfile {
                validity_secs: self.config.credential_validity_secs,
                ..IssueProfile::vnf_client(appraisal.measurement)
            },
            now,
        );
        self.metrics.certificates_issued.inc();
        drop(issue_span);
        let (_, wrap_span) = self.step_span("wrap_credentials", now);
        let bundle = ProvisionBundle {
            key_seed,
            certificate: certificate.clone(),
            ca_certificate: self.ca.certificate().clone(),
            server_cn: controller_cn.to_string(),
            ca_previous: self.drain_window_roots(now),
        };
        let wrapped = wrap_credentials(&mut self.rng, provisioning_key, &bundle);
        drop(wrap_span);
        let serial = certificate.serial();
        // WAL-before-response: the issuance and the preparation must be
        // durable before the serial (the commit token) leaves the manager.
        // One workflow, one flush: under group commit both records share a
        // group frame, so a crash can never persist the issuance without
        // the preparation that explains it.
        let key_hash = provisioning_key_hash(provisioning_key);
        self.journal_group(&[
            WalRecord::CertIssued {
                serial,
                subject: vnf_name.clone(),
                at: now,
            },
            WalRecord::EnrollmentPrepared {
                serial,
                vnf_name: vnf_name.clone(),
                host_id: host_id.clone(),
                mrenclave: appraisal.measurement,
                provisioning_key_hash: key_hash,
                backend: appraisal.backend.as_u8(),
                at: now,
            },
        ])?;
        self.crash_point("enrollment.prepare")?;
        self.pending_enrollments.insert(
            serial,
            PendingEnrollment {
                serial,
                vnf_name: vnf_name.clone(),
                host_id,
                backend: appraisal.backend,
                mrenclave: measurement,
                provisioning_key_hash: key_hash,
                prepared_at: now,
            },
        );
        self.event(now, "enrollment_prepared", &format!("{vnf_name} serial {serial}"));
        Ok((serial, wrapped, certificate))
    }

    /// Phase two of enrollment: the wrapped bundle reached the enclave, so
    /// promote the pending record to an established enrollment.
    pub fn commit_vnf_enrollment(&mut self, serial: u64) -> Result<(), CoreError> {
        let now = self.clock.now();
        self.ensure_alive()?;
        if !self.pending_enrollments.contains_key(&serial) {
            return Err(CoreError::WorkflowViolation(format!(
                "no pending enrollment with serial {serial}"
            )));
        }
        self.journal(&WalRecord::EnrollmentCommitted { serial, at: now })?;
        self.crash_point("enrollment.commit")?;
        let pending = self.pending_enrollments.remove(&serial).ok_or_else(|| {
            CoreError::WorkflowViolation(format!("no pending enrollment with serial {serial}"))
        })?;
        self.event(
            now,
            "vnf_enrolled",
            &format!("{} serial {serial}", pending.vnf_name),
        );
        let backend = pending.backend;
        self.enrollments.insert(
            serial,
            EnrollmentRecord {
                serial,
                vnf_name: pending.vnf_name,
                host_id: pending.host_id,
                backend,
                mrenclave: pending.mrenclave,
                provisioning_key_hash: pending.provisioning_key_hash,
                issued_at: now,
                revoked: false,
            },
        );
        self.metrics.enrollments.inc();
        self.metrics.enrollments_by_backend[backend.as_u8() as usize].inc();
        Ok(())
    }

    /// Roll back a prepared enrollment whose credential never reached the
    /// enclave: the issued certificate is revoked (it may have crossed a
    /// partially working network) and the pending record is dropped, so the
    /// manager's state is exactly as if the enrollment never happened —
    /// except for the audit trail and the CRL entry.
    pub fn abort_vnf_enrollment(
        &mut self,
        serial: u64,
        reason: &str,
    ) -> Result<(), CoreError> {
        let now = self.clock.now();
        self.ensure_alive()?;
        if !self.pending_enrollments.contains_key(&serial) {
            return Err(CoreError::WorkflowViolation(format!(
                "no pending enrollment with serial {serial}"
            )));
        }
        self.journal(&WalRecord::EnrollmentAborted {
            serial,
            reason: reason.to_string(),
            at: now,
        })?;
        self.crash_point("enrollment.abort")?;
        let pending = self.pending_enrollments.remove(&serial).ok_or_else(|| {
            CoreError::WorkflowViolation(format!("no pending enrollment with serial {serial}"))
        })?;
        self.ca
            .revoke(serial, RevocationReason::CessationOfOperation, now);
        self.crl_dirty = true;
        self.metrics.enrollment_aborts.inc();
        self.event(
            now,
            "enrollment_rolled_back",
            &format!("{} serial {serial}: {reason}", pending.vnf_name),
        );
        Ok(())
    }

    /// Enrollments issued but not yet committed (normally transient).
    pub fn pending_enrollments(&self) -> impl Iterator<Item = &PendingEnrollment> {
        self.pending_enrollments.values()
    }

    /// Abort every pending enrollment older than the configured
    /// `pending_enrollment_ttl_secs` — the bound on the otherwise unbounded
    /// prepare queue. Each expiry revokes the issued serial (the wrapped
    /// bundle may be in flight somewhere) and counts as an enrollment
    /// abort. A TTL of `0` disables the sweep. Returns how many expired.
    pub fn sweep_pending_enrollments(&mut self) -> Result<usize, CoreError> {
        let now = self.clock.now();
        self.ensure_alive()?;
        let ttl = self.config.pending_enrollment_ttl_secs;
        if ttl == 0 {
            return Ok(0);
        }
        let stale: Vec<u64> = self
            .pending_enrollments
            .values()
            .filter(|p| now > p.prepared_at.saturating_add(ttl))
            .map(|p| p.serial)
            .collect();
        let mut swept = 0;
        for serial in stale {
            self.journal(&WalRecord::EnrollmentAborted {
                serial,
                reason: "pending enrollment expired".into(),
                at: now,
            })?;
            self.crash_point("enrollment.expire")?;
            if let Some(pending) = self.pending_enrollments.remove(&serial) {
                self.ca
                    .revoke(serial, RevocationReason::CessationOfOperation, now);
                self.metrics.enrollment_aborts.inc();
                self.event(
                    now,
                    "enrollment_expired",
                    &format!("{} serial {serial}", pending.vnf_name),
                );
                swept += 1;
            }
        }
        Ok(swept)
    }

    /// Rebuild a manager from its sealed store after a crash.
    ///
    /// The deterministic parts of the manager's identity (CA key, HMAC
    /// key) re-derive from `seed` exactly as in
    /// [`with_runtime`](Self::with_runtime); the authority state —
    /// serials, enrollments, revocations — replays from the snapshot and
    /// log. The pass then resolves what the crash left dangling:
    ///
    /// - committed enrollments and the revocation registry are restored
    ///   verbatim (nothing acknowledged is ever lost);
    /// - pending enrollments older than the grace period (the configured
    ///   pending TTL, else [`DEFAULT_ORPHAN_GRACE_SECS`]) are **aborted**
    ///   and their serials revoked — their bundles may have crossed the
    ///   wire, so fail closed — with a revocation notice pushed through
    ///   `notifier`; younger ones are restored as still-pending;
    /// - undelivered revocation notices re-enter the notifier's
    ///   store-and-forward queue.
    ///
    /// Host trust records are deliberately *not* restored: attestation
    /// verdicts are evidence-bound and time-bound, so hosts must re-attest
    /// to the new incarnation.
    pub fn recover(
        config: ManagerConfig,
        seed: &[u8],
        clock: SimClock,
        telemetry: Telemetry,
        store: StateStore,
        mut notifier: Option<&mut RevocationNotifier>,
    ) -> Result<(VerificationManager, RecoveryReport), CoreError> {
        let replay = store.replay()?;
        let state = replay.state;
        state.check_invariants().map_err(CoreError::Store)?;
        let now = clock.now();
        let mut vm = VerificationManager::with_runtime(config, seed, clock, telemetry);
        vm.store = Some(store);
        let generation = state.generation + 1;
        // Diverge the DRBG from the dead incarnation: replaying its nonce
        // and key-seed sequence would reuse challenge nonces.
        vm.rng.reseed(
            &[b"recovery generation" as &[u8], &generation.to_be_bytes()].concat(),
        );
        vm.ca.restore_issuance(state.max_serial + 1, state.issued);
        vm.ca.restore_crl_number(state.crl_number);
        // Re-apply committed rotations in epoch order: the per-epoch keys
        // re-derive from the manager seed, and the journaled serials make
        // the replayed roots byte-identical to the pre-crash ones.
        for r in &state.rotations {
            let key = vm.epoch_key(r.epoch);
            vm.ca
                .install_rotation(key, vm.config.ca_validity, r.root_serial, r.cross_serial);
        }
        if let Some(last) = state.rotations.last() {
            vm.rotation_drain_deadline = Some(last.at + vm.config.rotation_drain_secs);
        }
        let rotation_rolled_back = state.pending_rotation.is_some();
        if let Some(epoch) = state.pending_rotation {
            // Prepared but never committed: the key swap never happened and
            // no certificate was journaled, so recovery leaves the CA on
            // the pre-crash epoch. The prepare marker is idempotent — a
            // retried rotation re-prepares the same epoch.
            vm.event(
                now,
                "ca_rotation_rolled_back",
                &format!("epoch {epoch} prepared but never committed"),
            );
        }
        for (serial, (reason, at)) in &state.revoked {
            vm.ca
                .revoke(*serial, RevocationReason::from_u8(*reason), *at);
        }
        for e in state.enrollments.values() {
            vm.enrollments.insert(
                e.serial,
                EnrollmentRecord {
                    serial: e.serial,
                    vnf_name: e.vnf_name.clone(),
                    host_id: e.host_id.clone(),
                    // Unknown codes (from a future incarnation's WAL) fall
                    // back to SGX, the only backend that predates the tag.
                    backend: BackendKind::from_u8(e.backend).unwrap_or(BackendKind::SgxEpid),
                    mrenclave: Measurement(e.mrenclave),
                    provisioning_key_hash: e.provisioning_key_hash,
                    issued_at: e.issued_at,
                    revoked: e.revoked,
                },
            );
        }
        let grace = match vm.config.pending_enrollment_ttl_secs {
            0 => DEFAULT_ORPHAN_GRACE_SECS,
            ttl => ttl,
        };
        let mut orphans_aborted = 0;
        let mut pending_restored = 0;
        for p in state.pending.values() {
            if now > p.prepared_at.saturating_add(grace) {
                vm.journal(&WalRecord::EnrollmentAborted {
                    serial: p.serial,
                    reason: "orphaned by crash".into(),
                    at: now,
                })?;
                vm.ca
                    .revoke(p.serial, RevocationReason::CessationOfOperation, now);
                vm.metrics.enrollment_aborts.inc();
                vm.metrics.recovered_orphans.inc();
                vm.event(
                    now,
                    "enrollment_rolled_back",
                    &format!("{} serial {}: orphaned by crash", p.vnf_name, p.serial),
                );
                if let Some(n) = notifier.as_deref_mut() {
                    let tag = vm.hmac_tag(&revocation_message(&p.host_id, p.serial));
                    n.notify(&p.host_id, p.serial, tag, now);
                }
                orphans_aborted += 1;
            } else {
                vm.pending_enrollments.insert(
                    p.serial,
                    PendingEnrollment {
                        serial: p.serial,
                        vnf_name: p.vnf_name.clone(),
                        host_id: p.host_id.clone(),
                        backend: BackendKind::from_u8(p.backend)
                            .unwrap_or(BackendKind::SgxEpid),
                        mrenclave: Measurement(p.mrenclave),
                        provisioning_key_hash: p.provisioning_key_hash,
                        prepared_at: p.prepared_at,
                    },
                );
                pending_restored += 1;
            }
        }
        let notices_requeued = state.notices.len();
        if let Some(n) = notifier {
            n.restore(state.notices.iter().map(|notice| {
                crate::revocation::PendingNotice {
                    host_id: notice.host_id.clone(),
                    serial: notice.serial,
                    tag: notice.tag,
                    queued_at: notice.queued_at,
                    attempts: 0,
                }
            }));
        }
        vm.journal(&WalRecord::RecoveryCompleted { generation, at: now })?;
        vm.metrics.recoveries.inc();
        let report = RecoveryReport {
            at: now,
            generation,
            from_snapshot: replay.from_snapshot,
            truncated_tail: replay.truncated_tail,
            replayed_records: replay.replayed_records,
            enrollments_restored: state.enrollments.len(),
            pending_restored,
            revocations_restored: state.revoked.len(),
            rotations_restored: state.rotations.len(),
            rotation_rolled_back,
            orphans_aborted,
            notices_requeued,
        };
        vm.event(
            now,
            "recovery_completed",
            &format!(
                "generation {generation}: {} enrollments, {} pending restored, \
                 {} orphans aborted, {} notices requeued",
                report.enrollments_restored,
                report.pending_restored,
                report.orphans_aborted,
                report.notices_requeued
            ),
        );
        if let Some(ctx) = vm.telemetry.traces().take_crash_scope() {
            // The crash fired under a distributed trace; stitch the
            // recovery generation onto that same trace so operators see
            // crash and restart as one causal story.
            vm.telemetry.trace_annotate(
                &ctx,
                now,
                "recovery",
                &format!("generation {generation}"),
            );
        }
        vm.last_recovery = Some(report.clone());
        Ok((vm, report))
    }

    // ---- Revocation --------------------------------------------------------

    /// Revoke one credential by serial.
    pub fn revoke_credential(
        &mut self,
        serial: u64,
        reason: RevocationReason,
    ) -> Result<(), CoreError> {
        let now = self.clock.now();
        self.ensure_alive()?;
        if !self.enrollments.contains_key(&serial) {
            return Err(CoreError::WorkflowViolation(format!(
                "no enrollment with serial {serial}"
            )));
        }
        self.journal(&WalRecord::CredentialRevoked {
            serial,
            reason_code: reason.to_u8(),
            at: now,
        })?;
        self.crash_point("revocation.revoke")?;
        let record = self.enrollments.get_mut(&serial).ok_or_else(|| {
            CoreError::WorkflowViolation(format!("no enrollment with serial {serial}"))
        })?;
        record.revoked = true;
        self.ca.revoke(serial, reason, now);
        // The cached distribution CRL no longer covers this serial.
        self.crl_dirty = true;
        self.metrics.revocations.inc();
        self.event(now, "credential_revoked", &format!("serial {serial}"));
        Ok(())
    }

    /// Revoke every credential issued to VNFs on a host (platform
    /// compromise response).
    pub fn revoke_host(&mut self, host_id: &str) -> usize {
        let now = self.clock.now();
        let serials: Vec<u64> = self
            .enrollments
            .values()
            .filter(|e| e.host_id == host_id && !e.revoked)
            .map(|e| e.serial)
            .collect();
        for serial in &serials {
            let _ = self.revoke_credential(*serial, RevocationReason::PlatformCompromise);
        }
        // The host loses its trusted status.
        if let Some(record) = self.hosts.get_mut(host_id) {
            record.verdict = Verdict::Mismatch;
        }
        self.event(now, "host_revoked", &format!("{host_id}: {} credentials", serials.len()));
        serials.len()
    }

    /// Produce the current CRL for distribution to relying parties.
    pub fn current_crl(&self, lifetime_secs: u64) -> Crl {
        let now = self.clock.now();
        self.ca.current_crl(now, lifetime_secs)
    }

    /// Read-only preview of the fleet CRL: this shard's revocations merged
    /// with `extra` (the other shards' entries), signed by this shard's CA
    /// key. Like [`current_crl`](Self::current_crl), neither journals nor
    /// bumps the CRL number.
    pub fn current_crl_merged(&self, extra: &[CrlEntry], lifetime_secs: u64) -> Crl {
        let now = self.clock.now();
        self.ca.current_crl_with(extra, now, lifetime_secs)
    }

    // ---- Credential lifecycle ---------------------------------------------

    /// Issue a new numbered CRL for distribution. Unlike
    /// [`current_crl`](Self::current_crl) (a read-only preview), this bumps
    /// the monotonic CRL number and journals the issuance first, so the
    /// number never regresses across a crash — relying parties use it to
    /// reject replayed revocation data.
    pub fn issue_crl(&mut self) -> Result<Crl, CoreError> {
        self.issue_crl_merged(&[])
    }

    /// The CRL to serve to a polling relying party. Re-serves the most
    /// recently issued numbered CRL byte-for-byte, so distribution reads
    /// (`GET /vm/crl`) neither journal WAL records nor burn CRL numbers. A
    /// fresh CRL is minted through [`issue_crl`](Self::issue_crl)
    /// only when none has been issued yet, when a revocation or key
    /// rotation obsoleted the cached one, or when the cached one passed
    /// its `next_update`.
    pub fn latest_crl(&mut self) -> Result<Crl, CoreError> {
        let now = self.clock.now();
        self.ensure_alive()?;
        match &self.last_crl {
            Some(crl) if !self.crl_dirty && !crl.is_stale(now) => Ok(crl.clone()),
            _ => self.issue_crl(),
        }
    }

    // ---- Shard fleet coordination ------------------------------------------
    //
    // In a sharded deployment the CA key, the CRL number and the rotation
    // epoch are owned by the authority shard (shard 0); the methods below
    // are how the service layer folds the other shards' state into the
    // authority's signed artifacts, and how non-authority shards adopt the
    // authority's decisions. Adoption is deliberately *not* journaled:
    // authority state appears only in the authority's WAL, and recovery
    // re-adopts from the authority's replayed state.

    /// Revocation entries this shard has registered (for folding into the
    /// authority-signed fleet CRL).
    pub fn revoked_entries(&self) -> Vec<CrlEntry> {
        self.ca.revoked_entries().copied().collect()
    }

    /// Whether revocations or a rotation have obsoleted the cached CRL.
    pub fn crl_dirty(&self) -> bool {
        self.crl_dirty
    }

    /// Mark this shard's revocations as folded into a distributed CRL
    /// (called by the service layer after the authority signed them).
    pub fn clear_crl_dirty(&mut self) {
        self.crl_dirty = false;
    }

    /// Authority-shard issuance of a fleet CRL: journal the number bump,
    /// then sign the authority's own revocations merged with `extra` (the
    /// other shards' entries). With no extras this is exactly
    /// [`issue_crl`](Self::issue_crl).
    pub fn issue_crl_merged(&mut self, extra: &[CrlEntry]) -> Result<Crl, CoreError> {
        let now = self.clock.now();
        self.ensure_alive()?;
        self.journal(&WalRecord::CrlIssued {
            number: self.ca.crl_number() + 1,
            at: now,
        })?;
        self.crash_point("crl.issue")?;
        let crl = self
            .ca
            .issue_crl_with(extra, now, self.config.crl_lifetime_secs);
        self.last_crl_issued_at = Some(now);
        self.last_crl = Some(crl.clone());
        self.crl_dirty = false;
        self.metrics.crls_issued.inc();
        self.metrics.crl_age_seconds.set(0);
        self.event(
            now,
            "crl_issued",
            &format!("number {}, {} entries", crl.crl_number, crl.len()),
        );
        Ok(crl)
    }

    /// [`latest_crl`](Self::latest_crl) for the fleet: serve the cached
    /// CRL when it is still fresh, else mint a merged one carrying `extra`.
    /// The caller decides staleness of the *extras* (a shard-side
    /// revocation does not flip this shard's dirty bit) and forces a fresh
    /// issue through [`issue_crl_merged`](Self::issue_crl_merged) instead.
    pub fn latest_crl_merged(&mut self, extra: &[CrlEntry]) -> Result<Crl, CoreError> {
        let now = self.clock.now();
        self.ensure_alive()?;
        match &self.last_crl {
            Some(crl) if !self.crl_dirty && !crl.is_stale(now) => Ok(crl.clone()),
            _ => self.issue_crl_merged(extra),
        }
    }

    /// Adopt a CA rotation decided by the authority shard.
    ///
    /// The epoch key re-derives from the shared construction seed and the
    /// journaled serials, so the installed root and cross certificates are
    /// byte-identical to the authority's. Idempotent for epochs already
    /// adopted; epochs must otherwise arrive in order.
    pub fn adopt_rotation(
        &mut self,
        epoch: u64,
        root_serial: u64,
        cross_serial: u64,
        rotated_at: u64,
    ) -> Result<(), CoreError> {
        self.ensure_alive()?;
        let current = self.ca.epoch() as u64;
        if epoch <= current {
            return Ok(());
        }
        if epoch != current + 1 {
            return Err(CoreError::WorkflowViolation(format!(
                "cannot adopt rotation epoch {epoch} from epoch {current}: not contiguous"
            )));
        }
        let key = self.epoch_key(epoch);
        self.ca
            .install_rotation(key, self.config.ca_validity, root_serial, cross_serial);
        self.crl_dirty = true;
        self.rotation_drain_deadline =
            Some(rotated_at + self.config.rotation_drain_secs);
        self.event(
            self.clock.now(),
            "ca_rotation_adopted",
            &format!("epoch {epoch} from authority shard"),
        );
        Ok(())
    }

    /// Adopt a host trust record decided by the authority shard (which
    /// runs all host attestation). Verdicts are volatile evidence — like
    /// the authority's own host table they are not journaled and do not
    /// survive recovery.
    pub fn adopt_host_record(&mut self, record: HostRecord) {
        self.hosts.insert(record.host_id.clone(), record);
    }

    /// The signing key for CA epoch `epoch`, derived deterministically from
    /// the construction seed (epoch 0 is the original DRBG-derived key, so
    /// this is only meaningful for `epoch >= 1`).
    fn epoch_key(&self, epoch: u64) -> SigningKey {
        let seed = sha256(&[&self.rotation_seed[..], &epoch.to_be_bytes()].concat());
        SigningKey::from_seed(&seed)
    }

    /// Rotate the CA to a fresh key epoch.
    ///
    /// The new root is cross-signed by the *outgoing* key, so relying
    /// parties can verify the handover against the anchor they already
    /// trust (see [`crate::lifecycle::verify_handover`]). Both roots stay
    /// valid through the dual-trust drain window; the revocation registry
    /// and serial allocator carry over. The rotation is two-phase in the
    /// WAL — `CaRotationPrepared` then `CaRotationCommitted` — and
    /// [`recover`](Self::recover) resumes a committed rotation (re-deriving
    /// the epoch key) or rolls back an uncommitted one.
    pub fn rotate_ca(&mut self) -> Result<CaRotation, CoreError> {
        let now = self.clock.now();
        let saved_trace = self.active_trace.clone();
        let result = {
            let _span = self.workflow_span("ca_rotation", now);
            self.rotate_ca_inner(now)
        };
        self.active_trace = saved_trace;
        result
    }

    fn rotate_ca_inner(&mut self, now: u64) -> Result<CaRotation, CoreError> {
        self.ensure_alive()?;
        let epoch = self.ca.epoch() as u64 + 1;
        self.journal(&WalRecord::CaRotationPrepared { epoch, at: now })?;
        self.crash_point("rotation.prepare")?;
        self.event(now, "ca_rotation_prepared", &format!("epoch {epoch}"));

        // Journal the exact serials the rotation will mint, then the
        // commit marker — all durable before any in-memory key swap, so
        // recovery can replay the rotation byte-identically.
        let root_serial = self.ca.next_serial();
        let cross_serial = root_serial + 1;
        self.journal_group(&[
            WalRecord::CertIssued {
                serial: root_serial,
                subject: self.config.name.clone(),
                at: now,
            },
            WalRecord::CertIssued {
                serial: cross_serial,
                subject: format!("{} (cross-signed)", self.config.name),
                at: now,
            },
            WalRecord::CaRotationCommitted {
                epoch,
                root_serial,
                cross_serial,
                at: now,
            },
        ])?;
        self.crash_point("rotation.commit")?;

        let (_, rotate_span) = self.step_span("rotate_keys", now);
        let previous_root = self.ca.certificate().clone();
        let new_key = self.epoch_key(epoch);
        let (new_root, cross_signed) = self.ca.rotate_to(new_key, self.config.ca_validity);
        drop(rotate_span);
        self.metrics.certificates_issued.add(2);
        self.metrics.rotations.inc();
        // Post-rotation CRLs must be signed by the new epoch key; the
        // cached one carries the outgoing signature.
        self.crl_dirty = true;
        let drain_deadline = now + self.config.rotation_drain_secs;
        self.rotation_drain_deadline = Some(drain_deadline);
        self.event(
            now,
            "ca_rotated",
            &format!("epoch {epoch}, dual trust until {drain_deadline}"),
        );
        Ok(CaRotation {
            epoch,
            new_root,
            cross_signed,
            previous_root,
            rotated_at: now,
            drain_deadline,
        })
    }

    /// Renew an established credential without re-running the six-step
    /// enrollment protocol.
    ///
    /// The trust argument is the *cached attestation verdict*: renewal is
    /// only granted while the hosting platform's last appraisal is both
    /// trusted and fresh (the same recency bound enrollment itself uses).
    /// A stale or failed verdict returns
    /// [`CoreError::AttestationFailed`] — the caller must fall back to the
    /// full protocol. The new certificate keeps the enclave binding of the
    /// original enrollment and is wrapped for the same provisioning key;
    /// the old credential stays valid until its own expiry (it was never
    /// compromised — revoking it would break sessions mid-handover).
    pub fn renew_vnf_credential(
        &mut self,
        serial: u64,
        provisioning_key: &[u8; 32],
        controller_cn: &str,
    ) -> Result<(Vec<u8>, Certificate), CoreError> {
        let now = self.clock.now();
        let saved_trace = self.active_trace.clone();
        let result = {
            let _span = self
                .workflow_span("credential_renewal", now)
                .with_histogram(self.metrics.renewal_micros.clone());
            self.renew_inner(serial, provisioning_key, controller_cn, now)
        };
        self.active_trace = saved_trace;
        match &result {
            Ok(_) => self.metrics.renewals.inc(),
            Err(_) => self.metrics.renewal_failures.inc(),
        }
        result
    }

    fn renew_inner(
        &mut self,
        serial: u64,
        provisioning_key: &[u8; 32],
        controller_cn: &str,
        now: u64,
    ) -> Result<(Vec<u8>, Certificate), CoreError> {
        self.ensure_alive()?;
        let old = self
            .enrollments
            .get(&serial)
            .ok_or_else(|| {
                CoreError::WorkflowViolation(format!("no enrollment with serial {serial}"))
            })?
            .clone();
        if old.revoked {
            return Err(CoreError::WorkflowViolation(format!(
                "credential {serial} is revoked; renewal refused"
            )));
        }
        // Serials are public (they appear in certificates and CRLs), so the
        // caller must prove nothing by naming one. What gates the renewal is
        // the provisioning key: only the key the enrollment quote bound may
        // receive the successor bundle — anything else is an attacker asking
        // for a live credential wrapped to a key of their choosing.
        if provisioning_key_hash(provisioning_key) != old.provisioning_key_hash {
            self.event(
                now,
                "renewal_refused",
                &format!(
                    "{} serial {serial}: provisioning key does not match enrollment",
                    old.vnf_name
                ),
            );
            return Err(CoreError::AttestationFailed(format!(
                "provisioning key does not match the one bound at enrollment \
                 of serial {serial}; full re-attestation required"
            )));
        }
        if !self.host_is_trusted(&old.host_id, now) {
            self.event(
                now,
                "renewal_refused",
                &format!(
                    "{} serial {serial}: host {} verdict stale",
                    old.vnf_name, old.host_id
                ),
            );
            return Err(CoreError::AttestationFailed(format!(
                "host {} has no fresh trusted attestation; full re-attestation required",
                old.host_id
            )));
        }
        // The cached verdict must come from the same TEE backend the
        // enrollment was established under: a host that re-attested as a
        // different technology is a different trust story, so the renewal
        // falls back to the full protocol.
        let host_backend = self.hosts.get(&old.host_id).map(|h| h.backend);
        if host_backend != Some(old.backend) {
            self.event(
                now,
                "renewal_refused",
                &format!(
                    "{} serial {serial}: host {} attested under a different backend",
                    old.vnf_name, old.host_id
                ),
            );
            return Err(CoreError::AttestationFailed(format!(
                "host {} last attested under backend {}, but serial {serial} was \
                 enrolled under {}; full re-attestation required",
                old.host_id,
                host_backend.map(|b| b.label()).unwrap_or("none"),
                old.backend
            )));
        }

        let (_, issue_span) = self.step_span("issue_certificate", now);
        let key_seed = self.rng.gen_array::<32>();
        let client_key = SigningKey::from_seed(&key_seed);
        let certificate = self.ca.issue(
            DistinguishedName::new(&old.vnf_name).with_org(&self.config.name),
            client_key.public_key(),
            &IssueProfile {
                validity_secs: self.config.credential_validity_secs,
                ..IssueProfile::vnf_client(*old.mrenclave.as_bytes())
            },
            now,
        );
        self.metrics.certificates_issued.inc();
        drop(issue_span);
        let (_, wrap_span) = self.step_span("wrap_credentials", now);
        // The bundle carries the *current* root, so a renewal during a
        // dual-trust window migrates the guard onto the new epoch — plus
        // the draining roots, so it still validates a controller whose
        // server certificate chains to the outgoing key.
        let bundle = ProvisionBundle {
            key_seed,
            certificate: certificate.clone(),
            ca_certificate: self.ca.certificate().clone(),
            server_cn: controller_cn.to_string(),
            ca_previous: self.drain_window_roots(now),
        };
        let wrapped = wrap_credentials(&mut self.rng, provisioning_key, &bundle);
        drop(wrap_span);
        let new_serial = certificate.serial();
        self.journal_group(&[
            WalRecord::CertIssued {
                serial: new_serial,
                subject: old.vnf_name.clone(),
                at: now,
            },
            WalRecord::CredentialRenewed {
                old_serial: serial,
                new_serial,
                vnf_name: old.vnf_name.clone(),
                host_id: old.host_id.clone(),
                mrenclave: *old.mrenclave.as_bytes(),
                provisioning_key_hash: old.provisioning_key_hash,
                backend: old.backend.as_u8(),
                at: now,
            },
        ])?;
        self.crash_point("renewal.issue")?;
        self.enrollments.insert(
            new_serial,
            EnrollmentRecord {
                serial: new_serial,
                vnf_name: old.vnf_name.clone(),
                host_id: old.host_id,
                backend: old.backend,
                mrenclave: old.mrenclave,
                provisioning_key_hash: old.provisioning_key_hash,
                issued_at: now,
                revoked: false,
            },
        );
        self.metrics.renewals_by_backend[old.backend.as_u8() as usize].inc();
        self.event(
            now,
            "credential_renewed",
            &format!("{} serial {serial} -> {new_serial}", old.vnf_name),
        );
        self.renewal_backoff.remove(&serial);
        Ok((wrapped, certificate))
    }

    /// Record that a renewal of `serial` was refused by the serving layer
    /// (shed under overload, or its deadline died) with a server retry
    /// hint. The serial disappears from
    /// [`certs_expiring`](Self::certs_expiring) until a jittered next-attempt time —
    /// exponential in the refusal streak — so the agent fleet stops
    /// re-offering the same renewals every sweep while the VM sheds.
    pub fn note_renewal_refused(&mut self, serial: u64, retry_after_secs: u64) {
        let now = self.clock.now();
        let entry = self.renewal_backoff.entry(serial).or_default();
        entry.attempts += 1;
        let shift = (entry.attempts - 1).min(6);
        let bound = retry_after_secs.max(1).saturating_mul(1u64 << shift);
        // Deterministic jitter in [bound/2, bound] derived from the serial
        // and streak alone — the DRBG stream must stay untouched, because
        // oracle twins replay it and this state is never journaled.
        let mut z = serial
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(entry.attempts));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        let jittered = (bound / 2 + z % (bound / 2 + 1)).max(1);
        entry.next_attempt_at = now.saturating_add(jittered);
    }

    /// When `serial` becomes eligible for another renewal offer, if it is
    /// currently backing off.
    pub fn renewal_backoff_until(&self, serial: u64) -> Option<u64> {
        self.renewal_backoff
            .get(&serial)
            .map(|backoff| backoff.next_attempt_at)
    }

    /// Unrevoked enrollments inside the renewal window at the clock's now.
    /// Serials backing off after a refused renewal are skipped until their
    /// next-attempt time — unless the credential has actually expired, at
    /// which point waiting politely costs more than retrying.
    pub fn certs_expiring(&self) -> Vec<RenewalDue> {
        let now = self.clock.now();
        let validity = self.config.credential_validity_secs;
        // Clamp: a window at or beyond the whole lifetime would flag every
        // credential the moment it is issued.
        let window = self
            .config
            .renewal_window_secs
            .min(validity.saturating_sub(1));
        self.enrollments
            .values()
            .filter(|e| !e.revoked)
            .filter_map(|e| {
                let not_after = e.issued_at.saturating_add(validity);
                if now.saturating_add(window) >= not_after {
                    let expired = now > not_after;
                    let backing_off = !expired
                        && self
                            .renewal_backoff
                            .get(&e.serial)
                            .is_some_and(|backoff| backoff.next_attempt_at > now);
                    if backing_off {
                        return None;
                    }
                    Some(RenewalDue {
                        serial: e.serial,
                        vnf_name: e.vnf_name.clone(),
                        host_id: e.host_id.clone(),
                        not_after,
                        expired,
                    })
                } else {
                    None
                }
            })
            .collect()
    }

    /// Point-in-time lifecycle posture. Also refreshes the lifecycle
    /// gauges (`vnfguard_core_certs_active`, `vnfguard_core_certs_expiring`,
    /// `vnfguard_core_crl_age_seconds`) so a metrics scrape after any
    /// status sweep sees current values.
    pub fn lifecycle_status(&self) -> LifecycleStatus {
        let now = self.clock.now();
        let validity = self.config.credential_validity_secs;
        let active = self
            .enrollments
            .values()
            .filter(|e| !e.revoked && now <= e.issued_at.saturating_add(validity))
            .count();
        let expiring = self.certs_expiring().len();
        let crl_age_secs = self.last_crl_issued_at.map(|at| now.saturating_sub(at));
        self.metrics.certs_active.set(active as i64);
        self.metrics.certs_expiring.set(expiring as i64);
        if let Some(age) = crl_age_secs {
            self.metrics.crl_age_seconds.set(age as i64);
        }
        LifecycleStatus {
            at: now,
            active,
            expiring,
            crl_age_secs,
            epoch: self.ca.epoch() as u64,
            crl_number: self.ca.crl_number(),
            drain_deadline: self.rotation_drain_deadline,
        }
    }

    /// Current CA key epoch (0 until the first rotation).
    pub fn ca_epoch(&self) -> u64 {
        self.ca.epoch() as u64
    }

    /// The current root endorsed by the previous epoch's key (`None`
    /// before the first rotation).
    pub fn ca_cross_signed(&self) -> Option<&Certificate> {
        self.ca.cross_signed()
    }

    /// Self-signed roots from earlier key epochs, oldest first.
    pub fn ca_previous_roots(&self) -> &[Certificate] {
        self.ca.previous_roots()
    }

    /// The complete rotation handover chain, oldest first: one
    /// `(epoch, root, cross)` triple per rotation, where `cross` endorses
    /// that epoch's `root` under the preceding epoch's key. A relying
    /// party that missed intermediate rotations walks the chain forward,
    /// verifying each handover against the anchor adopted one step
    /// earlier, instead of wedging on a cross cert whose signer it never
    /// trusted. Empty before the first rotation.
    pub fn ca_rotation_chain(&self) -> Vec<(u64, Certificate, Certificate)> {
        let crosses = self.ca.cross_signed_history();
        let current_epoch = self.ca.epoch() as u64;
        (1..=current_epoch)
            .map(|epoch| {
                // previous_roots[i] is the epoch-i root once epoch i is
                // displaced; the newest epoch's root is still current.
                let root = if epoch == current_epoch {
                    self.ca.certificate().clone()
                } else {
                    self.ca.previous_roots()[epoch as usize].clone()
                };
                (epoch, root, crosses[epoch as usize - 1].clone())
            })
            .collect()
    }

    /// End of the dual-trust window opened by the last rotation.
    pub fn rotation_drain_deadline(&self) -> Option<u64> {
        self.rotation_drain_deadline
    }

    /// Previous roots to bundle as extra trust anchors while a dual-trust
    /// window is open; empty once the drain deadline passes.
    fn drain_window_roots(&self, now: u64) -> Vec<Certificate> {
        match self.rotation_drain_deadline {
            Some(deadline) if now <= deadline => self.ca.previous_roots().to_vec(),
            _ => Vec::new(),
        }
    }

    /// Issue a client certificate for a non-enclave principal (operator
    /// tooling, baseline clients in E4). No enclave binding is attached.
    pub fn issue_client_certificate(
        &mut self,
        cn: &str,
        public_key: vnfguard_crypto::ed25519::VerifyingKey,
    ) -> Certificate {
        let now = self.clock.now();
        self.metrics.certificates_issued.inc();
        let certificate = self.ca.issue(
            DistinguishedName::new(cn).with_org(&self.config.name),
            public_key,
            &IssueProfile {
                validity_secs: self.config.credential_validity_secs,
                enclave_binding: None,
                ..IssueProfile::vnf_client([0; 32])
            },
            now,
        );
        self.journal_infallible(&WalRecord::CertIssued {
            serial: certificate.serial(),
            subject: cn.to_string(),
            at: now,
        });
        certificate
    }

    /// Issue a server certificate (for the controller's TLS identity).
    pub fn issue_server_certificate(
        &mut self,
        cn: &str,
        public_key: vnfguard_crypto::ed25519::VerifyingKey,
    ) -> Certificate {
        let now = self.clock.now();
        self.metrics.certificates_issued.inc();
        let certificate = self.ca.issue(
            DistinguishedName::new(cn).with_org(&self.config.name),
            public_key,
            &IssueProfile::server(),
            now,
        );
        self.journal_infallible(&WalRecord::CertIssued {
            serial: certificate.serial(),
            subject: cn.to_string(),
            at: now,
        });
        certificate
    }

    /// Number of credentials issued so far.
    pub fn issued_count(&self) -> u64 {
        self.ca.issued_count()
    }

    /// Short identity fingerprint for logs.
    pub fn fingerprint(&self) -> String {
        let digest = sha256(&self.ca.certificate().encode());
        digest[..6].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for VerificationManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerificationManager")
            .field("name", &self.config.name)
            .field("hosts", &self.hosts.len())
            .field("enrollments", &self.enrollments.len())
            .field("trusted_enclaves", &self.trusted_enclaves.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_default() {
        let built = ManagerConfig::builder().build().unwrap();
        let default = ManagerConfig::default();
        assert_eq!(built.name, default.name);
        assert_eq!(built.credential_validity_secs, default.credential_validity_secs);
        assert_eq!(built.tcb_policy, default.tcb_policy);
        assert!(!built.degraded_verdicts);
    }

    #[test]
    fn builder_rejects_zero_credential_lifetime() {
        let err = ManagerConfig::builder()
            .credential_validity_secs(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn builder_rejects_zero_challenge_lifetime() {
        assert!(ManagerConfig::builder()
            .challenge_lifetime_secs(0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_degraded_ttl_beyond_credential_lifetime() {
        let err = ManagerConfig::builder()
            .credential_validity_secs(600)
            .degraded_verdicts(true, 900)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
        // The same TTL under a longer credential lifetime is fine.
        assert!(ManagerConfig::builder()
            .credential_validity_secs(3600)
            .degraded_verdicts(true, 900)
            .build()
            .is_ok());
    }

    #[test]
    fn renewal_window_clamps_below_credential_lifetime() {
        // A window covering the whole lifetime must not flag a credential
        // the instant it is issued.
        let config = ManagerConfig::builder()
            .credential_validity_secs(3600)
            .renewal_window_secs(3600)
            .build()
            .unwrap();
        let clock = SimClock::at(1_000);
        let mut vm = VerificationManager::with_runtime(
            config,
            b"clamp test",
            clock.clone(),
            Telemetry::new(),
        );
        let key = SigningKey::from_seed(&[3; 32]);
        let cert = vm.issue_client_certificate("op", key.public_key());
        vm.enrollments.insert(
            cert.serial(),
            EnrollmentRecord {
                serial: cert.serial(),
                vnf_name: "op".into(),
                host_id: "h".into(),
                backend: BackendKind::SgxEpid,
                mrenclave: Measurement([0; 32]),
                provisioning_key_hash: [0; 32],
                issued_at: 1_000,
                revoked: false,
            },
        );
        assert!(vm.certs_expiring().is_empty());
        clock.advance(1);
        assert_eq!(vm.certs_expiring().len(), 1);
    }

    #[test]
    fn builder_rejects_zero_lifecycle_horizons() {
        assert!(ManagerConfig::builder()
            .renewal_window_secs(0)
            .build()
            .is_err());
        assert!(ManagerConfig::builder().crl_lifetime_secs(0).build().is_err());
        assert!(ManagerConfig::builder()
            .rotation_drain_secs(0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_empty_ca_validity() {
        assert!(ManagerConfig::builder()
            .ca_validity(Validity::new(100, 100))
            .build()
            .is_err());
    }

    #[test]
    fn clock_injection_drives_implicit_now() {
        let clock = SimClock::at(5_000);
        let mut vm = VerificationManager::with_runtime(
            ManagerConfig::default(),
            b"clock test",
            clock.clone(),
            Telemetry::new(),
        );
        let challenge = vm.begin_host_attestation("host-1");
        assert_eq!(challenge.issued_at, 5_000);
        clock.advance(100);
        let challenge = vm.begin_host_attestation("host-1");
        assert_eq!(challenge.issued_at, 5_100);
        // Rewinding the shared clock is the only way to move time: there
        // is no explicit-time entry point to bypass the injected clock.
        clock.set(42);
        let challenge = vm.begin_host_attestation("host-1");
        assert_eq!(challenge.issued_at, 42);
    }

    #[test]
    fn events_land_in_shared_journal() {
        let telemetry = Telemetry::new();
        let mut vm = VerificationManager::with_runtime(
            ManagerConfig::default(),
            b"journal test",
            SimClock::at(1_000),
            telemetry.clone(),
        );
        vm.begin_host_attestation("host-1");
        let events = vm.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "host_attestation_started");
        assert_eq!(events[0].time, 1_000);
        assert_eq!(events[0].seq, 1);
        // The same journal is visible through the shared telemetry handle.
        assert_eq!(telemetry.journal().len(), 1);
        assert_eq!(
            telemetry.metrics().counter_value("vnfguard_core_challenges_total"),
            Some(1)
        );
    }
}
