//! The attestation-backend adapter layer: everything in `vnfguard-core`
//! that still speaks SGX/IAS vocabulary lives here, behind the generic
//! [`AttestationBackend`] seam the manager and service are written
//! against.
//!
//! Three things live in this module:
//!
//! - **Compat wrappers.** The original SGX-era entry points
//!   ([`VmService::complete_host_attestation`],
//!   [`VmService::complete_vnf_enrollment`],
//!   [`VmService::prepare_vnf_enrollment`], [`remote_attest_host`],
//!   [`remote_enroll_vnf`] and their traced forms) keep their
//!   `&mut dyn QuoteVerifier` signatures; each one wraps the verifier in
//!   an [`SgxEpidBackend`] adapter and forwards to the generic
//!   `*_backend` method. Existing callers compile and behave unchanged.
//! - **[`MultiBackend`]** — the evidence-sniffing dispatcher
//!   `serve_vm_api` routes through. SNP evidence bundles self-describe
//!   with the [`SNP_EVIDENCE_MAGIC`] prefix; everything else is treated
//!   as an SGX quote and sent through the wrapped IAS handle. One API
//!   endpoint serves a mixed SGX + SNP fleet.
//!
//! Cross-backend rejection is structural, not advisory: SNP evidence
//! reaching the SGX path fails quote decoding inside IAS, an SGX quote
//! reaching the SNP appraiser fails [`SnpEvidence`] decoding, and even a
//! confused appraisal cannot enroll because measurement whitelists are
//! keyed by `(BackendKind, Measurement)`.
//!
//! [`SnpEvidence`]: vnfguard_attest::snp::SnpEvidence

use crate::attestation::HostEvidence;
use crate::service::VmService;
use crate::CoreError;
use parking_lot::Mutex;
use std::sync::Arc;
use vnfguard_attest::snp::{SnpVerifier, SNP_EVIDENCE_MAGIC};
use vnfguard_attest::{
    AttestError, AttestationBackend, Availability, BackendKind, EvidenceAppraisal, SgxEpidBackend,
};
// backend-opt-out: this module IS the SGX/IAS adapter — the only place in
// vnfguard-core allowed to name QuoteVerifier outside the IAS transport.
use vnfguard_ias::QuoteVerifier;
use vnfguard_ima::appraisal::Verdict;
use vnfguard_net::Network;
use vnfguard_pki::cert::Certificate;
use vnfguard_telemetry::TraceContext;

/// The deployment convention for a VNF workload's SEV-SNP launch
/// measurement: each VNF is modeled as its own CVM whose launch
/// measurement derives deterministically from the VNF name. The host
/// agent attests with this measurement and the testbed whitelists its
/// normalized form under [`BackendKind::SevSnp`], so both sides agree
/// without shipping image bytes around.
pub fn snp_vnf_measurement(vnf_name: &str) -> [u8; 48] {
    vnfguard_attest::snp::launch_measurement(format!("snp-cvm:{vnf_name}").as_bytes())
}

/// Evidence-sniffing dispatcher over the two production backends: SGX
/// EPID quotes verified through the (possibly remote) IAS handle, and
/// SEV-SNP reports appraised offline by a local [`SnpVerifier`].
///
/// Dispatch keys on the evidence bytes themselves — SNP bundles start
/// with [`SNP_EVIDENCE_MAGIC`], SGX quotes never do — so one dispatcher
/// instance serves a mixed fleet without per-request configuration.
/// [`AttestationBackend::kind`] reports the backend of the *last*
/// appraisal (SGX before any), which is what the service layer uses to
/// label latency after a call completes.
pub struct MultiBackend {
    ias: Arc<Mutex<dyn QuoteVerifier + Send>>,
    snp: Option<SnpVerifier>,
    last: BackendKind,
}

impl MultiBackend {
    pub fn new(ias: Arc<Mutex<dyn QuoteVerifier + Send>>) -> MultiBackend {
        MultiBackend {
            ias,
            snp: None,
            last: BackendKind::SgxEpid,
        }
    }

    /// Enable SNP dispatch. Without a verifier, SNP evidence is rejected
    /// (fail closed), never misrouted into the SGX path.
    pub fn with_snp(mut self, verifier: SnpVerifier) -> MultiBackend {
        self.snp = Some(verifier);
        self
    }

    pub fn from_parts(
        ias: Arc<Mutex<dyn QuoteVerifier + Send>>,
        snp: Option<SnpVerifier>,
    ) -> MultiBackend {
        MultiBackend {
            ias,
            snp,
            last: BackendKind::SgxEpid,
        }
    }
}

impl AttestationBackend for MultiBackend {
    fn kind(&self) -> BackendKind {
        self.last
    }

    fn appraise(
        &mut self,
        evidence: &[u8],
        nonce: &[u8],
    ) -> Result<EvidenceAppraisal, AttestError> {
        if evidence.starts_with(SNP_EVIDENCE_MAGIC) {
            self.last = BackendKind::SevSnp;
            match &mut self.snp {
                Some(verifier) => verifier.appraise(evidence, nonce),
                None => Err(AttestError::Rejected(
                    "SNP evidence presented but no SNP verifier configured".into(),
                )),
            }
        } else {
            self.last = BackendKind::SgxEpid;
            SgxEpidBackend::new(&mut *self.ias.lock()).appraise(evidence, nonce)
        }
    }

    /// The SNP appraiser is offline and always available; availability
    /// therefore reflects the IAS handle alone. A mixed dispatcher with
    /// IAS's circuit open reports `Unavailable` — conservative for SNP
    /// hosts, which deployments that care route through a dedicated
    /// [`SnpVerifier`] instead.
    fn availability(&self) -> Availability {
        self.ias.lock().availability()
    }

    fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.ias.lock().set_trace_context(ctx);
    }
}

// ---------------------------------------------------------------------------
// SGX-era compat surface
// ---------------------------------------------------------------------------

impl VmService {
    /// Step 2 with an explicit IAS handle — the SGX-era signature, kept
    /// verbatim for existing harnesses. Wraps the verifier in
    /// [`SgxEpidBackend`] and forwards to
    /// [`complete_host_attestation_backend`](Self::complete_host_attestation_backend).
    pub fn complete_host_attestation(
        &self,
        ias: &mut dyn QuoteVerifier,
        challenge_id: u64,
        evidence: &HostEvidence,
    ) -> Result<Verdict, CoreError> {
        let mut backend = SgxEpidBackend::new(ias);
        self.complete_host_attestation_backend(&mut backend, challenge_id, evidence)
    }

    /// Steps 4–5 in one shot with an explicit IAS handle (SGX-era
    /// signature; see
    /// [`complete_vnf_enrollment_backend`](Self::complete_vnf_enrollment_backend)).
    pub fn complete_vnf_enrollment(
        &self,
        ias: &mut dyn QuoteVerifier,
        challenge_id: u64,
        quote_bytes: &[u8],
        provisioning_key: &[u8; 32],
        controller_cn: &str,
    ) -> Result<(Vec<u8>, Certificate), CoreError> {
        let mut backend = SgxEpidBackend::new(ias);
        self.complete_vnf_enrollment_backend(
            &mut backend,
            challenge_id,
            quote_bytes,
            provisioning_key,
            controller_cn,
        )
    }

    /// Phase one of two-phase enrollment with an explicit IAS handle
    /// (SGX-era signature; see
    /// [`prepare_vnf_enrollment_backend`](Self::prepare_vnf_enrollment_backend)).
    pub fn prepare_vnf_enrollment(
        &self,
        ias: &mut dyn QuoteVerifier,
        challenge_id: u64,
        quote_bytes: &[u8],
        provisioning_key: &[u8; 32],
        controller_cn: &str,
    ) -> Result<(u64, Vec<u8>, Certificate), CoreError> {
        let mut backend = SgxEpidBackend::new(ias);
        self.prepare_vnf_enrollment_backend(
            &mut backend,
            challenge_id,
            quote_bytes,
            provisioning_key,
            controller_cn,
        )
    }
}

/// Drive the full host attestation (steps 1–2) against a remote agent
/// with an explicit IAS handle — the SGX-era signature. See
/// [`remote_attest_host_backend`](crate::remote::remote_attest_host_backend)
/// for the generic form.
pub fn remote_attest_host(
    vm: &VmService,
    ias: &mut dyn QuoteVerifier,
    network: &Network,
    host_id: &str,
) -> Result<Verdict, CoreError> {
    remote_attest_host_traced(vm, ias, network, host_id, None)
}

/// [`remote_attest_host`] scoped to a distributed-trace context.
pub fn remote_attest_host_traced(
    vm: &VmService,
    ias: &mut dyn QuoteVerifier,
    network: &Network,
    host_id: &str,
    trace: Option<&TraceContext>,
) -> Result<Verdict, CoreError> {
    let mut backend = SgxEpidBackend::new(ias);
    crate::remote::remote_attest_host_backend(vm, &mut backend, network, host_id, trace)
}

/// Drive VNF enrollment (steps 3–5) against a remote agent with an
/// explicit IAS handle — the SGX-era signature. See
/// [`remote_enroll_vnf_backend`](crate::remote::remote_enroll_vnf_backend)
/// for the generic form.
pub fn remote_enroll_vnf(
    vm: &VmService,
    ias: &mut dyn QuoteVerifier,
    network: &Network,
    host_id: &str,
    vnf_name: &str,
    controller_cn: &str,
) -> Result<Certificate, CoreError> {
    remote_enroll_vnf_traced(vm, ias, network, host_id, vnf_name, controller_cn, None)
}

/// [`remote_enroll_vnf`] scoped to a distributed-trace context.
#[allow(clippy::too_many_arguments)]
pub fn remote_enroll_vnf_traced(
    vm: &VmService,
    ias: &mut dyn QuoteVerifier,
    network: &Network,
    host_id: &str,
    vnf_name: &str,
    controller_cn: &str,
    trace: Option<&TraceContext>,
) -> Result<Certificate, CoreError> {
    let mut backend = SgxEpidBackend::new(ias);
    crate::remote::remote_enroll_vnf_backend(
        vm,
        &mut backend,
        network,
        host_id,
        vnf_name,
        controller_cn,
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_attest::snp::{launch_measurement, AmdRoot, SnpPlatform};
    use vnfguard_controller::SimClock;
    use vnfguard_ias::AttestationService;

    fn ias_handle() -> Arc<Mutex<dyn QuoteVerifier + Send>> {
        Arc::new(Mutex::new(AttestationService::new(b"multi test ias")))
    }

    #[test]
    fn snp_evidence_without_verifier_fails_closed() {
        let root = AmdRoot::new(b"multi amd");
        let platform =
            SnpPlatform::provision(&root, b"chip-m", launch_measurement(b"cvm"), 3);
        let mut multi = MultiBackend::new(ias_handle());
        let err = multi
            .appraise(&platform.attest_self([0; 64]), b"n")
            .unwrap_err();
        assert!(matches!(err, AttestError::Rejected(_)), "{err:?}");
        assert_eq!(multi.kind(), BackendKind::SevSnp);
    }

    #[test]
    fn snp_evidence_routes_to_snp_verifier() {
        let root = AmdRoot::new(b"multi amd 2");
        let platform =
            SnpPlatform::provision(&root, b"chip-m2", launch_measurement(b"cvm"), 3);
        let verifier = SnpVerifier::new(root.ark_public(), SimClock::at(1_700_000_000));
        let mut multi = MultiBackend::new(ias_handle()).with_snp(verifier);
        let appraisal = multi.appraise(&platform.attest_self([5; 64]), b"n").unwrap();
        assert_eq!(appraisal.backend, BackendKind::SevSnp);
        assert_eq!(multi.kind(), BackendKind::SevSnp);
    }

    #[test]
    fn non_snp_bytes_route_to_ias() {
        let mut multi = MultiBackend::new(ias_handle());
        // Garbage is not SNP-magic-prefixed, so it must go to IAS and come
        // back as an SGX-path rejection, proving the dispatch direction.
        let err = multi.appraise(b"not a quote", b"n").unwrap_err();
        assert!(matches!(err, AttestError::Rejected(_)), "{err:?}");
        assert_eq!(multi.kind(), BackendKind::SgxEpid);
    }
}
