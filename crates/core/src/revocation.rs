//! Store-and-forward revocation notification.
//!
//! When the Verification Manager revokes a credential it notifies the
//! hosting agent so the host can evict the VNF's session material without
//! waiting for the next CRL pull. A host that is partitioned away must not
//! make revocation fail: the notice is queued and re-delivered by
//! [`RevocationNotifier::drain`] once the host is reachable again.
//! Notices are authenticated with the VM's HMAC key (the key the paper has
//! the manager generate), so an agent only honors VM-originated notices.

use std::time::Duration;
use vnfguard_encoding::{base64, Json};
use vnfguard_net::fabric::Network;
use vnfguard_net::http::Request;
use vnfguard_store::{StateStore, WalRecord};
use vnfguard_telemetry::Telemetry;

/// Read deadline for a notification round-trip to an agent.
const NOTIFY_READ_TIMEOUT: Duration = Duration::from_millis(750);

/// The canonical byte string an agent authenticates for a revocation.
pub fn revocation_message(host_id: &str, serial: u64) -> Vec<u8> {
    format!("revoke:{host_id}:{serial}").into_bytes()
}

/// A revocation notice that could not be delivered yet.
#[derive(Debug, Clone)]
pub struct PendingNotice {
    pub host_id: String,
    pub serial: u64,
    pub tag: [u8; 32],
    pub queued_at: u64,
    pub attempts: u32,
}

/// A revocation notice that reached its agent, with the delivery time the
/// drain pass actually recorded (previously the drain timestamp was
/// accepted and ignored, leaving the audit trail without delivery times).
#[derive(Debug, Clone)]
pub struct DeliveredNotice {
    pub host_id: String,
    pub serial: u64,
    /// When the notice was first queued (equals `delivered_at` for
    /// immediate deliveries).
    pub queued_at: u64,
    /// When delivery actually succeeded.
    pub delivered_at: u64,
    /// Delivery attempts including the successful one.
    pub attempts: u32,
}

/// Delivers revocation notices to host agents, queueing any that fail.
pub struct RevocationNotifier {
    network: Network,
    origin: String,
    queue: Vec<PendingNotice>,
    delivered: Vec<DeliveredNotice>,
    /// Journal queue/delivery transitions so recovery can resume
    /// store-and-forward where the dead incarnation left it.
    store: Option<StateStore>,
    telemetry: Telemetry,
}

impl RevocationNotifier {
    pub fn new(network: &Network) -> RevocationNotifier {
        RevocationNotifier {
            network: network.clone(),
            origin: "vm".to_string(),
            queue: Vec::new(),
            delivered: Vec::new(),
            store: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Journal notice transitions into the manager's sealed WAL.
    pub fn with_store(mut self, store: StateStore) -> RevocationNotifier {
        self.store = Some(store);
        self
    }

    /// Emit delivery events into the deployment's telemetry journal.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> RevocationNotifier {
        self.telemetry = telemetry.clone();
        self
    }

    /// Best-effort WAL append: a notifier journaling failure must not turn
    /// a successful delivery into an error (the agent already acted on it).
    fn journal(&self, record: &WalRecord) {
        if let Some(store) = &self.store {
            let _ = store.append(record);
        }
    }

    // trace-opt-out: notices are store-and-forward — a queued delivery can
    // fire from `drain` long after the request that revoked the credential
    // finished, so there is no live trace context to propagate.
    fn deliver_once(&self, host_id: &str, serial: u64, tag: &[u8; 32]) -> Result<(), String> {
        let mut stream = self
            .network
            .connect_from(&self.origin, &format!("agent:{host_id}"))
            .map_err(|e| e.to_string())?;
        stream.set_read_timeout(Some(NOTIFY_READ_TIMEOUT));
        let mut client = vnfguard_net::server::HttpClient::new(stream);
        let response = client
            .request(&Request::post("/agent/revocations").with_json(
                &Json::object()
                    .with("serial", serial as i64)
                    .with("tag", base64::encode(tag)),
            ))
            .map_err(|e| e.to_string())?;
        if response.status.is_success() {
            Ok(())
        } else {
            Err(format!("agent returned {}", response.status.code()))
        }
    }

    /// Try to deliver a notice now; on failure it is queued for
    /// [`drain`](Self::drain). Returns `true` if delivered immediately.
    pub fn notify(&mut self, host_id: &str, serial: u64, tag: [u8; 32], at: u64) -> bool {
        match self.deliver_once(host_id, serial, &tag) {
            Ok(()) => {
                self.journal(&WalRecord::RevocationDelivered {
                    host_id: host_id.to_string(),
                    serial,
                    at,
                });
                self.telemetry.event(
                    at,
                    "revocation_delivered",
                    &format!("{host_id} serial {serial} (immediate)"),
                );
                self.delivered.push(DeliveredNotice {
                    host_id: host_id.to_string(),
                    serial,
                    queued_at: at,
                    delivered_at: at,
                    attempts: 1,
                });
                true
            }
            Err(_) => {
                self.journal(&WalRecord::RevocationQueued {
                    host_id: host_id.to_string(),
                    serial,
                    tag,
                    at,
                });
                self.telemetry.event(
                    at,
                    "revocation_queued",
                    &format!("{host_id} serial {serial}"),
                );
                self.queue.push(PendingNotice {
                    host_id: host_id.to_string(),
                    serial,
                    tag,
                    queued_at: at,
                    attempts: 1,
                });
                false
            }
        }
    }

    /// Retry every queued notice at time `at`; delivered ones leave the
    /// queue with their delivery time recorded in the
    /// [`delivery_log`](Self::delivery_log). Returns the number delivered
    /// in this pass.
    pub fn drain(&mut self, at: u64) -> usize {
        let mut remaining = Vec::new();
        let mut delivered = 0;
        for mut notice in std::mem::take(&mut self.queue) {
            match self.deliver_once(&notice.host_id, notice.serial, &notice.tag) {
                Ok(()) => {
                    self.journal(&WalRecord::RevocationDelivered {
                        host_id: notice.host_id.clone(),
                        serial: notice.serial,
                        at,
                    });
                    self.telemetry.event(
                        at,
                        "revocation_delivered",
                        &format!(
                            "{} serial {} after {} attempts",
                            notice.host_id,
                            notice.serial,
                            notice.attempts + 1
                        ),
                    );
                    self.delivered.push(DeliveredNotice {
                        host_id: notice.host_id,
                        serial: notice.serial,
                        queued_at: notice.queued_at,
                        delivered_at: at,
                        attempts: notice.attempts + 1,
                    });
                    delivered += 1;
                }
                Err(_) => {
                    notice.attempts += 1;
                    remaining.push(notice);
                }
            }
        }
        self.queue = remaining;
        delivered
    }

    /// Re-enter recovered notices into the store-and-forward queue,
    /// skipping any (host, serial) pair already queued.
    pub fn restore(&mut self, notices: impl IntoIterator<Item = PendingNotice>) {
        for notice in notices {
            if !self
                .queue
                .iter()
                .any(|n| n.host_id == notice.host_id && n.serial == notice.serial)
            {
                self.queue.push(notice);
            }
        }
    }

    /// Notices still awaiting delivery.
    pub fn pending(&self) -> &[PendingNotice] {
        &self.queue
    }

    /// Every successful delivery, in order, with recorded delivery times.
    pub fn delivery_log(&self) -> &[DeliveredNotice] {
        &self.delivered
    }
}

impl std::fmt::Debug for RevocationNotifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RevocationNotifier")
            .field("pending", &self.queue.len())
            .finish()
    }
}
