//! Store-and-forward revocation notification.
//!
//! When the Verification Manager revokes a credential it notifies the
//! hosting agent so the host can evict the VNF's session material without
//! waiting for the next CRL pull. A host that is partitioned away must not
//! make revocation fail: the notice is queued and re-delivered by
//! [`RevocationNotifier::drain`] once the host is reachable again.
//! Notices are authenticated with the VM's HMAC key (the key the paper has
//! the manager generate), so an agent only honors VM-originated notices.

use std::time::Duration;
use vnfguard_encoding::{base64, Json};
use vnfguard_net::fabric::Network;
use vnfguard_net::http::Request;

/// Read deadline for a notification round-trip to an agent.
const NOTIFY_READ_TIMEOUT: Duration = Duration::from_millis(750);

/// The canonical byte string an agent authenticates for a revocation.
pub fn revocation_message(host_id: &str, serial: u64) -> Vec<u8> {
    format!("revoke:{host_id}:{serial}").into_bytes()
}

/// A revocation notice that could not be delivered yet.
#[derive(Debug, Clone)]
pub struct PendingNotice {
    pub host_id: String,
    pub serial: u64,
    pub tag: [u8; 32],
    pub queued_at: u64,
    pub attempts: u32,
}

/// Delivers revocation notices to host agents, queueing any that fail.
pub struct RevocationNotifier {
    network: Network,
    origin: String,
    queue: Vec<PendingNotice>,
}

impl RevocationNotifier {
    pub fn new(network: &Network) -> RevocationNotifier {
        RevocationNotifier {
            network: network.clone(),
            origin: "vm".to_string(),
            queue: Vec::new(),
        }
    }

    fn deliver_once(&self, host_id: &str, serial: u64, tag: &[u8; 32]) -> Result<(), String> {
        let mut stream = self
            .network
            .connect_from(&self.origin, &format!("agent:{host_id}"))
            .map_err(|e| e.to_string())?;
        stream.set_read_timeout(Some(NOTIFY_READ_TIMEOUT));
        let mut client = vnfguard_net::server::HttpClient::new(stream);
        let response = client
            .request(&Request::post("/agent/revocations").with_json(
                &Json::object()
                    .with("serial", serial as i64)
                    .with("tag", base64::encode(tag)),
            ))
            .map_err(|e| e.to_string())?;
        if response.status.is_success() {
            Ok(())
        } else {
            Err(format!("agent returned {}", response.status.code()))
        }
    }

    /// Try to deliver a notice now; on failure it is queued for
    /// [`drain`](Self::drain). Returns `true` if delivered immediately.
    pub fn notify(&mut self, host_id: &str, serial: u64, tag: [u8; 32], at: u64) -> bool {
        match self.deliver_once(host_id, serial, &tag) {
            Ok(()) => true,
            Err(_) => {
                self.queue.push(PendingNotice {
                    host_id: host_id.to_string(),
                    serial,
                    tag,
                    queued_at: at,
                    attempts: 1,
                });
                false
            }
        }
    }

    /// Retry every queued notice; delivered ones leave the queue. Returns
    /// the number delivered in this pass.
    pub fn drain(&mut self, _at: u64) -> usize {
        let mut remaining = Vec::new();
        let mut delivered = 0;
        for mut notice in std::mem::take(&mut self.queue) {
            match self.deliver_once(&notice.host_id, notice.serial, &notice.tag) {
                Ok(()) => delivered += 1,
                Err(_) => {
                    notice.attempts += 1;
                    remaining.push(notice);
                }
            }
        }
        self.queue = remaining;
        delivered
    }

    /// Notices still awaiting delivery.
    pub fn pending(&self) -> &[PendingNotice] {
        &self.queue
    }
}

impl std::fmt::Debug for RevocationNotifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RevocationNotifier")
            .field("pending", &self.queue.len())
            .finish()
    }
}
