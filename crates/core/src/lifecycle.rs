//! Credential lifecycle: renewal scheduling, CA rotation handover, and
//! controller-side distribution of roots and CRLs.
//!
//! The enrollment workflow (Figure 1) establishes credentials once; this
//! module keeps them alive afterwards. Three flows share it:
//!
//! - **Renewal** — [`RenewalDue`] describes a credential inside its
//!   renewal window (produced by
//!   [`VerificationManager::certs_expiring`](crate::manager::VerificationManager::certs_expiring)),
//!   and the lightweight re-issue path
//!   ([`renew_vnf_credential`](crate::manager::VerificationManager::renew_vnf_credential))
//!   skips the six-step protocol when the hosting platform still holds a
//!   fresh trusted verdict.
//! - **CA rotation** — [`CaRotation`] is the durable outcome of
//!   [`rotate_ca`](crate::manager::VerificationManager::rotate_ca):
//!   a new root plus a cross-signed handover certificate endorsed by the
//!   outgoing key. [`verify_handover`] is the relying-party check that
//!   gates adoption of the new root.
//! - **CRL distribution** — [`LifecycleMonitor`] is the controller-side
//!   poller that fetches `/vm/ca` and `/vm/crl`, adopts rotated roots
//!   after verifying the handover, installs CRLs into the controller's
//!   live [`TrustStore`], and retires drained anchors.
//!
//! The monitor issues HTTP requests over the fabric and joins the
//! deployment's distributed traces: callers scope polls to a trace via
//! [`LifecycleMonitor::set_trace_context`], and each request carries the
//! context with `Request::with_trace`.

use crate::CoreError;
use vnfguard_controller::clock::SimClock;
use parking_lot::RwLock;
use std::sync::Arc;
use vnfguard_encoding::{base64, Json};
use vnfguard_net::fabric::Network;
use vnfguard_net::http::Request;
use vnfguard_net::server::HttpClient;
use vnfguard_pki::cert::Certificate;
use vnfguard_pki::crl::Crl;
use vnfguard_pki::{PkiError, TrustStore};
use vnfguard_telemetry::{Counter, Gauge, Telemetry, TraceContext};

/// A credential inside its renewal window (or already past `not_after`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenewalDue {
    pub serial: u64,
    pub vnf_name: String,
    pub host_id: String,
    /// When the credential stops validating.
    pub not_after: u64,
    /// Already expired at the sweep instant (renewal is overdue, not just
    /// due).
    pub expired: bool,
}

/// Point-in-time lifecycle posture of the manager's credential estate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifecycleStatus {
    /// The sweep instant.
    pub at: u64,
    /// Unrevoked enrollments whose certificates are still valid.
    pub active: usize,
    /// Unrevoked enrollments inside the renewal window (incl. expired).
    pub expiring: usize,
    /// Seconds since the last signed CRL was issued (`None` before the
    /// first issuance).
    pub crl_age_secs: Option<u64>,
    /// CA key epoch (0 = original key, +1 per rotation).
    pub epoch: u64,
    /// Monotonic number of the most recently issued CRL.
    pub crl_number: u64,
    /// Deadline after which the previous root may be retired (`None`
    /// outside a dual-trust window).
    pub drain_deadline: Option<u64>,
}

/// The durable outcome of one CA rotation.
#[derive(Debug, Clone)]
pub struct CaRotation {
    /// Epoch the rotation moved the CA to.
    pub epoch: u64,
    /// The new self-signed root.
    pub new_root: Certificate,
    /// The new root's key endorsed by the *outgoing* key — the handover
    /// evidence relying parties verify before adopting `new_root`.
    pub cross_signed: Certificate,
    /// The root being drained.
    pub previous_root: Certificate,
    pub rotated_at: u64,
    /// Until this instant relying parties keep both roots (dual trust);
    /// after it the previous root should be removed.
    pub drain_deadline: u64,
}

/// Relying-party check before adopting a rotated root: the cross-signed
/// certificate must carry exactly the new root's key and subject, the new
/// root must be well-formed (self-signed), and the cross signature must
/// verify under an anchor the store *already trusts* — that chain is what
/// makes the handover an endorsement by the old key rather than an
/// attacker-supplied root.
pub fn verify_handover(
    store: &TrustStore,
    new_root: &Certificate,
    cross: &Certificate,
) -> Result<(), PkiError> {
    if cross.tbs.public_key != new_root.tbs.public_key {
        return Err(PkiError::ConstraintViolated(
            "cross-signed certificate does not carry the new root's key".into(),
        ));
    }
    if cross.subject_cn() != new_root.subject_cn() {
        return Err(PkiError::ConstraintViolated(
            "cross-signed certificate names a different subject".into(),
        ));
    }
    if !new_root.is_self_signed() {
        return Err(PkiError::ConstraintViolated(
            "offered root is not self-signed".into(),
        ));
    }
    // The cross cert's issuer DN equals its subject DN (same CA name
    // across epochs), so match anchors by name and try each key: exactly
    // one epoch's key signed it.
    let issuer = cross.tbs.issuer.common_name.clone();
    let mut saw_issuer = false;
    for anchor in store.anchors() {
        if anchor.subject_cn() != issuer {
            continue;
        }
        saw_issuer = true;
        if cross.verify_signature(&anchor.tbs.public_key).is_ok() {
            return Ok(());
        }
    }
    if saw_issuer {
        Err(PkiError::BadSignature)
    } else {
        Err(PkiError::UnknownIssuer(issuer))
    }
}

/// An anchor scheduled for removal once the dual-trust window drains.
#[derive(Debug, Clone)]
struct RetiringAnchor {
    fingerprint: [u8; 32],
    subject: String,
    deadline: u64,
}

/// What one [`LifecycleMonitor::tick`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleTick {
    /// A new CA epoch was verified and adopted this pass.
    pub adopted_epoch: Option<u64>,
    /// Number of the CRL installed this pass, if any.
    pub crl_installed: Option<u64>,
    /// Drained anchors removed from the trust store this pass.
    pub anchors_retired: usize,
}

/// Controller-side lifecycle poller: keeps a live [`TrustStore`] (shared
/// with the TLS validator) synchronized with the Verification Manager's
/// published roots and CRLs.
///
/// The monitor is deliberately *pull-based* — the controller polls
/// `GET /vm/ca` and `GET /vm/crl` on its own schedule, so a partitioned
/// VM degrades the controller's revocation freshness (visible through
/// `vnfguard_core_controller_crl_age_seconds`) instead of wedging its
/// data path. Whether stale revocation data fails open or closed is the
/// trust store's [`RevocationPolicy`](vnfguard_pki::RevocationPolicy).
pub struct LifecycleMonitor {
    network: Network,
    clock: SimClock,
    vm_addr: String,
    origin: String,
    trust: Arc<RwLock<TrustStore>>,
    telemetry: Telemetry,
    /// CA subject the monitor manages anchors for.
    issuer_cn: String,
    /// Highest CA epoch verified and adopted so far.
    known_epoch: u64,
    retiring: Vec<RetiringAnchor>,
    /// Issuance instant of the newest installed CRL.
    last_crl_issued_at: Option<u64>,
    trace: Option<TraceContext>,
    ca_polls: Counter,
    crl_polls: Counter,
    rotations_adopted: Counter,
    crl_age: Gauge,
}

impl LifecycleMonitor {
    /// A monitor polling `vm_addr` on behalf of `origin` (the fabric
    /// endpoint name the connections originate from), maintaining anchors
    /// whose subject is `issuer_cn` inside `trust`.
    pub fn new(
        network: Network,
        clock: SimClock,
        vm_addr: &str,
        origin: &str,
        trust: Arc<RwLock<TrustStore>>,
        telemetry: Telemetry,
        issuer_cn: &str,
    ) -> LifecycleMonitor {
        let ca_polls = telemetry.counter("vnfguard_core_controller_ca_polls_total");
        let crl_polls = telemetry.counter("vnfguard_core_controller_crl_polls_total");
        let rotations_adopted =
            telemetry.counter("vnfguard_core_controller_rotations_adopted_total");
        let crl_age = telemetry.gauge("vnfguard_core_controller_crl_age_seconds");
        LifecycleMonitor {
            network,
            clock,
            vm_addr: vm_addr.to_string(),
            origin: origin.to_string(),
            trust,
            telemetry,
            issuer_cn: issuer_cn.to_string(),
            known_epoch: 0,
            retiring: Vec::new(),
            last_crl_issued_at: None,
            trace: None,
            ca_polls,
            crl_polls,
            rotations_adopted,
            crl_age,
        }
    }

    /// Scope subsequent polls to a distributed-trace context (each request
    /// then carries a `traceparent`); `None` clears.
    pub fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.trace = ctx;
    }

    /// The shared trust store this monitor maintains.
    pub fn trust_store(&self) -> Arc<RwLock<TrustStore>> {
        self.trust.clone()
    }

    /// Highest CA epoch verified and adopted so far.
    pub fn known_epoch(&self) -> u64 {
        self.known_epoch
    }

    /// Anchors awaiting retirement and the deadline of the current drain
    /// window, if one is open.
    pub fn drain_deadline(&self) -> Option<u64> {
        self.retiring.iter().map(|r| r.deadline).max()
    }

    fn fetch(&self, path: &str) -> Result<Json, CoreError> {
        let stream = self
            .network
            .connect_from(&self.origin, &self.vm_addr)
            .map_err(|e| CoreError::ServiceUnavailable(format!("{}: {e}", self.vm_addr)))?;
        let mut client = HttpClient::new(stream);
        let mut request = Request::get(path);
        if let Some(ctx) = &self.trace {
            request = request.with_trace(ctx);
        }
        let response = client
            .request(&request)
            .map_err(|e| CoreError::ServiceUnavailable(format!("{path}: {e}")))?;
        if !response.status.is_success() {
            return Err(CoreError::ServiceUnavailable(format!(
                "{path}: status {}",
                response.status.code()
            )));
        }
        response
            .parse_json()
            .map_err(|e| CoreError::Encoding(format!("{path}: {e}")))
    }

    fn b64_cert(doc: &Json, field: &str) -> Result<Certificate, CoreError> {
        let text = doc
            .get(field)
            .and_then(Json::as_str)
            .ok_or_else(|| CoreError::Encoding(format!("missing field {field:?}")))?;
        let bytes = base64::decode(text)
            .map_err(|e| CoreError::Encoding(format!("bad base64 in {field:?}: {e}")))?;
        Ok(Certificate::decode(&bytes)?)
    }

    /// Poll `GET /vm/ca`. When the VM reports a higher key epoch the
    /// monitor verifies the cross-signed handover against its currently
    /// trusted anchors, installs the new root alongside the old one
    /// (dual-trust window), and schedules the displaced anchors for
    /// retirement at the VM's drain deadline. A monitor that missed
    /// intermediate rotations walks the response's `chain` — one
    /// `{epoch, root, cross_signed}` entry per rotation — adopting each
    /// skipped epoch in order, so every handover still verifies against an
    /// anchor adopted one step earlier. Returns the epoch adopted this
    /// call, if any.
    pub fn poll_ca(&mut self) -> Result<Option<u64>, CoreError> {
        let now = self.clock.now();
        self.ca_polls.inc();
        let doc = self.fetch("/vm/ca")?;
        let epoch = doc.get("epoch").and_then(Json::as_i64).unwrap_or(0) as u64;
        if epoch <= self.known_epoch {
            return Ok(None);
        }
        let deadline = doc
            .get("drain_deadline")
            .and_then(Json::as_i64)
            .map(|d| d as u64)
            .unwrap_or(now);
        // Handovers not yet adopted, oldest first. A VM that serves no
        // chain degrades to the single latest cross cert — correct as long
        // as the monitor never falls more than one epoch behind.
        let mut handovers: Vec<(u64, Certificate, Certificate)> = Vec::new();
        match doc.get("chain").and_then(Json::as_array) {
            Some(entries) => {
                for entry in entries {
                    let entry_epoch =
                        entry.get("epoch").and_then(Json::as_i64).unwrap_or(0) as u64;
                    if entry_epoch <= self.known_epoch {
                        continue;
                    }
                    handovers.push((
                        entry_epoch,
                        Self::b64_cert(entry, "root")?,
                        Self::b64_cert(entry, "cross_signed")?,
                    ));
                }
                handovers.sort_by_key(|(e, _, _)| *e);
            }
            None => handovers.push((
                epoch,
                Self::b64_cert(&doc, "certificate")?,
                Self::b64_cert(&doc, "cross_signed")?,
            )),
        }
        let mut trust = self.trust.write();
        let mut adopted: Option<(u64, [u8; 32])> = None;
        for (entry_epoch, root, cross) in handovers {
            verify_handover(&trust, &root, &cross)?;
            let fingerprint = root.fingerprint();
            trust.add_anchor(root)?;
            adopted = Some((entry_epoch, fingerprint));
        }
        let Some((adopted_epoch, new_fp)) = adopted else {
            return Ok(None);
        };
        let displaced: Vec<RetiringAnchor> = trust
            .anchors()
            .filter(|a| a.subject_cn() == self.issuer_cn && a.fingerprint() != new_fp)
            .map(|a| RetiringAnchor {
                fingerprint: a.fingerprint(),
                subject: a.subject_cn().to_string(),
                deadline,
            })
            .collect();
        drop(trust);
        self.retiring.extend(displaced);
        self.known_epoch = adopted_epoch;
        self.rotations_adopted.inc();
        self.telemetry.event(
            now,
            "ca_rotation_adopted",
            &format!(
                "{}: epoch {adopted_epoch}, dual trust until {deadline}",
                self.issuer_cn
            ),
        );
        Ok(Some(adopted_epoch))
    }

    /// Poll `GET /vm/crl` and install the signed CRL into the shared trust
    /// store. Lower-numbered (replayed) CRLs are rejected by the store;
    /// an equal number re-installs harmlessly. Returns the CRL number.
    pub fn poll_crl(&mut self) -> Result<u64, CoreError> {
        let now = self.clock.now();
        self.crl_polls.inc();
        let doc = self.fetch("/vm/crl")?;
        let text = doc
            .get("crl")
            .and_then(Json::as_str)
            .ok_or_else(|| CoreError::Encoding("missing field \"crl\"".into()))?;
        let bytes = base64::decode(text)
            .map_err(|e| CoreError::Encoding(format!("bad base64 in \"crl\": {e}")))?;
        let crl = Crl::decode(&bytes)?;
        let number = crl.crl_number;
        let issued_at = crl.issued_at;
        self.trust.write().install_crl(crl)?;
        self.last_crl_issued_at = Some(issued_at);
        self.crl_age.set(now.saturating_sub(issued_at) as i64);
        Ok(number)
    }

    /// Age of the newest installed CRL (`None` before the first
    /// successful poll). Also refreshes the age gauge, so periodic status
    /// checks keep the metric honest between polls.
    pub fn crl_age(&self) -> Option<u64> {
        let now = self.clock.now();
        let age = self
            .last_crl_issued_at
            .map(|issued| now.saturating_sub(issued));
        if let Some(age) = age {
            self.crl_age.set(age as i64);
        }
        age
    }

    /// Remove anchors whose dual-trust window has drained. Returns how
    /// many were retired.
    pub fn enforce_drain(&mut self) -> usize {
        let now = self.clock.now();
        let (due, keep): (Vec<RetiringAnchor>, Vec<RetiringAnchor>) =
            self.retiring.drain(..).partition(|r| now > r.deadline);
        self.retiring = keep;
        let mut retired = 0;
        let mut trust = self.trust.write();
        for anchor in due {
            if trust.remove_anchor(&anchor.fingerprint) {
                retired += 1;
                self.telemetry.event(
                    now,
                    "ca_anchor_retired",
                    &format!("{}: drain window closed", anchor.subject),
                );
            }
        }
        retired
    }

    /// One full maintenance pass: poll the CA, poll the CRL, retire
    /// drained anchors. The phases are independent — a failed CA poll must
    /// not stop CRL installation or anchor retirement (revocation data
    /// would go stale behind an unverifiable rotation). Every phase runs;
    /// the first failure is then reported, CA poll first. The caller
    /// decides whether a missed poll is tolerable (the trust store's
    /// revocation policy governs what stale data means in the meantime).
    pub fn tick(&mut self) -> Result<LifecycleTick, CoreError> {
        let ca_result = self.poll_ca();
        let crl_result = self.poll_crl();
        let anchors_retired = self.enforce_drain();
        Ok(LifecycleTick {
            adopted_epoch: ca_result?,
            crl_installed: Some(crl_result?),
            anchors_retired,
        })
    }
}

impl std::fmt::Debug for LifecycleMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LifecycleMonitor")
            .field("vm_addr", &self.vm_addr)
            .field("issuer_cn", &self.issuer_cn)
            .field("known_epoch", &self.known_epoch)
            .field("retiring", &self.retiring.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_crypto::drbg::HmacDrbg;
    use vnfguard_crypto::ed25519::SigningKey;
    use vnfguard_pki::ca::CertificateAuthority;
    use vnfguard_pki::cert::{DistinguishedName, Validity};

    fn test_ca() -> CertificateAuthority {
        let mut rng = HmacDrbg::new(b"lifecycle tests");
        CertificateAuthority::new(
            DistinguishedName::new("vm-ca"),
            Validity::new(0, u64::MAX / 2),
            &mut rng,
        )
    }

    #[test]
    fn handover_accepts_genuine_rotation() {
        let mut ca = test_ca();
        let mut store = TrustStore::new();
        store.add_anchor(ca.certificate().clone()).unwrap();
        let (root, cross) = ca.rotate_to(
            SigningKey::from_seed(&[7; 32]),
            Validity::new(0, u64::MAX / 2),
        );
        verify_handover(&store, &root, &cross).unwrap();
    }

    #[test]
    fn handover_rejects_root_with_foreign_key() {
        let mut ca = test_ca();
        let mut store = TrustStore::new();
        store.add_anchor(ca.certificate().clone()).unwrap();
        let (_, cross) = ca.rotate_to(
            SigningKey::from_seed(&[7; 32]),
            Validity::new(0, u64::MAX / 2),
        );
        // An attacker swaps in a root carrying their own key, keeping the
        // legitimate cross cert: the key-match check must catch it.
        let mut mallory = test_ca();
        let (evil_root, _) = mallory.rotate_to(
            SigningKey::from_seed(&[9; 32]),
            Validity::new(0, u64::MAX / 2),
        );
        let err = verify_handover(&store, &evil_root, &cross).unwrap_err();
        assert!(matches!(err, PkiError::ConstraintViolated(_)));
    }

    #[test]
    fn handover_rejects_cross_signed_by_unknown_key() {
        let mut ca = test_ca();
        // Store trusts nothing from this CA's lineage.
        let mut other = HmacDrbg::new(b"other");
        let stranger = CertificateAuthority::new(
            DistinguishedName::new("other-ca"),
            Validity::new(0, u64::MAX / 2),
            &mut other,
        );
        let mut store = TrustStore::new();
        store.add_anchor(stranger.certificate().clone()).unwrap();
        let (root, cross) = ca.rotate_to(
            SigningKey::from_seed(&[7; 32]),
            Validity::new(0, u64::MAX / 2),
        );
        let err = verify_handover(&store, &root, &cross).unwrap_err();
        assert!(matches!(err, PkiError::UnknownIssuer(_)));
    }

    #[test]
    fn handover_rejects_wrong_epoch_signature() {
        // Store trusts an anchor with the right *name* but a key from a
        // different lineage: signature verification must fail rather than
        // fall through to UnknownIssuer.
        let mut ca = test_ca();
        let mut other = HmacDrbg::new(b"same name, other key");
        let impostor = CertificateAuthority::new(
            DistinguishedName::new("vm-ca"),
            Validity::new(0, u64::MAX / 2),
            &mut other,
        );
        let mut store = TrustStore::new();
        store.add_anchor(impostor.certificate().clone()).unwrap();
        let (root, cross) = ca.rotate_to(
            SigningKey::from_seed(&[7; 32]),
            Validity::new(0, u64::MAX / 2),
        );
        let err = verify_handover(&store, &root, &cross).unwrap_err();
        assert!(matches!(err, PkiError::BadSignature));
    }
}
