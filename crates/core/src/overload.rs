//! Overload control: deadline propagation and admission control.
//!
//! The Verification Manager sits on the critical path of every enrollment,
//! renewal, and revocation in the network. Without overload control a
//! renewal stampede drives queueing delay unbounded until *every* request
//! times out at once — zero goodput at peak demand. This module gives the
//! serving stack two defenses:
//!
//! - **[`Deadline`] propagation** — requests carry a remaining-budget
//!   header (`x-vnfguard-deadline`, milliseconds); every layer that might
//!   wait (shard queues, IAS retry loops, replication acks) checks the
//!   budget first and fails fast with [`CoreError::DeadlineExceeded`]
//!   instead of doing work nobody will wait for. A deadline has **two
//!   components** because the testbed runs on a [`SimClock`] that stands
//!   still during real waits (queueing, WAL flush latency): a simulated
//!   expiry for backoff loops that advance the clock, and a wall-clock
//!   expiry for real stalls.
//! - **[`AdmissionController`]** — bounded per-class FIFO accounting in
//!   front of the shard mutexes, with a CoDel-style sojourn test at
//!   dequeue. Once a class's queue is full, or queueing delay has stayed
//!   above target for a full interval, new arrivals are shed with
//!   [`CoreError::Overloaded`] carrying a `retry-after-secs` hint sized to
//!   the congestion — turning collapse into bounded latency for admitted
//!   requests plus fast, honest rejections for the rest.
//!
//! Priority is expressed through queue bounds, not reordering: revocation
//! and CRL work (the security-critical path — a revoked credential must
//! die *now*) gets the full bound, renewals three quarters, enrollments
//! half, and introspection a quarter. Under sustained enrollment flood the
//! enrollment queue saturates and sheds while revocations still find room.

use crate::CoreError;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vnfguard_controller::clock::SimClock;
use vnfguard_telemetry::{Counter, Gauge, Telemetry, TraceContext};

/// A request's remaining time budget, in both simulated and wall-clock
/// time. Expired when **either** component is exhausted: the simulated
/// component catches budget burned by backoff loops (which advance the
/// [`SimClock`]), the wall-clock component catches real stalls (queueing,
/// WAL group-commit flushes) during which the simulated clock stands
/// still.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    sim_expires_at: u64,
    real_expires: Instant,
}

impl Deadline {
    /// Start a deadline `budget_millis` from now. The simulated component
    /// rounds the budget up to whole seconds ([`SimClock`] ticks in
    /// seconds); a zero budget is already expired.
    pub fn start(clock: &SimClock, budget_millis: u64) -> Deadline {
        Deadline {
            sim_expires_at: clock.now().saturating_add(budget_millis.div_ceil(1000)),
            real_expires: Instant::now() + Duration::from_millis(budget_millis),
        }
    }

    pub fn expired(&self, clock: &SimClock) -> bool {
        clock.now() >= self.sim_expires_at || Instant::now() >= self.real_expires
    }

    /// Remaining budget in milliseconds — the tighter of the two
    /// components. This is what gets re-propagated downstream, so a hop
    /// that burned half the budget hands the remainder on.
    pub fn remaining_millis(&self, clock: &SimClock) -> u64 {
        let sim = self.sim_expires_at.saturating_sub(clock.now()).saturating_mul(1000);
        let real = self
            .real_expires
            .saturating_duration_since(Instant::now())
            .as_millis() as u64;
        sim.min(real)
    }
}

thread_local! {
    static AMBIENT_DEADLINE: Cell<Option<Deadline>> = const { Cell::new(None) };
}

/// RAII scope installing a [`Deadline`] as the thread's ambient deadline,
/// visible to everything downstream via [`current_deadline`] without
/// threading a parameter through every signature. Scopes nest; dropping
/// restores the previous deadline.
///
/// The ambient deadline is thread-local, which matches the serving model:
/// a request is handled start-to-finish on one fabric thread.
#[derive(Debug)]
pub struct DeadlineScope {
    previous: Option<Deadline>,
}

impl DeadlineScope {
    pub fn enter(deadline: Deadline) -> DeadlineScope {
        let previous = AMBIENT_DEADLINE.with(|cell| cell.replace(Some(deadline)));
        DeadlineScope { previous }
    }
}

impl Drop for DeadlineScope {
    fn drop(&mut self) {
        AMBIENT_DEADLINE.with(|cell| cell.set(self.previous));
    }
}

/// The ambient deadline installed by the innermost live [`DeadlineScope`]
/// on this thread, if any.
pub fn current_deadline() -> Option<Deadline> {
    AMBIENT_DEADLINE.with(Cell::get)
}

/// Fail fast if the ambient deadline has expired. `what` names the work
/// being abandoned (it lands in the error detail and, via the remote
/// layer, in the 504 body).
pub fn check_deadline(clock: &SimClock, what: &str) -> Result<(), CoreError> {
    match current_deadline() {
        Some(deadline) if deadline.expired(clock) => Err(CoreError::DeadlineExceeded(format!(
            "{what}: request budget exhausted"
        ))),
        _ => Ok(()),
    }
}

/// Priority class of a request, highest first. Priority is enforced by
/// queue-bound asymmetry (see [`AdmissionConfig`]), not reordering: lower
/// classes run out of queue room first and shed while higher classes still
/// admit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workclass {
    /// Revocations and CRL issue/fetch: the security-critical path.
    Revocation,
    /// Credential renewals: losing one strands a VNF when its cert lapses.
    Renewal,
    /// New enrollments: deferrable — the VNF is not serving yet.
    Enrollment,
    /// Status and lifecycle reads.
    Introspection,
}

impl Workclass {
    pub const ALL: [Workclass; 4] = [
        Workclass::Revocation,
        Workclass::Renewal,
        Workclass::Enrollment,
        Workclass::Introspection,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Workclass::Revocation => "revocation",
            Workclass::Renewal => "renewal",
            Workclass::Enrollment => "enrollment",
            Workclass::Introspection => "introspection",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Workclass::Revocation => 0,
            Workclass::Renewal => 1,
            Workclass::Enrollment => 2,
            Workclass::Introspection => 3,
        }
    }
}

/// Tuning for an [`AdmissionController`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Queue bound for the highest class ([`Workclass::Revocation`]).
    /// Lower classes get a fraction: renewal ¾, enrollment ½,
    /// introspection ¼ (minimum 1 each).
    pub queue_bound: usize,
    /// CoDel target: sojourn above this is "standing queue" territory.
    pub sojourn_target_micros: u64,
    /// CoDel interval: shed once sojourn has stayed above target for this
    /// long without a single below-target dequeue.
    pub sojourn_interval_micros: u64,
    /// Base of the `retry-after-secs` hint; scaled up with total queue
    /// depth so a deeper storm spreads retries wider.
    pub retry_after_base_secs: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_bound: 64,
            sojourn_target_micros: 5_000,
            sojourn_interval_micros: 100_000,
            retry_after_base_secs: 1,
        }
    }
}

impl AdmissionConfig {
    fn bound_for(&self, class: Workclass) -> usize {
        let bound = self.queue_bound.max(1);
        match class {
            Workclass::Revocation => bound,
            Workclass::Renewal => (bound * 3 / 4).max(1),
            Workclass::Enrollment => (bound / 2).max(1),
            Workclass::Introspection => (bound / 4).max(1),
        }
    }
}

struct ClassState {
    bound: usize,
    waiting: AtomicUsize,
    codel: Mutex<CodelState>,
    depth_gauge: Gauge,
    sojourn_gauge: Gauge,
    shed: Counter,
    deadline_exceeded: Counter,
}

#[derive(Default)]
struct CodelState {
    /// Wall-clock moment sojourn first exceeded target with no
    /// below-target dequeue since; `None` while the queue is draining
    /// promptly.
    above_since: Option<Instant>,
}

/// Bounded-FIFO admission accounting with a CoDel-style sojourn test,
/// shared by every route in front of the shard mutexes.
///
/// Two gates per request:
///
/// 1. [`admit`](Self::admit) **before** queueing for a shard lock — sheds
///    immediately when the class queue is full (depth gate) or the
///    ambient deadline is already dead.
/// 2. [`dequeued`](Self::dequeued) **after** the lock is acquired — sheds
///    when the measured sojourn shows a standing queue (CoDel gate), and
///    re-checks the deadline so work that waited too long is abandoned
///    before it touches state.
///
/// The depth gate keeps memory bounded; the sojourn gate keeps *latency*
/// bounded, catching overload that a depth bound alone admits (many short
/// queues all moving slowly).
pub struct AdmissionController {
    config: AdmissionConfig,
    clock: SimClock,
    classes: [ClassState; 4],
    shed_total: Counter,
    deadline_total: Counter,
    telemetry: Option<Telemetry>,
}

impl AdmissionController {
    /// A controller with detached (unrendered) metrics; use
    /// [`instrumented`](Self::instrumented) to publish them.
    pub fn new(config: AdmissionConfig, clock: SimClock) -> AdmissionController {
        AdmissionController::build(config, clock, None)
    }

    /// A controller whose gauges and counters register with `telemetry`
    /// (rendered by the Prometheus endpoint) and whose shed/deadline
    /// events annotate active trace spans.
    pub fn instrumented(
        config: AdmissionConfig,
        clock: SimClock,
        telemetry: &Telemetry,
    ) -> AdmissionController {
        AdmissionController::build(config, clock, Some(telemetry.clone()))
    }

    fn build(
        config: AdmissionConfig,
        clock: SimClock,
        telemetry: Option<Telemetry>,
    ) -> AdmissionController {
        let class = |c: Workclass| {
            let label = c.label();
            let (depth_gauge, sojourn_gauge, shed, deadline_exceeded) = match &telemetry {
                // metric-name-opt-out: admission control guards the serving
                // surface, so its series live in the vnfguard_net_ namespace
                // even though the controller itself lives in core.
                Some(t) => (
                    t.gauge(&format!("vnfguard_net_queue_depth_{label}")),
                    t.gauge(&format!("vnfguard_net_sojourn_micros_{label}")),
                    t.counter(&format!("vnfguard_net_shed_total_{label}")),
                    t.counter(&format!("vnfguard_net_deadline_exceeded_total_{label}")),
                ),
                None => (
                    Gauge::detached(),
                    Gauge::detached(),
                    Counter::detached(),
                    Counter::detached(),
                ),
            };
            ClassState {
                bound: config.bound_for(c),
                waiting: AtomicUsize::new(0),
                codel: Mutex::new(CodelState::default()),
                depth_gauge,
                sojourn_gauge,
                shed,
                deadline_exceeded,
            }
        };
        let (shed_total, deadline_total) = match &telemetry {
            // metric-name-opt-out: vnfguard_net_ namespace (see above).
            Some(t) => (
                t.counter("vnfguard_net_shed_total"),
                t.counter("vnfguard_net_deadline_exceeded_total"),
            ),
            None => (Counter::detached(), Counter::detached()),
        };
        AdmissionController {
            clock,
            classes: [
                class(Workclass::Revocation),
                class(Workclass::Renewal),
                class(Workclass::Enrollment),
                class(Workclass::Introspection),
            ],
            shed_total,
            deadline_total,
            telemetry,
            config,
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Requests of `class` currently queued (admitted, not yet released).
    pub fn waiting(&self, class: Workclass) -> usize {
        self.classes[class.index()].waiting.load(Ordering::Relaxed)
    }

    /// The depth bound for `class` under the current config.
    pub fn bound(&self, class: Workclass) -> usize {
        self.classes[class.index()].bound
    }

    /// Requests of `class` shed by the depth or sojourn gate so far.
    pub fn shed_count(&self, class: Workclass) -> u64 {
        self.classes[class.index()].shed.get()
    }

    /// Requests of `class` abandoned because their deadline expired.
    pub fn deadline_count(&self, class: Workclass) -> u64 {
        self.classes[class.index()].deadline_exceeded.get()
    }

    fn total_waiting(&self) -> usize {
        self.classes
            .iter()
            .map(|c| c.waiting.load(Ordering::Relaxed))
            .sum()
    }

    /// How long a shed client should back off, scaled to total congestion
    /// so deeper storms spread their retries across a wider window.
    fn retry_after_secs(&self) -> u64 {
        let congestion = self.total_waiting() / self.config.queue_bound.max(1);
        self.config
            .retry_after_base_secs
            .max(1)
            .saturating_mul(1 + congestion as u64)
    }

    fn note_shed(&self, class: Workclass, trace: Option<&TraceContext>, detail: &str) {
        self.classes[class.index()].shed.inc();
        self.shed_total.inc();
        self.annotate(trace, "shed", detail);
    }

    fn note_deadline(&self, class: Workclass, trace: Option<&TraceContext>, detail: &str) {
        self.classes[class.index()].deadline_exceeded.inc();
        self.deadline_total.inc();
        self.annotate(trace, "deadline", detail);
    }

    /// Record why a request died into its active trace span, so waterfall
    /// views show shed/deadline events inline.
    pub fn annotate(&self, trace: Option<&TraceContext>, kind: &str, detail: &str) {
        if let (Some(telemetry), Some(ctx)) = (&self.telemetry, trace) {
            telemetry.trace_annotate(ctx, self.clock.now(), kind, detail);
        }
    }

    /// The depth gate: admit a request of `class` into its queue, or shed.
    /// Call **before** waiting on a shard lock; hold the returned
    /// [`Permit`] until the request is finished (its `Drop` releases the
    /// queue slot).
    pub fn admit(
        &self,
        class: Workclass,
        trace: Option<&TraceContext>,
    ) -> Result<Permit<'_>, CoreError> {
        if let Some(deadline) = current_deadline() {
            if deadline.expired(&self.clock) {
                let detail = format!("{} request arrived with exhausted budget", class.label());
                self.note_deadline(class, trace, &detail);
                return Err(CoreError::DeadlineExceeded(detail));
            }
        }
        let state = &self.classes[class.index()];
        // Optimistically reserve, then back out if over bound: racing
        // admits may both see room, but depth never exceeds bound + racers
        // and the accounting stays exact.
        let depth = state.waiting.fetch_add(1, Ordering::Relaxed) + 1;
        if depth > state.bound {
            state.waiting.fetch_sub(1, Ordering::Relaxed);
            let retry_after_secs = self.retry_after_secs();
            let detail = format!(
                "{} queue full ({} waiting, bound {})",
                class.label(),
                depth - 1,
                state.bound
            );
            self.note_shed(class, trace, &detail);
            return Err(CoreError::Overloaded {
                detail,
                retry_after_secs,
            });
        }
        state.depth_gauge.set(depth as i64);
        Ok(Permit {
            controller: self,
            class,
            enqueued: Instant::now(),
        })
    }

    /// The sojourn gate: call once the shard lock is acquired. Sheds if
    /// queueing delay shows a standing queue (CoDel: sojourn above target
    /// for a full interval) or if the request's deadline died while it
    /// waited. On `Err` the caller must release the lock without touching
    /// state; the permit's `Drop` still releases the queue slot.
    pub fn dequeued(&self, permit: &Permit<'_>, trace: Option<&TraceContext>) -> Result<(), CoreError> {
        let class = permit.class;
        let state = &self.classes[class.index()];
        let sojourn_micros = permit.enqueued.elapsed().as_micros() as u64;
        state.sojourn_gauge.set(sojourn_micros as i64);
        if let Some(deadline) = current_deadline() {
            if deadline.expired(&self.clock) {
                let detail = format!(
                    "{} request budget died in queue ({sojourn_micros}us sojourn)",
                    class.label()
                );
                self.note_deadline(class, trace, &detail);
                return Err(CoreError::DeadlineExceeded(detail));
            }
        }
        let shed = {
            let mut codel = state.codel.lock().expect("codel state poisoned");
            if sojourn_micros <= self.config.sojourn_target_micros {
                codel.above_since = None;
                false
            } else {
                let now = Instant::now();
                match codel.above_since {
                    None => {
                        codel.above_since = Some(now);
                        false
                    }
                    Some(since)
                        if now.duration_since(since).as_micros() as u64
                            >= self.config.sojourn_interval_micros =>
                    {
                        // Restart the interval rather than shedding every
                        // subsequent dequeue while above target.
                        codel.above_since = Some(now);
                        true
                    }
                    Some(_) => false,
                }
            }
        };
        if shed {
            let retry_after_secs = self.retry_after_secs();
            let detail = format!(
                "{} sojourn {}us above {}us target for a full interval",
                class.label(),
                sojourn_micros,
                self.config.sojourn_target_micros
            );
            self.note_shed(class, trace, &detail);
            return Err(CoreError::Overloaded {
                detail,
                retry_after_secs,
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("AdmissionController");
        for class in Workclass::ALL {
            s.field(class.label(), &self.waiting(class));
        }
        s.finish()
    }
}

/// A queue slot held by an admitted request; dropping it releases the
/// slot and updates the depth gauge.
#[derive(Debug)]
pub struct Permit<'a> {
    controller: &'a AdmissionController,
    class: Workclass,
    enqueued: Instant,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let state = &self.controller.classes[self.class.index()];
        let before = state.waiting.fetch_sub(1, Ordering::Relaxed);
        state.depth_gauge.set(before.saturating_sub(1) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(bound: usize) -> AdmissionConfig {
        AdmissionConfig {
            queue_bound: bound,
            // Effectively disable the sojourn gate unless a test opts in.
            sojourn_target_micros: u64::MAX,
            sojourn_interval_micros: u64::MAX,
            retry_after_base_secs: 2,
        }
    }

    #[test]
    fn zero_budget_deadline_is_born_expired() {
        let clock = SimClock::at(100);
        let deadline = Deadline::start(&clock, 0);
        assert!(deadline.expired(&clock));
        assert_eq!(deadline.remaining_millis(&clock), 0);
    }

    #[test]
    fn sim_clock_advance_expires_deadline() {
        let clock = SimClock::at(100);
        let deadline = Deadline::start(&clock, 2_000);
        assert!(!deadline.expired(&clock));
        clock.advance(1);
        assert!(!deadline.expired(&clock));
        clock.advance(1);
        assert!(deadline.expired(&clock));
        assert_eq!(deadline.remaining_millis(&clock), 0);
    }

    #[test]
    fn wall_clock_expires_deadline_while_sim_time_stands_still() {
        let clock = SimClock::at(100);
        let deadline = Deadline::start(&clock, 5);
        std::thread::sleep(Duration::from_millis(10));
        // The sim clock never moved, but the real budget is gone.
        assert_eq!(clock.now(), 100);
        assert!(deadline.expired(&clock));
    }

    #[test]
    fn deadline_scopes_nest_and_restore() {
        let clock = SimClock::at(0);
        assert!(current_deadline().is_none());
        let outer = DeadlineScope::enter(Deadline::start(&clock, 60_000));
        assert!(check_deadline(&clock, "outer").is_ok());
        {
            let _inner = DeadlineScope::enter(Deadline::start(&clock, 0));
            assert!(matches!(
                check_deadline(&clock, "inner"),
                Err(CoreError::DeadlineExceeded(_))
            ));
        }
        // Inner scope dropped: the outer (live) deadline is back.
        assert!(check_deadline(&clock, "outer again").is_ok());
        drop(outer);
        assert!(current_deadline().is_none());
    }

    #[test]
    fn depth_gate_sheds_at_bound_and_permits_release() {
        let controller = AdmissionController::new(config(4), SimClock::at(0));
        let permits: Vec<_> = (0..4)
            .map(|_| controller.admit(Workclass::Revocation, None).expect("room"))
            .collect();
        assert_eq!(controller.waiting(Workclass::Revocation), 4);
        let shed = controller.admit(Workclass::Revocation, None);
        match shed {
            Err(CoreError::Overloaded {
                retry_after_secs, ..
            }) => assert!(retry_after_secs >= 2),
            other => panic!("expected overloaded, got {other:?}"),
        }
        drop(permits);
        assert_eq!(controller.waiting(Workclass::Revocation), 0);
        let permit = controller.admit(Workclass::Revocation, None).expect("drained");
        assert!(controller.dequeued(&permit, None).is_ok());
    }

    #[test]
    fn lower_classes_run_out_of_room_first() {
        let controller = AdmissionController::new(config(8), SimClock::at(0));
        // Enrollment gets half the bound; fill it.
        let _enrollments: Vec<_> = (0..4)
            .map(|_| controller.admit(Workclass::Enrollment, None).expect("room"))
            .collect();
        assert!(controller.admit(Workclass::Enrollment, None).is_err());
        // Revocations still admit: priority by bound asymmetry.
        assert!(controller.admit(Workclass::Revocation, None).is_ok());
        // Introspection has the smallest queue of all.
        let _reads: Vec<_> = (0..2)
            .map(|_| controller.admit(Workclass::Introspection, None).expect("room"))
            .collect();
        assert!(controller.admit(Workclass::Introspection, None).is_err());
    }

    #[test]
    fn codel_sheds_only_after_a_standing_queue_persists() {
        let clock = SimClock::at(0);
        let controller = AdmissionController::new(
            AdmissionConfig {
                queue_bound: 8,
                sojourn_target_micros: 500,
                sojourn_interval_micros: 3_000,
                retry_after_base_secs: 1,
            },
            clock,
        );
        let slow_dequeue = || {
            let permit = controller.admit(Workclass::Renewal, None).expect("room");
            std::thread::sleep(Duration::from_millis(2));
            controller.dequeued(&permit, None)
        };
        // First above-target sojourn starts the interval, no shed yet.
        assert!(slow_dequeue().is_ok());
        std::thread::sleep(Duration::from_millis(4));
        // Still above target a full interval later: shed.
        assert!(matches!(
            slow_dequeue(),
            Err(CoreError::Overloaded { .. })
        ));
        // A prompt dequeue resets the interval.
        let quick = controller.admit(Workclass::Renewal, None).expect("room");
        assert!(controller.dequeued(&quick, None).is_ok());
        drop(quick);
        assert!(slow_dequeue().is_ok(), "interval restarted after drain");
    }

    #[test]
    fn expired_ambient_deadline_is_refused_at_both_gates() {
        let clock = SimClock::at(0);
        let controller = AdmissionController::new(config(8), clock.clone());
        let _scope = DeadlineScope::enter(Deadline::start(&clock, 2_000));
        let permit = controller.admit(Workclass::Renewal, None).expect("live budget");
        clock.advance(5);
        assert!(matches!(
            controller.dequeued(&permit, None),
            Err(CoreError::DeadlineExceeded(_))
        ));
        drop(permit);
        assert!(matches!(
            controller.admit(Workclass::Renewal, None),
            Err(CoreError::DeadlineExceeded(_))
        ));
    }

    #[test]
    fn instrumented_controller_publishes_metrics() {
        let telemetry = Telemetry::new();
        let clock = SimClock::at(0);
        // queue_bound 4 → enrollment (half) gets 2 slots.
        let controller = AdmissionController::instrumented(config(4), clock, &telemetry);
        let _held: Vec<_> = (0..2)
            .map(|_| controller.admit(Workclass::Enrollment, None).expect("room"))
            .collect();
        let _ = controller.admit(Workclass::Enrollment, None);
        let rendered = telemetry.render_prometheus();
        assert!(rendered.contains("vnfguard_net_queue_depth_enrollment 2"));
        assert!(rendered.contains("vnfguard_net_shed_total_enrollment 1"));
        assert!(rendered.contains("vnfguard_net_shed_total 1"));
    }
}
