//! Attestation evidence and the integrity attestation enclave.

use crate::CoreError;
use vnfguard_crypto::sha2::sha256;
use vnfguard_encoding::{TlvReader, TlvWriter};
use vnfguard_ima::list::MeasurementList;
use vnfguard_ima::tpm::PcrQuote;
// backend-opt-out: the integrity attestation enclave is itself an SGX
// enclave running on the host agent — platform-side plumbing, not
// relying-party appraisal (which goes through vnfguard-attest backends).
use vnfguard_sgx::enclave::{Enclave, EnclaveCode, EnclaveContext};
use vnfguard_sgx::measurement::Measurement;
use vnfguard_sgx::platform::SgxPlatform;
use vnfguard_sgx::report::TargetInfo;
use vnfguard_sgx::sigstruct::EnclaveAuthor;
use vnfguard_sgx::SgxError;

const TAG_QUOTE: u8 = 0xc0;
const TAG_IML: u8 = 0xc1;
const TAG_TPM_QUOTE: u8 = 0xc2;
const TAG_TARGET: u8 = 0xc3;
const TAG_NONCE: u8 = 0xc4;

/// Evidence the container host returns for steps 1–2 of Figure 1: a quote
/// from the integrity attestation enclave whose report data binds the
/// transmitted measurement list, plus the list itself (and, with the §4
/// future-work extension, a TPM quote over the aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct HostEvidence {
    pub quote: Vec<u8>,
    pub iml: Vec<u8>,
    pub tpm_quote: Option<Vec<u8>>,
}

impl HostEvidence {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(TAG_QUOTE, &self.quote).bytes(TAG_IML, &self.iml);
        if let Some(tpm) = &self.tpm_quote {
            w.bytes(TAG_TPM_QUOTE, tpm);
        }
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<HostEvidence, CoreError> {
        let mut r = TlvReader::new(bytes);
        let quote = r.expect(TAG_QUOTE)?.to_vec();
        let iml = r.expect(TAG_IML)?.to_vec();
        let tpm_quote = if !r.is_empty() {
            Some(r.expect(TAG_TPM_QUOTE)?.to_vec())
        } else {
            None
        };
        r.finish()?;
        Ok(HostEvidence {
            quote,
            iml,
            tpm_quote,
        })
    }

    /// Parse the embedded measurement list.
    pub fn measurement_list(&self) -> Result<MeasurementList, CoreError> {
        MeasurementList::decode(&self.iml).map_err(|e| CoreError::Encoding(e.to_string()))
    }

    /// Parse the embedded TPM quote, if present.
    pub fn parsed_tpm_quote(&self) -> Result<Option<PcrQuote>, CoreError> {
        match &self.tpm_quote {
            None => Ok(None),
            Some(bytes) => Ok(Some(
                PcrQuote::decode(bytes).map_err(|e| CoreError::Encoding(e.to_string()))?,
            )),
        }
    }
}

/// Report data an honest integrity attestation enclave embeds in its quote:
/// hash of the transmitted IML, then the verifier nonce.
pub fn host_report_data(iml_bytes: &[u8], nonce: &[u8; 32]) -> [u8; 64] {
    let mut data = [0u8; 64];
    data[..32].copy_from_slice(&sha256(iml_bytes));
    data[32..].copy_from_slice(nonce);
    data
}

/// The integrity attestation enclave of Figure 1: it receives the host's
/// measurement list, checks its internal consistency, and quotes a digest
/// of it together with the verifier's nonce.
pub struct IntegrityAttestationEnclave {
    image: Vec<u8>,
    iml: Option<Vec<u8>>,
}

/// Ecall opcodes of the integrity attestation enclave.
pub mod op {
    /// input: raw IML bytes → ().
    pub const SET_IML: u16 = 1;
    /// input: TLV{target, nonce} → report bytes.
    pub const ATTEST: u16 = 2;
}

impl IntegrityAttestationEnclave {
    pub fn new(image: &[u8]) -> IntegrityAttestationEnclave {
        IntegrityAttestationEnclave {
            image: image.to_vec(),
            iml: None,
        }
    }

    /// Canonical image bytes of the integrity attestation enclave.
    pub fn image(version: u32) -> Vec<u8> {
        format!("vnfguard integrity attestation enclave v{version}").into_bytes()
    }

    /// Expected MRENCLAVE for a version (whitelisted by the VM).
    pub fn expected_measurement(version: u32) -> Measurement {
        SgxPlatform::measure_image(&Self::image(version), Self::SIZE)
    }

    /// Enclave size used at load.
    pub const SIZE: usize = 128 * 1024;

    /// Load onto a platform under `author`.
    pub fn load(
        platform: &SgxPlatform,
        author: &EnclaveAuthor,
        version: u32,
    ) -> Result<Enclave, SgxError> {
        let image = Self::image(version);
        let signed = author.sign_enclave(
            SgxPlatform::measure_image(&image, Self::SIZE),
            3,
            version as u16,
            false,
        );
        platform.load_enclave(&signed, Self::SIZE, Box::new(Self::new(&image)))
    }
}

impl EnclaveCode for IntegrityAttestationEnclave {
    fn image(&self) -> Vec<u8> {
        self.image.clone()
    }

    fn on_call(
        &mut self,
        ctx: &mut EnclaveContext,
        opcode: u16,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            op::SET_IML => {
                // The enclave refuses internally inconsistent lists: an
                // adversary cannot have it quote a list that does not chain.
                let list = MeasurementList::decode(input)
                    .map_err(|e| SgxError::App(format!("bad IML: {e}")))?;
                if !list.verify_consistency() {
                    return Err(SgxError::App("inconsistent measurement list".into()));
                }
                self.iml = Some(input.to_vec());
                Ok(Vec::new())
            }
            op::ATTEST => {
                let mut r = TlvReader::new(input);
                let target = TargetInfo {
                    mrenclave: Measurement(r.expect_array::<32>(TAG_TARGET)?),
                };
                let nonce = r.expect_array::<32>(TAG_NONCE)?;
                r.finish()?;
                let iml = self
                    .iml
                    .as_ref()
                    .ok_or_else(|| SgxError::App("no IML loaded".into()))?;
                let report = ctx.create_report(&target, host_report_data(iml, &nonce));
                Ok(report.encode())
            }
            other => Err(SgxError::BadCall(other)),
        }
    }
}

/// Encode the ATTEST input for the integrity enclave.
pub fn encode_integrity_attest(target: &TargetInfo, nonce: &[u8; 32]) -> Vec<u8> {
    let mut w = TlvWriter::new();
    w.bytes(TAG_TARGET, target.mrenclave.as_bytes())
        .bytes(TAG_NONCE, nonce);
    w.finish()
}

/// Host-side helper producing the full [`HostEvidence`] for a challenge:
/// feeds the IML to the integrity enclave, obtains the report, quotes it.
pub fn host_evidence(
    platform: &SgxPlatform,
    integrity_enclave: &Enclave,
    iml_bytes: &[u8],
    nonce: &[u8; 32],
    tpm_quote: Option<Vec<u8>>,
) -> Result<HostEvidence, CoreError> {
    integrity_enclave.ecall(op::SET_IML, iml_bytes)?;
    let qe = platform.quoting_enclave();
    let report_bytes = integrity_enclave.ecall(
        op::ATTEST,
        &encode_integrity_attest(&qe.target_info(), nonce),
    )?;
    // backend-opt-out: decoding the enclave's local report to hand it to
    // the quoting enclave — still agent-side evidence *production*.
    let report = vnfguard_sgx::report::Report::decode(&report_bytes)?;
    let quote = qe.quote(&report, *nonce)?;
    Ok(HostEvidence {
        quote: quote.encode(),
        iml: iml_bytes.to_vec(),
        tpm_quote,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iml_bytes() -> Vec<u8> {
        let mut list = MeasurementList::new(b"boot");
        list.measure_file("/usr/bin/dockerd", b"dockerd");
        list.encode()
    }

    #[test]
    fn evidence_roundtrip() {
        let evidence = HostEvidence {
            quote: vec![1, 2, 3],
            iml: iml_bytes(),
            tpm_quote: Some(vec![4, 5]),
        };
        assert_eq!(HostEvidence::decode(&evidence.encode()).unwrap(), evidence);
        let no_tpm = HostEvidence {
            tpm_quote: None,
            ..evidence
        };
        assert_eq!(HostEvidence::decode(&no_tpm.encode()).unwrap(), no_tpm);
    }

    #[test]
    fn report_data_binds_iml_and_nonce() {
        let a = host_report_data(b"iml-1", &[1; 32]);
        assert_ne!(a, host_report_data(b"iml-2", &[1; 32]));
        assert_ne!(a, host_report_data(b"iml-1", &[2; 32]));
    }

    #[test]
    fn integrity_enclave_quotes_loaded_iml() {
        let platform = SgxPlatform::new(b"host");
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let enclave = IntegrityAttestationEnclave::load(&platform, &author, 1).unwrap();
        assert_eq!(
            enclave.mrenclave(),
            IntegrityAttestationEnclave::expected_measurement(1)
        );
        let iml = iml_bytes();
        let nonce = [9u8; 32];
        let evidence = host_evidence(&platform, &enclave, &iml, &nonce, None).unwrap();
        let quote = vnfguard_sgx::quote::Quote::decode(&evidence.quote).unwrap();
        assert_eq!(
            quote.report_body.report_data.to_vec(),
            host_report_data(&iml, &nonce).to_vec()
        );
        quote
            .verify_with_member_key(&platform.attestation_public_key())
            .unwrap();
    }

    #[test]
    fn integrity_enclave_refuses_inconsistent_iml() {
        let platform = SgxPlatform::new(b"host");
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let enclave = IntegrityAttestationEnclave::load(&platform, &author, 1).unwrap();
        let mut bytes = iml_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        // Either the list fails to decode or fails consistency — both are
        // refusals.
        assert!(enclave.ecall(op::SET_IML, &bytes).is_err());
        // Attesting without a loaded IML also fails.
        let qe = platform.quoting_enclave();
        assert!(enclave
            .ecall(op::ATTEST, &encode_integrity_attest(&qe.target_info(), &[0; 32]))
            .is_err());
    }

    #[test]
    fn versions_have_distinct_measurements() {
        assert_ne!(
            IntegrityAttestationEnclave::expected_measurement(1),
            IntegrityAttestationEnclave::expected_measurement(2)
        );
    }
}
