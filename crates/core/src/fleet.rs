//! Fleet health plane: the controller-side monitor that scrapes every
//! node's health surface and folds the results into one operator view.
//!
//! The [`FleetMonitor`] follows the same *pull-based* discipline as the
//! CRL [`LifecycleMonitor`](crate::lifecycle::LifecycleMonitor): the
//! controller polls `GET /vm/health` on the primary, `GET /standby/health`
//! on each standby (served by [`serve_standby_health`] — standbys speak
//! the framed replication protocol, so their health gets its own tiny
//! HTTP endpoint), and `GET /agent/health` on each container host. A
//! partitioned node degrades to its **last good view, marked stale** —
//! the monitor never wedges on an unreachable peer, because an outage is
//! exactly when the cockpit must stay responsive.
//!
//! Cross-node aggregation is *exact*: per-workclass latency histograms
//! arrive as full log₂ bucket vectors and merge bucket-by-bucket
//! ([`HistogramSnapshot::merge`]), so fleet quantiles are computed over
//! the union distribution rather than averaged per-node percentiles —
//! averaging percentiles is the classic observability mistake this module
//! exists to avoid. Exemplar trace ids survive the merge, so a fleet-wide
//! tail-latency number still links back to `GET /vm/traces/{id}`.
//!
//! [`serve_fleet_api`] exposes the merged view as `GET /fleet/status`
//! (JSON, or `?format=ascii` for the operator cockpit).

use crate::replication::StandbyProbe;
use crate::CoreError;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use vnfguard_controller::SimClock;
use vnfguard_encoding::Json;
use vnfguard_net::fabric::Network;
use vnfguard_net::http::{Request, Response, Status};
use vnfguard_net::rest::Router;
use vnfguard_net::server::{serve, HttpClient, PlainUpgrade, ServerHandle};
use vnfguard_telemetry::{
    AlertState, Counter, Gauge, HistogramSnapshot, Telemetry, TraceContext,
};

/// What kind of node a fleet entry is — determines the path scraped and
/// how its summary line reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A Verification Manager serving `GET /vm/health`.
    Vm,
    /// A standby's health endpoint (`GET /standby/health`).
    Standby,
    /// A container-host agent (`GET /agent/health`).
    Agent,
}

impl NodeKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            NodeKind::Vm => "vm",
            NodeKind::Standby => "standby",
            NodeKind::Agent => "agent",
        }
    }

    fn path(&self) -> &'static str {
        match self {
            NodeKind::Vm => "/vm/health",
            NodeKind::Standby => "/standby/health",
            NodeKind::Agent => "/agent/health",
        }
    }
}

/// One scraped node: its address plus the last good document and
/// staleness bookkeeping.
struct NodeRecord {
    name: String,
    kind: NodeKind,
    addr: String,
    last_good: Option<Json>,
    observed_at: Option<u64>,
    stale_since: Option<u64>,
    failures: u64,
}

/// One node's row in a [`FleetStatus`].
#[derive(Debug, Clone)]
pub struct NodeStatus {
    pub name: String,
    pub kind: NodeKind,
    pub addr: String,
    /// The most recent scrape succeeded.
    pub reachable: bool,
    /// When the last good document was obtained (simulated seconds).
    pub observed_at: Option<u64>,
    /// Set while the node is unreachable: when it went dark.
    pub stale_since: Option<u64>,
    /// Consecutive or cumulative scrape failures.
    pub failures: u64,
    /// Attestation backend the node advertises (`"sgx"` / `"snp"` from a
    /// host agent's `GET /agent/health`); `None` for nodes that are not
    /// TEE hosts or were never scraped.
    pub backend: Option<String>,
    /// Human-oriented one-liner derived from the last good document.
    pub summary: String,
}

/// Fleet-merged latency for one workclass (union distribution).
#[derive(Debug, Clone)]
pub struct FleetLatency {
    pub class: String,
    pub histogram: HistogramSnapshot,
}

/// One SLO alert as reported by a VM node.
#[derive(Debug, Clone)]
pub struct FleetAlert {
    /// Which node reported it.
    pub node: String,
    pub slo: String,
    pub workclass: String,
    pub state: AlertState,
    pub fast_burn_milli: i64,
    pub slow_burn_milli: i64,
    /// Hex trace ids resolvable via `GET /vm/traces/{id}`.
    pub exemplar_trace_ids: Vec<String>,
}

/// Fleet-level availability for one workclass, summed across VM nodes
/// over the fast burn window.
#[derive(Debug, Clone)]
pub struct FleetSlo {
    pub workclass: String,
    pub fast_good: u64,
    pub fast_bad: u64,
    /// `good / (good + bad)` in milli-units; 1000 when no traffic.
    pub availability_milli: i64,
    /// Worst alert state any node reports for this workclass.
    pub worst_state: AlertState,
}

/// The merged fleet view served by `GET /fleet/status`.
#[derive(Debug, Clone)]
pub struct FleetStatus {
    /// Simulated time the view was assembled.
    pub at: u64,
    pub nodes: Vec<NodeStatus>,
    pub latency: Vec<FleetLatency>,
    pub alerts: Vec<FleetAlert>,
    pub slos: Vec<FleetSlo>,
    /// Nodes currently marked stale.
    pub stale_nodes: usize,
    /// Host-agent population per attestation backend (label → count),
    /// so a mixed SGX+SNP fleet reads at a glance.
    pub backend_counts: Vec<(String, usize)>,
}

/// Controller-side fleet scraper. Pull-based: `scrape` polls every
/// registered node once and returns the merged [`FleetStatus`]; nodes
/// that fail to answer keep their last good view, marked stale.
pub struct FleetMonitor {
    network: Network,
    clock: SimClock,
    origin: String,
    nodes: Vec<NodeRecord>,
    trace: Option<TraceContext>,
    scrapes: Counter,
    scrape_failures: Counter,
    stale_gauge: Gauge,
}

impl FleetMonitor {
    /// A monitor scraping on behalf of `origin` (the fabric endpoint name
    /// its connections originate from).
    pub fn new(
        network: Network,
        clock: SimClock,
        origin: &str,
        telemetry: &Telemetry,
    ) -> FleetMonitor {
        FleetMonitor {
            network,
            clock,
            origin: origin.to_string(),
            nodes: Vec::new(),
            trace: None,
            scrapes: telemetry.counter("vnfguard_core_fleet_scrapes_total"),
            scrape_failures: telemetry.counter("vnfguard_core_fleet_scrape_failures_total"),
            stale_gauge: telemetry.gauge("vnfguard_core_fleet_stale_nodes"),
        }
    }

    /// Register a Verification Manager node (scraped at `GET /vm/health`).
    pub fn add_vm(&mut self, name: &str, addr: &str) {
        self.add(name, NodeKind::Vm, addr);
    }

    /// Register a standby health endpoint ([`serve_standby_health`]).
    pub fn add_standby(&mut self, name: &str, addr: &str) {
        self.add(name, NodeKind::Standby, addr);
    }

    /// Register a container-host agent (scraped at `GET /agent/health`).
    pub fn add_agent(&mut self, name: &str, addr: &str) {
        self.add(name, NodeKind::Agent, addr);
    }

    fn add(&mut self, name: &str, kind: NodeKind, addr: &str) {
        self.nodes.push(NodeRecord {
            name: name.to_string(),
            kind,
            addr: addr.to_string(),
            last_good: None,
            observed_at: None,
            stale_since: None,
            failures: 0,
        });
    }

    /// Scope subsequent scrapes to a distributed-trace context (each
    /// request then carries a `traceparent`); `None` clears.
    pub fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.trace = ctx;
    }

    fn fetch(&self, addr: &str, path: &str) -> Result<Json, CoreError> {
        let stream = self
            .network
            .connect_from(&self.origin, addr)
            .map_err(|e| CoreError::ServiceUnavailable(format!("{addr}: {e}")))?;
        let mut client = HttpClient::new(stream);
        let mut request = Request::get(path);
        if let Some(ctx) = &self.trace {
            request = request.with_trace(ctx);
        }
        let response = client
            .request(&request)
            .map_err(|e| CoreError::ServiceUnavailable(format!("{addr}{path}: {e}")))?;
        if !response.status.is_success() {
            return Err(CoreError::ServiceUnavailable(format!(
                "{addr}{path}: status {}",
                response.status.code()
            )));
        }
        response
            .parse_json()
            .map_err(|e| CoreError::Encoding(format!("{addr}{path}: {e}")))
    }

    /// Poll every registered node once and return the merged view. An
    /// unreachable node keeps its last good document and is marked stale
    /// from the first failed pass; the scrape itself always completes.
    pub fn scrape(&mut self) -> FleetStatus {
        let now = self.clock.now();
        self.scrapes.inc();
        for i in 0..self.nodes.len() {
            let (addr, path) = {
                let node = &self.nodes[i];
                (node.addr.clone(), node.kind.path())
            };
            match self.fetch(&addr, path) {
                Ok(doc) => {
                    let node = &mut self.nodes[i];
                    node.last_good = Some(doc);
                    node.observed_at = Some(now);
                    node.stale_since = None;
                }
                Err(_) => {
                    self.scrape_failures.inc();
                    let node = &mut self.nodes[i];
                    node.failures += 1;
                    node.stale_since.get_or_insert(now);
                }
            }
        }
        let status = self.status();
        self.stale_gauge.set(status.stale_nodes as i64);
        status
    }

    /// Assemble the fleet view from the last good documents without
    /// touching the network.
    pub fn status(&self) -> FleetStatus {
        let now = self.clock.now();
        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut latency: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        let mut alerts: Vec<FleetAlert> = Vec::new();
        let mut slos: BTreeMap<String, FleetSlo> = BTreeMap::new();
        let mut backend_counts: BTreeMap<String, usize> = BTreeMap::new();
        for node in &self.nodes {
            let backend = node
                .last_good
                .as_ref()
                .and_then(|doc| doc.get("backend"))
                .and_then(Json::as_str)
                .map(str::to_string);
            if let Some(label) = &backend {
                *backend_counts.entry(label.clone()).or_insert(0) += 1;
            }
            nodes.push(NodeStatus {
                name: node.name.clone(),
                kind: node.kind,
                addr: node.addr.clone(),
                reachable: node.stale_since.is_none() && node.observed_at.is_some(),
                observed_at: node.observed_at,
                stale_since: node.stale_since,
                failures: node.failures,
                backend,
                summary: node
                    .last_good
                    .as_ref()
                    .map(|doc| summarize(node.kind, doc))
                    .unwrap_or_else(|| "never scraped".to_string()),
            });
            let doc = match (&node.last_good, node.kind) {
                (Some(doc), NodeKind::Vm) => doc,
                _ => continue,
            };
            if let Some(entries) = doc.get("latency").and_then(Json::as_array) {
                for entry in entries {
                    let class = entry
                        .get("class")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    let snapshot = entry
                        .get("histogram")
                        .map(histogram_from_json)
                        .unwrap_or_else(HistogramSnapshot::empty);
                    latency
                        .entry(class)
                        .or_insert_with(HistogramSnapshot::empty)
                        .merge(&snapshot);
                }
            }
            if let Some(entries) = doc.get("alerts").and_then(Json::as_array) {
                for entry in entries {
                    let alert = alert_from_json(&node.name, entry);
                    let slo = slos
                        .entry(alert.workclass.clone())
                        .or_insert_with(|| FleetSlo {
                            workclass: alert.workclass.clone(),
                            fast_good: 0,
                            fast_bad: 0,
                            availability_milli: 1000,
                            worst_state: AlertState::Ok,
                        });
                    if alert.state.code() > slo.worst_state.code() {
                        slo.worst_state = alert.state;
                    }
                    // Availability traffic comes from the availability SLO
                    // only — counting the latency SLO too would double the
                    // workclass's request volume.
                    if alert.slo.ends_with("-availability") {
                        slo.fast_good +=
                            entry.get("fast_good").and_then(Json::as_i64).unwrap_or(0) as u64;
                        slo.fast_bad +=
                            entry.get("fast_bad").and_then(Json::as_i64).unwrap_or(0) as u64;
                    }
                    alerts.push(alert);
                }
            }
        }
        for slo in slos.values_mut() {
            if let Some(milli) = (slo.fast_good * 1000).checked_div(slo.fast_good + slo.fast_bad)
            {
                slo.availability_milli = milli as i64;
            }
        }
        let stale_nodes = nodes.iter().filter(|n| n.stale_since.is_some()).count();
        FleetStatus {
            at: now,
            nodes,
            latency: latency
                .into_iter()
                .map(|(class, histogram)| FleetLatency { class, histogram })
                .collect(),
            alerts,
            slos: slos.into_values().collect(),
            stale_nodes,
            backend_counts: backend_counts.into_iter().collect(),
        }
    }
}

impl std::fmt::Debug for FleetMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetMonitor")
            .field("origin", &self.origin)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

/// One-line human summary of a node's last good document.
fn summarize(kind: NodeKind, doc: &Json) -> String {
    match kind {
        NodeKind::Vm => {
            let shards = doc.get("shard_count").and_then(Json::as_i64).unwrap_or(0);
            let firing = doc
                .get("alerts")
                .and_then(Json::as_array)
                .map(|alerts| {
                    alerts
                        .iter()
                        .filter(|a| a.get("state").and_then(Json::as_str) == Some("firing"))
                        .count()
                })
                .unwrap_or(0);
            format!("{shards} shard(s), {firing} firing alert(s)")
        }
        NodeKind::Standby => {
            let epoch = doc.get("epoch").and_then(Json::as_i64).unwrap_or(0);
            let applied = doc
                .get("applied_records")
                .and_then(Json::as_i64)
                .unwrap_or(0);
            match doc.get("heartbeat_age_seconds").and_then(Json::as_i64) {
                Some(age) => {
                    format!("epoch {epoch}, applied {applied}, heartbeat {age}s ago")
                }
                None => format!("epoch {epoch}, applied {applied}, no heartbeat yet"),
            }
        }
        NodeKind::Agent => {
            let vnfs = doc
                .get("vnfs")
                .and_then(Json::as_array)
                .map(<[Json]>::len)
                .unwrap_or(0);
            let revoked = doc
                .get("revoked_serials")
                .and_then(Json::as_i64)
                .unwrap_or(0);
            format!("{vnfs} vnf(s), {revoked} revoked serial(s)")
        }
    }
}

/// Parse the histogram wire shape of `GET /vm/health` back into an exact
/// [`HistogramSnapshot`] — full bucket vector, count/sum/max, exemplars.
fn histogram_from_json(doc: &Json) -> HistogramSnapshot {
    let mut snapshot = HistogramSnapshot::empty();
    if let Some(buckets) = doc.get("buckets").and_then(Json::as_array) {
        for (i, bucket) in buckets.iter().enumerate() {
            let v = bucket.as_i64().unwrap_or(0) as u64;
            if i < snapshot.buckets.len() {
                snapshot.buckets[i] = v;
            }
        }
    }
    snapshot.count = doc.get("count").and_then(Json::as_i64).unwrap_or(0) as u64;
    snapshot.sum = doc.get("sum").and_then(Json::as_i64).unwrap_or(0) as u64;
    snapshot.max = doc.get("max").and_then(Json::as_i64).unwrap_or(0) as u64;
    if let Some(exemplars) = doc.get("exemplars").and_then(Json::as_array) {
        for exemplar in exemplars {
            let trace_id = exemplar
                .get("trace_id")
                .and_then(Json::as_str)
                .and_then(|hex| u128::from_str_radix(hex, 16).ok())
                .unwrap_or(0);
            snapshot.exemplars.push(vnfguard_telemetry::Exemplar {
                value: exemplar.get("value").and_then(Json::as_i64).unwrap_or(0) as u64,
                trace_id,
                bucket: exemplar.get("bucket").and_then(Json::as_i64).unwrap_or(0) as usize,
            });
        }
    }
    snapshot
}

fn alert_from_json(node: &str, entry: &Json) -> FleetAlert {
    let exemplar_trace_ids = entry
        .get("exemplar_trace_ids")
        .and_then(Json::as_array)
        .map(|ids| {
            ids.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    FleetAlert {
        node: node.to_string(),
        slo: entry
            .get("slo")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        workclass: entry
            .get("workclass")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        state: AlertState::from_code(
            entry.get("state_code").and_then(Json::as_i64).unwrap_or(2),
        ),
        fast_burn_milli: entry
            .get("fast_burn_milli")
            .and_then(Json::as_i64)
            .unwrap_or(0),
        slow_burn_milli: entry
            .get("slow_burn_milli")
            .and_then(Json::as_i64)
            .unwrap_or(0),
        exemplar_trace_ids,
    }
}

/// Serialize a [`FleetStatus`] for `GET /fleet/status`.
pub fn fleet_json(status: &FleetStatus) -> Json {
    let nodes: Json = status
        .nodes
        .iter()
        .map(|n| {
            let mut entry = Json::object()
                .with("name", n.name.as_str())
                .with("kind", n.kind.as_str())
                .with("addr", n.addr.as_str())
                .with("reachable", n.reachable)
                .with("failures", n.failures as i64)
                .with("summary", n.summary.as_str());
            if let Some(backend) = &n.backend {
                entry = entry.with("backend", backend.as_str());
            }
            if let Some(at) = n.observed_at {
                entry = entry.with("observed_at", at as i64);
            }
            if let Some(at) = n.stale_since {
                entry = entry.with("stale_since", at as i64);
            }
            entry
        })
        .collect();
    let latency: Json = status
        .latency
        .iter()
        .map(|l| {
            let exemplars: Json = l
                .histogram
                .exemplars
                .iter()
                .map(|e| {
                    Json::object()
                        .with("value", e.value as i64)
                        .with("trace_id", format!("{:032x}", e.trace_id))
                })
                .collect();
            Json::object()
                .with("class", l.class.as_str())
                .with("count", l.histogram.count as i64)
                .with("p50_micros", l.histogram.quantile(0.50) as i64)
                .with("p99_micros", l.histogram.quantile(0.99) as i64)
                .with("max_micros", l.histogram.max as i64)
                .with("exemplars", exemplars)
        })
        .collect();
    let alerts: Json = status
        .alerts
        .iter()
        .map(|a| {
            let exemplars: Json = a
                .exemplar_trace_ids
                .iter()
                .map(|id| Json::from(id.as_str()))
                .collect();
            Json::object()
                .with("node", a.node.as_str())
                .with("slo", a.slo.as_str())
                .with("workclass", a.workclass.as_str())
                .with("state", a.state.as_str())
                .with("fast_burn_milli", a.fast_burn_milli)
                .with("slow_burn_milli", a.slow_burn_milli)
                .with("exemplar_trace_ids", exemplars)
        })
        .collect();
    let slos: Json = status
        .slos
        .iter()
        .map(|s| {
            Json::object()
                .with("workclass", s.workclass.as_str())
                .with("fast_good", s.fast_good as i64)
                .with("fast_bad", s.fast_bad as i64)
                .with("availability_milli", s.availability_milli)
                .with("worst_state", s.worst_state.as_str())
        })
        .collect();
    let backends = status
        .backend_counts
        .iter()
        .fold(Json::object(), |acc, (label, count)| {
            acc.with(label.as_str(), *count as i64)
        });
    Json::object()
        .with("at", status.at as i64)
        .with("stale_nodes", status.stale_nodes as i64)
        .with("backends", backends)
        .with("nodes", nodes)
        .with("latency", latency)
        .with("alerts", alerts)
        .with("slos", slos)
}

/// Render the ASCII operator cockpit (`GET /fleet/status?format=ascii`).
pub fn render_cockpit(status: &FleetStatus) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "vnfguard fleet cockpit @ {} — {} node(s), {} stale",
        status.at,
        status.nodes.len(),
        status.stale_nodes
    ));
    if !status.backend_counts.is_empty() {
        let populations: Vec<String> = status
            .backend_counts
            .iter()
            .map(|(label, count)| format!("{count} {label}"))
            .collect();
        out.push_str(&format!(" — hosts: {}", populations.join(", ")));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<18} {:<8} {:<8} {:<6} DETAIL\n",
        "NODE", "KIND", "BACKEND", "STATE"
    ));
    for node in &status.nodes {
        let state = match node.stale_since {
            Some(_) => "STALE",
            None if node.observed_at.is_some() => "ok",
            None => "-",
        };
        let mut detail = node.summary.clone();
        if let Some(since) = node.stale_since {
            detail.push_str(&format!(" (stale since {since})"));
        }
        out.push_str(&format!(
            "{:<18} {:<8} {:<8} {:<6} {}\n",
            node.name,
            node.kind.as_str(),
            node.backend.as_deref().unwrap_or("-"),
            state,
            detail
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<28} {:<8} {:>8} {:>8}  TRAFFIC(fast window)\n",
        "SLO", "STATE", "FASTx", "SLOWx"
    ));
    for alert in &status.alerts {
        out.push_str(&format!(
            "{:<28} {:<8} {:>8.2} {:>8.2}  ",
            alert.slo,
            alert.state.as_str(),
            alert.fast_burn_milli as f64 / 1000.0,
            alert.slow_burn_milli as f64 / 1000.0,
        ));
        if alert.exemplar_trace_ids.is_empty() {
            out.push_str("-\n");
        } else {
            out.push_str(&format!("trace {}\n", alert.exemplar_trace_ids[0]));
        }
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<16} {:>8} {:>10} {:>10} {:>10}\n",
        "WORKCLASS", "COUNT", "P50us", "P99us", "MAXus"
    ));
    for entry in &status.latency {
        out.push_str(&format!(
            "{:<16} {:>8} {:>10} {:>10} {:>10}\n",
            entry.class,
            entry.histogram.count,
            entry.histogram.quantile(0.50),
            entry.histogram.quantile(0.99),
            entry.histogram.max
        ));
    }
    for slo in &status.slos {
        out.push_str(&format!(
            "availability[{}] = {}.{:03} ({} good / {} bad, worst {})\n",
            slo.workclass,
            slo.availability_milli / 1000,
            slo.availability_milli % 1000,
            slo.fast_good,
            slo.fast_bad,
            slo.worst_state.as_str()
        ));
    }
    out
}

/// Serve one standby's replication state as `GET /standby/health`.
///
/// Standbys answer the framed replication protocol, not HTTP — this
/// wraps a [`StandbyProbe`] in the one extra endpoint the fleet monitor
/// needs. Heartbeat age is computed on the deployment clock at scrape
/// time, so a silent primary shows up as a growing number.
pub fn serve_standby_health(
    network: &Network,
    address: &str,
    probe: StandbyProbe,
    clock: SimClock,
) -> Result<ServerHandle, CoreError> {
    let mut router = Router::new();
    router.get_api("/standby/health", move |_, _| {
        let status = probe.status();
        let mut body = Json::object()
            .with("addr", status.addr.as_str())
            .with("epoch", status.epoch as i64)
            .with("next_seq", status.next_seq as i64)
            .with("applied_records", status.applied_records as i64)
            .with("snapshots_installed", status.snapshots_installed as i64)
            .with("fenced_rejections", status.fenced_rejections as i64);
        if let Some(at) = status.last_heartbeat_at {
            body = body
                .with("last_heartbeat_at", at as i64)
                .with("heartbeat_age_seconds", clock.now().saturating_sub(at) as i64);
        }
        Ok(Response::json(Status::Ok, &body))
    });
    let listener = network
        .listen(address)
        .map_err(|e| CoreError::ServiceUnavailable(e.to_string()))?;
    Ok(serve(listener, PlainUpgrade, router))
}

/// Serve the merged fleet view at `address`:
///
/// - `GET /fleet/status` → [`fleet_json`]
/// - `GET /fleet/status?format=ascii` → [`render_cockpit`]
///
/// Each request runs one scrape pass, so the cockpit is always at most
/// one round-trip stale — and a partitioned node costs one failed
/// connect, not a hang.
pub fn serve_fleet_api(
    network: &Network,
    address: &str,
    monitor: Arc<Mutex<FleetMonitor>>,
) -> Result<ServerHandle, CoreError> {
    let mut router = Router::new();
    {
        let monitor = monitor.clone();
        router.get_api("/fleet/status", move |request, _| {
            // deadline-opt-out: the cockpit is what operators read *during*
            // an overload incident — an exhausted caller budget must not
            // blind them.
            let status = monitor.lock().scrape();
            match request.query_param("format") {
                Some("ascii") => Ok(Response::text(Status::Ok, &render_cockpit(&status))),
                _ => Ok(Response::json(Status::Ok, &fleet_json(&status))),
            }
        });
    }
    let listener = network
        .listen(address)
        .map_err(|e| CoreError::ServiceUnavailable(e.to_string()))?;
    Ok(serve(listener, PlainUpgrade, router))
}
