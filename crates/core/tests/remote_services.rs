//! The fully networked deployment: Verification Manager, IAS and host
//! agents as separate services on the fabric, driven through the VM's
//! operator API — the distributed shape of the paper's Figure 1.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use vnfguard_core::deployment::TestbedBuilder;
use vnfguard_core::remote::{
    remote_attest_host, remote_enroll_vnf, serve_ias, serve_vm_api, HostAgent, HostAgentState,
    RemoteIas,
};
use vnfguard_encoding::{base64, Json};
use vnfguard_ias::QuoteVerifier;
use vnfguard_net::http::Request;
use vnfguard_net::server::HttpClient;
use vnfguard_pki::Certificate;

/// Assemble a networked deployment from a testbed: move the IAS behind a
/// REST endpoint and put an agent in front of host 0.
struct RemoteWorld {
    testbed: vnfguard_core::deployment::Testbed,
    agent: HostAgent,
    remote_ias: RemoteIas,
    _ias_handle: vnfguard_net::server::ServerHandle,
}

fn remote_world(seed: &[u8]) -> RemoteWorld {
    let mut testbed = TestbedBuilder::new(seed).build();

    // Move the IAS out onto the fabric.
    let ias = std::mem::replace(
        &mut testbed.ias,
        vnfguard_ias::AttestationService::new(b"placeholder"),
    );
    let report_key = ias.report_signing_key();
    let (_ias_handle, _shared) = serve_ias(&testbed.network, "ias:443", ias).unwrap();
    let remote_ias = RemoteIas::new(&testbed.network, "ias:443", report_key);

    // Put an agent in front of host 0. The testbed host's parts move into
    // the shared agent state.
    let host = testbed.hosts.remove(0);
    let guard = vnfguard_vnf::VnfGuard::load(
        &host.platform,
        &testbed.network,
        &testbed.enclave_author,
        "vnf-remote",
        1,
    )
    .unwrap();
    testbed.vm.trust_enclave(guard.mrenclave(), "vnf-remote-v1");
    let mut guards = HashMap::new();
    guards.insert("vnf-remote".to_string(), Arc::new(guard));
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(guards),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: None,
    });
    let agent = HostAgent::serve(&testbed.network, state).unwrap();

    RemoteWorld {
        testbed,
        agent,
        remote_ias,
        _ias_handle,
    }
}

#[test]
fn networked_attestation_and_enrollment() {
    let mut world = remote_world(b"remote world 1");

    // Steps 1-2 across the fabric (VM → agent → integrity enclave → QE,
    // then VM → remote IAS).
    let verdict = remote_attest_host(
        &world.testbed.vm,
        &mut world.remote_ias,
        &world.testbed.network,
        "host-0",
    )
    .unwrap();
    assert!(verdict.is_trusted());

    // Steps 3-5 across the fabric.
    let certificate: Certificate = remote_enroll_vnf(
        &world.testbed.vm,
        &mut world.remote_ias,
        &world.testbed.network,
        "host-0",
        "vnf-remote",
        "controller",
    )
    .unwrap();
    assert_eq!(certificate.subject_cn(), "vnf-remote");

    // The enclave actually holds the credentials now.
    let guards = world.agent.state.guards.read();
    let status = guards["vnf-remote"].status().unwrap();
    assert!(status.provisioned);
    assert_eq!(status.serial, certificate.serial());
    assert!(world.agent.requests_served() >= 3);
}

#[test]
fn networked_enrollment_of_unknown_vnf_fails() {
    let mut world = remote_world(b"remote world 2");
    remote_attest_host(
        &world.testbed.vm,
        &mut world.remote_ias,
        &world.testbed.network,
        "host-0",
    )
    .unwrap();
    let err = remote_enroll_vnf(
        &world.testbed.vm,
        &mut world.remote_ias,
        &world.testbed.network,
        "host-0",
        "ghost-vnf",
        "controller",
    )
    .unwrap_err();
    assert!(err.to_string().contains("404") || err.to_string().contains("agent"));
}

#[test]
fn unreachable_ias_fails_closed() {
    let world = remote_world(b"remote world 3");
    // Point the client at an address nobody serves.
    let mut dead_ias = RemoteIas::new(
        &world.testbed.network,
        "ias:9999",
        world.remote_ias.report_signing_key(),
    );
    let err = remote_attest_host(
        &world.testbed.vm,
        &mut dead_ias,
        &world.testbed.network,
        "host-0",
    )
    .unwrap_err();
    // The synthesized fail-closed report does not verify under the real key.
    assert!(matches!(
        err,
        vnfguard_core::CoreError::AttestationFailed(_)
    ));
}

#[test]
fn operator_api_drives_the_workflow() {
    let world = remote_world(b"remote world 4");
    let network = world.testbed.network.clone();

    // Hand the service handle + wrapped IAS to the API server.
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(world.remote_ias));
    let _api = serve_vm_api(&network, "vm:8443", world.testbed.vm_service(), ias, "controller")
        .unwrap();

    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());

    // Trigger host attestation through the API.
    let response = client
        .request(&Request::post("/vm/hosts/host-0/attest"))
        .unwrap();
    assert!(response.status.is_success(), "{:?}", response.status);
    assert_eq!(
        response.parse_json().unwrap().get("verdict").and_then(Json::as_str),
        Some("Trusted")
    );

    // Enroll through the API.
    let response = client
        .request(&Request::post("/vm/hosts/host-0/vnfs/vnf-remote/enroll"))
        .unwrap();
    assert!(response.status.is_success());
    let body = response.parse_json().unwrap();
    let serial = body.get("serial").and_then(Json::as_i64).unwrap();
    assert_eq!(body.get("subject").and_then(Json::as_str), Some("vnf-remote"));

    // Status reflects the enrollment.
    let status = client
        .request(&Request::get("/vm/status"))
        .unwrap()
        .parse_json()
        .unwrap();
    assert_eq!(status.get("enrollments").and_then(Json::as_i64), Some(1));

    // Fetch the CA certificate and CRL.
    let ca_doc = client.request(&Request::get("/vm/ca")).unwrap().parse_json().unwrap();
    let ca_bytes = base64::decode(ca_doc.get("certificate").and_then(Json::as_str).unwrap()).unwrap();
    let ca_cert = Certificate::decode(&ca_bytes).unwrap();
    assert!(ca_cert.is_self_signed());

    // Revoke via the API; the CRL grows.
    let response = client
        .request(&Request::post("/vm/revoke").with_json(&Json::object().with("serial", serial)))
        .unwrap();
    assert!(response.status.is_success());
    let crl_doc = client.request(&Request::get("/vm/crl")).unwrap().parse_json().unwrap();
    let crl_bytes = base64::decode(crl_doc.get("crl").and_then(Json::as_str).unwrap()).unwrap();
    let crl = vnfguard_pki::Crl::decode(&crl_bytes).unwrap();
    assert!(crl.lookup(serial as u64).is_some());
    crl.verify(&ca_cert.tbs.public_key).unwrap();

    // Unknown serial → 404.
    let response = client
        .request(&Request::post("/vm/revoke").with_json(&Json::object().with("serial", 424242i64)))
        .unwrap();
    assert_eq!(response.status.code(), 404);
}
