//! Mixed SGX + SEV-SNP fleets through the generic [`AttestationBackend`]
//! path: enrollment, renewal, revocation, crash recovery, and the
//! cross-backend rejection rules, all against one Verification Manager.
//!
//! [`AttestationBackend`]: vnfguard_attest::AttestationBackend

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use vnfguard_attest::snp::SnpFault;
use vnfguard_attest::BackendKind;
use vnfguard_core::attestation::{host_evidence, host_report_data, HostEvidence};
use vnfguard_core::deployment::TestbedBuilder;
use vnfguard_core::fleet::{fleet_json, render_cockpit};
use vnfguard_core::remote::{HostAgent, HostAgentState};
use vnfguard_pki::crl::RevocationReason;

fn mixed_testbed(seed: &[u8]) -> vnfguard_core::deployment::Testbed {
    TestbedBuilder::new(seed)
        .hosts(4)
        .host_backend(2, BackendKind::SevSnp)
        .host_backend(3, BackendKind::SevSnp)
        .durable()
        .renewal_window(86_000)
        .build()
}

#[test]
fn mixed_fleet_full_lifecycle() {
    let mut tb = mixed_testbed(b"mixed lifecycle");
    for i in 0..4 {
        tb.attest_host(i).unwrap();
    }

    // Enroll one VNF per host; the enrollment records must carry the
    // backend the evidence actually came from.
    let mut guards = Vec::new();
    let mut serials = Vec::new();
    for i in 0..4 {
        let guard = tb.deploy_guard(i, &format!("vnf-{i}"), 1).unwrap();
        let certificate = tb.enroll(i, &guard).unwrap();
        serials.push(certificate.serial());
        guards.push(guard);
    }
    for (i, serial) in serials.iter().enumerate() {
        let record = tb
            .vm
            .enrollments()
            .find(|e| e.serial == *serial)
            .expect("enrollment recorded");
        let expected = if i < 2 {
            BackendKind::SgxEpid
        } else {
            BackendKind::SevSnp
        };
        assert_eq!(record.backend, expected, "host {i}");
    }

    // Renewal routes back through the recorded backend for every host.
    for (guard, serial) in guards.iter().zip(serials.iter_mut()) {
        *serial = tb.renew(guard, *serial).unwrap().serial();
    }

    // CA rotation and CRL distribution reach both populations.
    let rotation = tb.rotate_ca().unwrap();
    tb.distribute_ca(&rotation).unwrap();
    tb.clock.advance(1);
    tb.vm
        .revoke_credential(serials[0], RevocationReason::KeyCompromise)
        .unwrap();
    tb.vm
        .revoke_credential(serials[2], RevocationReason::KeyCompromise)
        .unwrap();
    tb.push_crl().unwrap();
    tb.clock.advance(1);
    for (i, guard) in guards.iter_mut().enumerate() {
        let session = tb.open_session(guard);
        if i == 0 || i == 2 {
            assert!(session.is_err(), "revoked host-{i} credential opened a session");
        } else {
            guard.close_session(session.unwrap()).unwrap();
        }
    }
}

#[test]
fn recovery_restores_both_backend_whitelists() {
    let mut tb = mixed_testbed(b"mixed recovery");
    for i in 0..4 {
        tb.attest_host(i).unwrap();
    }
    for i in 0..4 {
        let guard = tb.deploy_guard(i, &format!("pre-{i}"), 1).unwrap();
        tb.enroll(i, &guard).unwrap();
    }

    let report = tb.recover_vm().unwrap();
    assert!(report.replayed_records > 0);

    // Attestations are dropped by design; re-attesting uses the backend
    // each host was built with, and the replayed trust log restores both
    // backends' whitelists so fresh enrollments succeed on either side.
    for i in [0usize, 3] {
        tb.attest_host(i).unwrap();
        let guard = tb.deploy_guard(i, &format!("post-{i}"), 1).unwrap();
        let certificate = tb.enroll(i, &guard).unwrap();
        let record = tb
            .vm
            .enrollments()
            .find(|e| e.serial == certificate.serial())
            .unwrap();
        assert_eq!(record.backend, tb.hosts[i].backend);
    }
}

#[test]
fn snp_debug_policy_refused_at_host_attestation() {
    let mut tb = mixed_testbed(b"mixed debug policy");
    tb.hosts[2]
        .snp
        .as_mut()
        .unwrap()
        .set_fault(Some(SnpFault::DebugPolicy));
    let err = tb.attest_host(2).unwrap_err();
    assert!(err.to_string().contains("debug"), "{err}");

    // The clean SNP host is unaffected.
    tb.attest_host(3).unwrap();
}

#[test]
fn snp_forged_signature_refused_at_host_attestation() {
    let mut tb = mixed_testbed(b"mixed forged sig");
    tb.hosts[3]
        .snp
        .as_mut()
        .unwrap()
        .set_fault(Some(SnpFault::ForgedSignature));
    assert!(tb.attest_host(3).is_err());
}

#[test]
fn cross_backend_evidence_refused_by_manager() {
    let mut tb = mixed_testbed(b"mixed cross backend");

    // An SNP host presenting its evidence down the SGX/IAS path: IAS
    // cannot parse the bundle as a quote and the manager refuses.
    let challenge = tb.vm.begin_host_attestation(&tb.hosts[2].id);
    tb.hosts[2].sync_tpm();
    let iml = tb.hosts[2].container_host.measurement_list().encode();
    let report_data = host_report_data(&iml, &challenge.nonce);
    let snp_quote = tb.hosts[2].snp.as_ref().unwrap().attest_self(report_data);
    let evidence = HostEvidence {
        quote: snp_quote,
        iml,
        tpm_quote: None,
    };
    assert!(tb
        .vm
        .complete_host_attestation(&mut tb.ias, challenge.id, &evidence)
        .is_err());

    // An SGX host presenting its quote to the SNP appraiser: the bundle
    // has no SNP magic and dies structurally.
    let challenge = tb.vm.begin_host_attestation(&tb.hosts[0].id);
    tb.hosts[0].sync_tpm();
    let iml = tb.hosts[0].container_host.measurement_list().encode();
    let evidence = host_evidence(
        &tb.hosts[0].platform,
        &tb.hosts[0].integrity_enclave,
        &iml,
        &challenge.nonce,
        None,
    )
    .unwrap();
    let mut verifier = tb.snp_verifier().unwrap().clone();
    assert!(tb
        .vm
        .complete_host_attestation_backend(&mut verifier, challenge.id, &evidence)
        .is_err());

    // Control arm: both hosts still attest cleanly through their own
    // backends afterwards.
    tb.attest_host(0).unwrap();
    tb.attest_host(2).unwrap();
}

#[test]
fn fleet_status_breaks_out_backend_populations() {
    let mut tb = mixed_testbed(b"mixed fleet view");
    let (mut monitor, _handles) = tb.fleet_monitor("operator", "vm:8443").unwrap();

    // Serve each host's agent; /agent/health advertises its backend.
    let mut agents = Vec::new();
    for (i, host) in tb.hosts.drain(..).enumerate() {
        let state = Arc::new(HostAgentState {
            host_id: host.id.clone(),
            platform: host.platform,
            snp: host.snp,
            container_host: RwLock::new(host.container_host),
            integrity_enclave: host.integrity_enclave,
            tpm: None,
            guards: RwLock::new(HashMap::new()),
            revoked_serials: RwLock::new(Default::default()),
            vm_hmac_key: Some(tb.vm.share_hmac_key()),
        });
        let agent = HostAgent::serve(&tb.network, state).unwrap();
        monitor.add_agent(&format!("agent-{i}"), &agent.address);
        agents.push(agent);
    }

    let status = monitor.scrape();
    assert_eq!(
        status.backend_counts,
        vec![("sgx".to_string(), 2), ("snp".to_string(), 2)]
    );
    let agent_backends: Vec<Option<String>> = status
        .nodes
        .iter()
        .filter(|n| n.name.starts_with("agent-"))
        .map(|n| n.backend.clone())
        .collect();
    assert_eq!(
        agent_backends,
        vec![
            Some("sgx".into()),
            Some("sgx".into()),
            Some("snp".into()),
            Some("snp".into())
        ]
    );
    // VM nodes carry no backend (authority-side, not a TEE population).
    assert!(status
        .nodes
        .iter()
        .filter(|n| !n.name.starts_with("agent-"))
        .all(|n| n.backend.is_none()));

    let doc = fleet_json(&status);
    let backends = doc.get("backends").expect("backends object");
    assert_eq!(backends.get("sgx").and_then(|j| j.as_i64()), Some(2));
    assert_eq!(backends.get("snp").and_then(|j| j.as_i64()), Some(2));

    let cockpit = render_cockpit(&status);
    assert!(cockpit.contains("2 sgx"), "{cockpit}");
    assert!(cockpit.contains("2 snp"), "{cockpit}");
}
