//! Overload control end to end: admission gates in front of the shard
//! locks, deadline propagation over the VM API, and the invariant that a
//! shed request leaves no partial state behind — no pending enrollment,
//! no orphaned WAL prepare, no drift versus a WAL-replayed oracle twin.

use parking_lot::Mutex;
use std::sync::Arc;
use vnfguard_core::deployment::TestbedBuilder;
use vnfguard_core::fleet::serve_fleet_api;
use vnfguard_core::overload::{AdmissionConfig, Workclass};
use vnfguard_core::remote::serve_vm_api;
use vnfguard_core::CoreError;
use vnfguard_encoding::Json;
use vnfguard_ias::QuoteVerifier;
use vnfguard_net::http::{Request, DEADLINE_HEADER};
use vnfguard_net::server::HttpClient;
use vnfguard_telemetry::Telemetry;

fn tight_admission() -> AdmissionConfig {
    AdmissionConfig {
        queue_bound: 8,
        ..AdmissionConfig::default()
    }
}

/// An enrollment flood fills the enrollment class queue and gets shed with
/// a retry hint — while revocation, holding a strictly larger queue bound,
/// still goes through. The priority order is enforced by queue asymmetry,
/// not by reordering.
#[test]
fn enrollment_flood_sheds_while_revocation_completes() {
    let telemetry = Telemetry::new();
    let mut tb = TestbedBuilder::new(b"overload priority")
        .telemetry(telemetry.clone())
        .admission_config(tight_admission())
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-victim", 1).unwrap();
    let cert = tb.enroll(0, &guard).unwrap();

    let admission = tb.vm.admission().expect("testbed built with admission");
    // With queue_bound 8: enrollment gets 4 slots, revocation the full 8.
    assert_eq!(
        AdmissionConfig::default().retry_after_base_secs,
        admission.config().retry_after_base_secs
    );

    // Occupy every enrollment slot, as a stalled flood would.
    let flood: Vec<_> = (0..4)
        .map(|_| admission.admit(Workclass::Enrollment, None).expect("slot"))
        .collect();

    // The next enrollment is refused before it can queue, with a hint.
    let err = tb
        .vm
        .begin_vnf_attestation("host-0", "vnf-late")
        .unwrap_err();
    match err {
        CoreError::Overloaded {
            retry_after_secs, ..
        } => assert!(retry_after_secs >= 1),
        other => panic!("expected Overloaded, got {other}"),
    }

    // Revocation still has headroom: the control-plane action the paper's
    // operator actually needs under attack completes despite the flood.
    tb.vm.revoke_credential(
        cert.serial(),
        vnfguard_pki::crl::RevocationReason::KeyCompromise,
    )
    .unwrap();
    assert!(tb.vm.credential_is_revoked(cert.serial()));

    drop(flood);
    // Slots released: enrollment admission works again.
    let challenge = tb
        .vm
        .begin_vnf_attestation("host-0", "vnf-late")
        .unwrap();
    assert!(challenge.id > 0);

    // The shed surfaced in telemetry, attributed to the enrollment class.
    let rendered = telemetry.render_prometheus();
    assert!(
        rendered.contains("vnfguard_net_shed_total_enrollment 1"),
        "missing enrollment shed counter:\n{rendered}"
    );
}

/// A shed enrollment must leave no partial WAL state: no pending
/// two-phase prepare, and a WAL-replayed oracle twin stays byte-identical
/// to the primary's fleet view.
#[test]
fn shed_enrollments_leave_no_partial_wal_state() {
    let mut tb = TestbedBuilder::new(b"overload no orphans")
        .durable()
        .admission_config(tight_admission())
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-kept", 1).unwrap();
    tb.enroll(0, &guard).unwrap();

    let admission = tb.vm.admission().unwrap();
    let flood: Vec<_> = (0..4)
        .map(|_| admission.admit(Workclass::Enrollment, None).expect("slot"))
        .collect();

    // Both the challenge phase and the prepare phase are refused at the
    // gate, before any journal write.
    let begin = tb.vm.begin_vnf_attestation("host-0", "vnf-shed");
    assert!(matches!(begin, Err(CoreError::Overloaded { .. })));
    drop(flood);

    // Nothing in flight: a shed is a clean no-op, not a half-enrollment.
    assert_eq!(tb.vm.pending_enrollments().count(), 0);
    assert_eq!(tb.vm.enrollments().count(), 1);

    // The WAL agrees: replaying it into an oracle twin reproduces the
    // primary exactly — a shed request wrote nothing durable.
    let twin = tb.oracle_twin().unwrap();
    assert_eq!(twin.enrollments().count(), 1);
    assert_eq!(twin.pending_enrollments().count(), 0);
    assert_eq!(twin.fingerprint(), tb.vm.fingerprint());
}

/// The `x-vnfguard-deadline` header propagates into the admission gate: a
/// request arriving with an exhausted budget is answered 504
/// `code:"deadline"` without touching the shard, while the same request
/// with budget (or none) succeeds. Shed renewals advertise
/// `retry-after-secs` and park the serial on the manager-side backoff.
#[test]
fn vm_api_honors_deadlines_and_advertises_retry_hints() {
    let telemetry = Telemetry::new();
    let mut tb = TestbedBuilder::new(b"overload api deadlines")
        .telemetry(telemetry.clone())
        .admission_config(tight_admission())
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-api", 1).unwrap();
    let cert = tb.enroll(0, &guard).unwrap();
    let provisioning_key = guard.provisioning_key().unwrap();

    let network = tb.network.clone();
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(std::mem::replace(
        &mut tb.ias,
        vnfguard_ias::AttestationService::new(b"placeholder"),
    )));
    let _api = serve_vm_api(&network, "vm:8443", tb.vm_service(), ias, "controller").unwrap();
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());

    // Exhausted budget → 504 before the shard is touched.
    let response = client
        .request(&Request::get("/vm/lifecycle").with_header(DEADLINE_HEADER, "0"))
        .unwrap();
    assert_eq!(response.status.code(), 504);
    let body = response.parse_json().unwrap();
    assert_eq!(body.get("code").and_then(Json::as_str), Some("deadline"));

    // Generous budget → normal answer.
    let response = client
        .request(&Request::get("/vm/lifecycle").with_header(DEADLINE_HEADER, "30000"))
        .unwrap();
    assert!(response.status.is_success(), "{:?}", response.status);

    // Diagnostics opt out of deadline enforcement entirely: a dead budget
    // must not lock operators out of metrics mid-incident.
    let response = client
        .request(&Request::get("/vm/metrics").with_header(DEADLINE_HEADER, "0"))
        .unwrap();
    assert!(response.status.is_success());

    // Fill the renewal queue, then renew over the API: 503 "overloaded"
    // with a retry hint in the body, and the serial parked on backoff so
    // the next sweep retries it off-peak instead of stampeding.
    let admission = tb.vm.admission().unwrap();
    let flood: Vec<_> = (0..6)
        .map(|_| admission.admit(Workclass::Renewal, None).expect("slot"))
        .collect();
    let renew = Request::post("/vm/renew").with_json(
        &Json::object()
            .with("serial", cert.serial() as i64)
            .with(
                "provisioning_key",
                vnfguard_encoding::base64::encode(&provisioning_key),
            ),
    );
    let response = client.request(&renew).unwrap();
    assert_eq!(response.status.code(), 503);
    let body = response.parse_json().unwrap();
    assert_eq!(body.get("code").and_then(Json::as_str), Some("overloaded"));
    let hint = body
        .get("retry-after-secs")
        .and_then(Json::as_i64)
        .expect("shed renewal advertises retry-after-secs");
    assert!(hint >= 1);
    assert_eq!(response.retry_after_secs(), Some(hint as u64));
    let parked = tb
        .vm
        .renewal_backoff_until(cert.serial())
        .expect("refused renewal parks the serial");
    assert!(parked > tb.clock.now());
    drop(flood);

    // Once the queue drains, the same renewal goes through.
    let response = client.request(&renew).unwrap();
    assert!(response.status.is_success(), "{:?}", response.status);

    // Deadline refusals surfaced in telemetry.
    let rendered = telemetry.render_prometheus();
    assert!(
        rendered.contains("vnfguard_net_deadline_exceeded_total 1"),
        "missing deadline counter:\n{rendered}"
    );
}

/// The health plane opts out of deadline enforcement end to end: both
/// `GET /vm/health` and `GET /fleet/status` answer a request whose
/// `x-vnfguard-deadline` budget is already exhausted. An incident is
/// exactly when those surfaces get read, and an incident is exactly when
/// caller budgets are all burned.
#[test]
fn health_surfaces_ignore_exhausted_deadlines() {
    let mut tb = TestbedBuilder::new(b"overload health optout")
        .durable()
        .replicas(1)
        .admission_config(tight_admission())
        .health()
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-health", 1).unwrap();
    tb.enroll(0, &guard).unwrap();

    let network = tb.network.clone();
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(std::mem::replace(
        &mut tb.ias,
        vnfguard_ias::AttestationService::new(b"placeholder"),
    )));
    let _api = serve_vm_api(&network, "vm:8443", tb.vm_service(), ias, "controller").unwrap();
    let (monitor, _standby_health) = tb.fleet_monitor("operator", "vm:8443").unwrap();
    let _fleet =
        serve_fleet_api(&network, "fleet:9443", Arc::new(Mutex::new(monitor))).unwrap();

    // Dead budget straight at the VM's health surface → still a full 200.
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());
    let response = client
        .request(&Request::get("/vm/health").with_header(DEADLINE_HEADER, "0"))
        .unwrap();
    assert!(response.status.is_success(), "{:?}", response.status);
    let body = response.parse_json().unwrap();
    let alerts = body
        .get("alerts")
        .and_then(Json::as_array)
        .expect("health body carries the alert list");
    assert!(!alerts.is_empty(), "default SLO set evaluates to alerts");
    assert!(body.get("shards").and_then(Json::as_array).is_some());

    // Same contract one layer up, on the fleet cockpit (which scrapes the
    // VM and the standby endpoint underneath this request).
    let mut client = HttpClient::new(network.connect("fleet:9443").unwrap());
    let response = client
        .request(&Request::get("/fleet/status").with_header(DEADLINE_HEADER, "0"))
        .unwrap();
    assert!(response.status.is_success(), "{:?}", response.status);
    let body = response.parse_json().unwrap();
    assert_eq!(body.get("stale_nodes").and_then(Json::as_i64), Some(0));
    let nodes = body.get("nodes").and_then(Json::as_array).unwrap();
    assert_eq!(nodes.len(), 2, "primary + one standby: {body:?}");
    assert!(nodes
        .iter()
        .all(|n| n.get("reachable").and_then(Json::as_bool) == Some(true)));

    // The ASCII cockpit answers under the same dead budget.
    let response = client
        .request(
            &Request::get("/fleet/status?format=ascii").with_header(DEADLINE_HEADER, "0"),
        )
        .unwrap();
    assert!(response.status.is_success());
    let text = String::from_utf8(response.body.clone()).unwrap();
    assert!(text.contains("fleet cockpit"), "{text}");
}

/// Manager-side renewal backoff: a refused serial disappears from the
/// renewal sweep until its jittered next-attempt instant, reappears after,
/// always reappears once expired, and is wiped by a successful renewal.
#[test]
fn refused_renewals_back_off_until_their_jittered_retry() {
    let mut tb = TestbedBuilder::new(b"overload renewal backoff")
        .renewal_window(6 * 3600)
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-backoff", 1).unwrap();
    let cert = tb.enroll(0, &guard).unwrap();

    // Walk into the renewal window: the serial is due.
    tb.clock.advance(20 * 3600);
    let due: Vec<u64> = tb.vm.certs_expiring().iter().map(|d| d.serial).collect();
    assert!(due.contains(&cert.serial()));

    // Refuse it: hidden from the sweep while the backoff runs.
    tb.vm.note_renewal_refused(cert.serial(), 5);
    let until = tb.vm.renewal_backoff_until(cert.serial()).unwrap();
    let now = tb.clock.now();
    assert!(until > now && until <= now + 10, "first backoff ~5s: {until}");
    assert!(!tb
        .vm
        .certs_expiring()
        .iter()
        .any(|d| d.serial == cert.serial()));

    // A second refusal doubles the bound (still jittered).
    tb.vm.note_renewal_refused(cert.serial(), 5);
    let until = tb.vm.renewal_backoff_until(cert.serial()).unwrap();
    assert!(until <= tb.clock.now() + 20);

    // Past the backoff, the serial is offered again.
    tb.clock.advance(21);
    assert!(tb
        .vm
        .certs_expiring()
        .iter()
        .any(|d| d.serial == cert.serial()));

    // An *expired* credential ignores backoff: correctness over politeness.
    tb.vm.note_renewal_refused(cert.serial(), 3600);
    tb.clock.advance(5 * 3600);
    assert!(tb
        .vm
        .certs_expiring()
        .iter()
        .any(|d| d.serial == cert.serial()));

    // A successful renewal clears the backoff entry. (The host verdict
    // went stale over the hours this test skipped; re-attest first.)
    tb.attest_host(0).unwrap();
    let renewed = tb.renew(&guard, cert.serial()).unwrap();
    assert_ne!(renewed.serial(), cert.serial());
    assert!(tb.vm.renewal_backoff_until(cert.serial()).is_none());
}
