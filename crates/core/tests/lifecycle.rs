//! Credential lifecycle end-to-end: renewal without re-enrollment, CA
//! rotation with a cross-signed dual-trust window, CRL distribution to
//! the controller, and the crash-consistency of all three flows.

use parking_lot::Mutex;
use std::sync::Arc;
use vnfguard_core::crash::CrashPlan;
use vnfguard_core::deployment::TestbedBuilder;
use vnfguard_core::lifecycle::LifecycleMonitor;
use vnfguard_core::remote::serve_vm_api;
use vnfguard_core::CoreError;
use vnfguard_encoding::Json;
use vnfguard_ias::QuoteVerifier;
use vnfguard_net::http::Request;
use vnfguard_net::server::HttpClient;
use vnfguard_pki::crl::RevocationReason;
use vnfguard_pki::RevocationPolicy;

// ---------------------------------------------------------------------------
// Renewal
// ---------------------------------------------------------------------------

#[test]
fn renewal_skips_full_enrollment() {
    // A wide renewal window so the credential is "due" while the host's
    // attestation verdict is still fresh.
    let mut tb = TestbedBuilder::new(b"lifecycle renewal")
        .renewal_window(86_000)
        .build();
    tb.attest_host(0).unwrap();
    let mut guard = tb.deploy_guard(0, "vnf-renew", 1).unwrap();
    let first = tb.enroll(0, &guard).unwrap();

    // The sweep flags the credential once the window opens.
    tb.clock.advance(1000);
    let due = tb.vm.certs_expiring();
    assert_eq!(due.len(), 1);
    assert_eq!(due[0].serial, first.serial());
    assert!(!due[0].expired);

    let attestations_before = tb
        .vm
        .events()
        .iter()
        .filter(|e| e.kind == "vnf_attestation_started")
        .count();

    // Renewal: new certificate, no second six-step enrollment.
    let renewed = tb.renew(&guard, first.serial()).unwrap();
    assert_ne!(renewed.serial(), first.serial());
    assert_eq!(renewed.subject_cn(), "vnf-renew");
    assert_eq!(renewed.tbs.enclave_binding, first.tbs.enclave_binding);

    let events = tb.vm.events();
    let attestations_after = events
        .iter()
        .filter(|e| e.kind == "vnf_attestation_started")
        .count();
    assert_eq!(attestations_before, attestations_after);
    assert!(events.iter().any(|e| e.kind == "credential_renewed"));

    // The guard now holds the renewed credential and sessions work.
    assert_eq!(guard.status().unwrap().serial, renewed.serial());
    let session = tb.open_session(&mut guard).unwrap();
    let response = guard
        .request(session, &Request::get("/wm/core/health/json"))
        .unwrap();
    assert!(response.status.is_success());
}

#[test]
fn renewal_refused_when_host_attestation_stale() {
    let mut tb = TestbedBuilder::new(b"lifecycle stale renewal").build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-stale", 1).unwrap();
    let certificate = tb.enroll(0, &guard).unwrap();

    // Past the host-freshness horizon the lightweight path must refuse:
    // re-issuing to a possibly-compromised host defeats the attestation.
    tb.clock.advance(4000);
    let err = tb.renew(&guard, certificate.serial()).unwrap_err();
    assert!(matches!(err, CoreError::AttestationFailed(_)), "{err}");
    assert!(tb
        .vm
        .events()
        .iter()
        .any(|e| e.kind == "renewal_refused"));

    // A fresh host attestation restores the lightweight path.
    tb.attest_host(0).unwrap();
    let renewed = tb.renew(&guard, certificate.serial()).unwrap();
    assert_ne!(renewed.serial(), certificate.serial());
}

#[test]
fn renewal_of_revoked_credential_refused() {
    let mut tb = TestbedBuilder::new(b"lifecycle revoked renewal").build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-revoked", 1).unwrap();
    let certificate = tb.enroll(0, &guard).unwrap();
    tb.vm
        .revoke_credential(certificate.serial(), RevocationReason::KeyCompromise)
        .unwrap();
    let err = tb.renew(&guard, certificate.serial()).unwrap_err();
    assert!(matches!(err, CoreError::WorkflowViolation(_)), "{err}");
}

#[test]
fn renewal_with_foreign_provisioning_key_refused() {
    let mut tb = TestbedBuilder::new(b"lifecycle key binding").build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-bind", 1).unwrap();
    let certificate = tb.enroll(0, &guard).unwrap();

    // Serials are public (certificates, CRLs), and the host verdict is
    // fresh — yet a renewal wrapped to an attacker-chosen key must be
    // refused: only the provisioning key the enrollment quote bound may
    // receive the successor bundle.
    let controller_cn = tb.controller_cn.clone();
    let err = tb
        .vm
        .renew_vnf_credential(certificate.serial(), &[0x41; 32], &controller_cn)
        .unwrap_err();
    assert!(matches!(err, CoreError::AttestationFailed(_)), "{err}");
    assert!(err.to_string().contains("provisioning key"), "{err}");
    assert!(tb.vm.events().iter().any(|e| e.kind == "renewal_refused"));

    // The enrolled enclave's own key still renews, and the binding is
    // carried forward onto the successor serial.
    let renewed = tb.renew(&guard, certificate.serial()).unwrap();
    assert_ne!(renewed.serial(), certificate.serial());
    let err = tb
        .vm
        .renew_vnf_credential(renewed.serial(), &[0x41; 32], &controller_cn)
        .unwrap_err();
    assert!(matches!(err, CoreError::AttestationFailed(_)), "{err}");
    tb.renew(&guard, renewed.serial()).unwrap();
}

#[test]
fn renewal_key_binding_survives_recovery() {
    let mut tb = TestbedBuilder::new(b"lifecycle key binding crash")
        .durable()
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-bind-r", 1).unwrap();
    let certificate = tb.enroll(0, &guard).unwrap();

    tb.recover_vm().unwrap();
    // Host verdicts do not survive recovery; re-attest so the only thing
    // standing between the attacker and a renewal is the key binding.
    tb.attest_host(0).unwrap();
    let controller_cn = tb.controller_cn.clone();
    let err = tb
        .vm
        .renew_vnf_credential(certificate.serial(), &[0x41; 32], &controller_cn)
        .unwrap_err();
    assert!(err.to_string().contains("provisioning key"), "{err}");
    // The replayed hash still matches the genuine enclave key.
    tb.renew(&guard, certificate.serial()).unwrap();
}

#[test]
fn guard_auto_renews_before_expiry() {
    let mut tb = TestbedBuilder::new(b"lifecycle auto renew").build();
    tb.attest_host(0).unwrap();
    let mut guard = tb.deploy_guard(0, "vnf-auto", 1).unwrap();
    let first = tb.enroll(0, &guard).unwrap();
    let not_after = first.tbs.validity.not_after;

    // Stage the renewed credential while the host verdict is fresh; the
    // guard swaps it in transparently once the window opens.
    tb.clock.advance(1000);
    let key = guard.provisioning_key().unwrap();
    let (wrapped, renewed) = tb
        .vm
        .renew_vnf_credential(first.serial(), &key, &tb.controller_cn.clone())
        .unwrap();
    let renewed_not_after = renewed.tbs.validity.not_after;
    let mut staged = Some((wrapped, renewed_not_after));
    guard.set_auto_renew(
        not_after,
        7200,
        Box::new(move || {
            staged
                .take()
                .ok_or_else(|| vnfguard_vnf::VnfError::Encoding("renewal already consumed".into()))
        }),
    );

    // Before the guard's jittered renewal point: the old credential keeps
    // serving.
    tb.open_session(&mut guard).unwrap();
    assert_eq!(guard.status().unwrap().serial, first.serial());

    // At the jittered point (inside the window, spread per guard so a
    // fleet does not stampede): open_session renews first, then connects.
    let renew_at = guard.renew_at().unwrap();
    assert!(renew_at >= not_after - 7200, "renew_at inside the window");
    assert!(renew_at < not_after, "renew_at before expiry");
    tb.clock.advance(renew_at.saturating_sub(tb.clock.now()));
    tb.open_session(&mut guard).unwrap();
    assert_eq!(guard.status().unwrap().serial, renewed.serial());
    assert_eq!(guard.credential_not_after(), Some(renewed_not_after));
}

#[test]
fn failed_renewal_provision_keeps_auto_renew_armed() {
    let mut tb = TestbedBuilder::new(b"lifecycle renew degrade").build();
    tb.attest_host(0).unwrap();
    let mut guard = tb.deploy_guard(0, "vnf-degrade", 1).unwrap();
    let first = tb.enroll(0, &guard).unwrap();
    let not_after = first.tbs.validity.not_after;

    tb.clock.advance(1000);
    let key = guard.provisioning_key().unwrap();
    let (wrapped, renewed) = tb
        .vm
        .renew_vnf_credential(first.serial(), &key, &tb.controller_cn.clone())
        .unwrap();
    let renewed_not_after = renewed.tbs.validity.not_after;
    // First attempt hands back a bundle the enclave cannot unwrap (the
    // fetch succeeded, provisioning fails); the retry is genuine.
    let mut queue = vec![(wrapped, renewed_not_after), (vec![0u8; 16], renewed_not_after)];
    guard.set_auto_renew(
        not_after,
        7200,
        Box::new(move || {
            queue
                .pop()
                .ok_or_else(|| vnfguard_vnf::VnfError::Encoding("renewals exhausted".into()))
        }),
    );

    // Inside the window the garbage bundle fails to provision — but the
    // still-valid credential keeps serving and the hook stays armed
    // instead of being silently dropped on the error path.
    let renew_at = guard.renew_at().unwrap();
    tb.clock.advance(renew_at.saturating_sub(tb.clock.now()));
    tb.open_session(&mut guard).unwrap();
    assert_eq!(guard.status().unwrap().serial, first.serial());
    assert_eq!(guard.credential_not_after(), Some(not_after));

    // Because the hook survived, the next session retries and swaps in
    // the genuine bundle.
    tb.clock.advance(1);
    tb.open_session(&mut guard).unwrap();
    assert_eq!(guard.status().unwrap().serial, renewed.serial());
    assert_eq!(guard.credential_not_after(), Some(renewed_not_after));
}

// ---------------------------------------------------------------------------
// CA rotation
// ---------------------------------------------------------------------------

#[test]
fn ca_rotation_dual_trust_then_drain() {
    let mut tb = TestbedBuilder::new(b"lifecycle rotation").build();
    tb.attest_host(0).unwrap();
    let mut renewing = tb.deploy_guard(0, "vnf-renewing", 1).unwrap();
    let mut lagging = tb.deploy_guard(0, "vnf-lagging", 1).unwrap();
    let renewing_cert = tb.enroll(0, &renewing).unwrap();
    tb.enroll(0, &lagging).unwrap();

    let old_root = tb.vm.ca_certificate().clone();
    let rotation = tb.rotate_ca().unwrap();
    assert_eq!(rotation.epoch, 1);
    assert_eq!(tb.vm.ca_epoch(), 1);
    assert_eq!(rotation.previous_root.fingerprint(), old_root.fingerprint());
    // The handover is endorsed by the outgoing key, not self-signed.
    assert!(!rotation.cross_signed.is_self_signed());
    rotation
        .cross_signed
        .verify_signature(&old_root.tbs.public_key)
        .unwrap();

    tb.distribute_ca(&rotation).unwrap();

    // Dual-trust window: credentials from BOTH epochs handshake cleanly.
    tb.clock.advance(1);
    tb.open_session(&mut renewing).unwrap();
    tb.open_session(&mut lagging).unwrap();
    let failures_before = tb.controller.handshake_failures();

    // One VNF renews onto the new root mid-window...
    let renewed = tb.renew(&renewing, renewing_cert.serial()).unwrap();
    renewed
        .verify_signature(&rotation.new_root.tbs.public_key)
        .unwrap();
    tb.clock.advance(1);
    tb.open_session(&mut renewing).unwrap();
    // ...while the lagging one still serves from the old epoch.
    tb.open_session(&mut lagging).unwrap();
    assert_eq!(tb.controller.handshake_failures(), failures_before);

    // Drain closes: only the new root remains anchored, so the lagging
    // credential (old epoch, still unexpired) is refused.
    assert_eq!(tb.retire_previous_roots(), 1);
    tb.clock.advance(1);
    tb.open_session(&mut renewing).unwrap();
    assert!(tb.open_session(&mut lagging).is_err());
}

// ---------------------------------------------------------------------------
// CRL distribution + revocation enforcement at the controller
// ---------------------------------------------------------------------------

#[test]
fn monitor_distributes_rotations_and_crls() {
    let mut tb = TestbedBuilder::new(b"lifecycle monitor").build();
    tb.attest_host(0).unwrap();
    let mut guard = tb.deploy_guard(0, "vnf-mon", 1).unwrap();
    let certificate = tb.enroll(0, &guard).unwrap();
    let issuer_cn = tb.vm.ca_certificate().subject_cn().to_string();

    // The monitor maintains the SAME trust store the controller's TLS
    // validator reads — installs propagate to live handshakes.
    let trust = tb
        .controller
        .client_validator()
        .unwrap()
        .trust_store()
        .unwrap();
    let mut monitor = LifecycleMonitor::new(
        tb.network.clone(),
        tb.clock.clone(),
        "vm:8443",
        "controller",
        trust,
        tb.telemetry.clone(),
        &issuer_cn,
    );

    // Publish the VM behind its operator API.
    let network = tb.network.clone();
    let ias = std::mem::replace(&mut tb.ias, vnfguard_ias::AttestationService::new(b"x"));
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(ias));
    let _api = serve_vm_api(&network, "vm:8443", tb.vm_service(), ias, "controller").unwrap();

    // First tick: no rotation yet, CRL number 1 installed.
    let tick = monitor.tick().unwrap();
    assert_eq!(tick.adopted_epoch, None);
    assert_eq!(tick.crl_installed, Some(1));
    assert_eq!(monitor.crl_age(), Some(0));
    tb.clock.advance(1);
    tb.open_session(&mut guard).unwrap();

    // Revoke through the API; the next poll propagates it and the
    // controller refuses the handshake — the revocation gap is closed by
    // DISTRIBUTION, not by the controller asking the VM per-handshake.
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());
    let response = client
        .request(
            &Request::post("/vm/revoke")
                .with_json(&Json::object().with("serial", certificate.serial() as i64)),
        )
        .unwrap();
    assert!(response.status.is_success());
    // Not yet distributed: the stale CRL still admits the credential.
    tb.clock.advance(1);
    tb.open_session(&mut guard).unwrap();

    let tick = monitor.tick().unwrap();
    assert_eq!(tick.crl_installed, Some(2));
    tb.clock.advance(1);
    assert!(tb.open_session(&mut guard).is_err());

    // Polling again without new revocations re-serves number 2: GET
    // /vm/crl is a read, not a fresh issuance per request.
    let tick = monitor.tick().unwrap();
    assert_eq!(tick.crl_installed, Some(2));

    // Rotate through the API; the monitor verifies the cross-signed
    // handover and adopts epoch 1, then retires the old root after drain.
    let response = client.request(&Request::post("/vm/rotate")).unwrap();
    assert!(response.status.is_success(), "{:?}", response.status.code());
    let tick = monitor.tick().unwrap();
    assert_eq!(tick.adopted_epoch, Some(1));
    assert_eq!(monitor.known_epoch(), 1);
    let deadline = monitor.drain_deadline().unwrap();
    tb.clock.set(deadline);
    assert_eq!(monitor.enforce_drain(), 0); // window still open
    tb.clock.set(deadline + 1);
    assert_eq!(monitor.enforce_drain(), 1);
}

#[test]
fn monitor_catches_up_after_missed_rotations() {
    let mut tb = TestbedBuilder::new(b"lifecycle missed rotations").build();
    tb.attest_host(0).unwrap();
    let mut guard = tb.deploy_guard(0, "vnf-lag2", 1).unwrap();
    tb.enroll(0, &guard).unwrap();
    let issuer_cn = tb.vm.ca_certificate().subject_cn().to_string();

    let trust = tb
        .controller
        .client_validator()
        .unwrap()
        .trust_store()
        .unwrap();
    let mut monitor = LifecycleMonitor::new(
        tb.network.clone(),
        tb.clock.clone(),
        "vm:8443",
        "controller",
        trust,
        tb.telemetry.clone(),
        &issuer_cn,
    );
    let network = tb.network.clone();
    let ias = std::mem::replace(&mut tb.ias, vnfguard_ias::AttestationService::new(b"x"));
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(ias));
    let _api = serve_vm_api(&network, "vm:8443", tb.vm_service(), ias, "controller").unwrap();

    monitor.tick().unwrap();
    assert_eq!(monitor.known_epoch(), 0);

    // Two rotations land while the monitor is offline. Epoch 2's handover
    // is endorsed by the epoch-1 key the monitor never learned, so a
    // latest-cross-only endpoint would wedge it forever; the served chain
    // lets it verify every missed handover in order.
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());
    for _ in 0..2 {
        let response = client.request(&Request::post("/vm/rotate")).unwrap();
        assert!(response.status.is_success(), "{:?}", response.status.code());
    }

    let tick = monitor.tick().unwrap();
    assert_eq!(tick.adopted_epoch, Some(2));
    assert_eq!(monitor.known_epoch(), 2);
    // The catch-up CRL is signed by the epoch-2 key anchored moments
    // earlier in the same tick.
    assert_eq!(tick.crl_installed, Some(2));

    // The pre-rotation credential still serves through the drain
    // window...
    tb.clock.advance(1);
    tb.open_session(&mut guard).unwrap();
    // ...and BOTH displaced roots retire together at the deadline.
    let deadline = monitor.drain_deadline().unwrap();
    tb.clock.set(deadline + 1);
    assert_eq!(monitor.enforce_drain(), 2);
    tb.clock.advance(1);
    assert!(tb.open_session(&mut guard).is_err());
}

#[test]
fn crl_reads_serve_cached_list_until_state_changes() {
    let mut tb = TestbedBuilder::new(b"lifecycle crl cache")
        .crl_lifetime(600)
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-crl-cache", 1).unwrap();
    let certificate = tb.enroll(0, &guard).unwrap();

    // The first read mints CRL number 1; repeated polls re-serve the very
    // same bytes instead of journaling a fresh issuance per request.
    let first = tb.vm.latest_crl().unwrap();
    assert_eq!(first.crl_number, 1);
    let second = tb.vm.latest_crl().unwrap();
    assert_eq!(second.encode(), first.encode());

    // A revocation invalidates the cache: exactly one new number, and the
    // fresh list carries the revoked serial.
    tb.vm
        .revoke_credential(certificate.serial(), RevocationReason::KeyCompromise)
        .unwrap();
    let third = tb.vm.latest_crl().unwrap();
    assert_eq!(third.crl_number, 2);
    assert!(third.lookup(certificate.serial()).is_some());
    assert_eq!(tb.vm.latest_crl().unwrap().crl_number, 2);

    // Past next_update the cached list is stale; a fresh one is minted so
    // relying parties never receive an expired CRL.
    tb.clock.advance(700);
    assert_eq!(tb.vm.latest_crl().unwrap().crl_number, 3);
}

#[test]
fn fail_closed_policy_rejects_sessions_on_stale_crl() {
    let mut tb = TestbedBuilder::new(b"lifecycle fail closed")
        .revocation_policy(RevocationPolicy::FailClosed)
        .crl_lifetime(600)
        .build();
    tb.attest_host(0).unwrap();
    let mut guard = tb.deploy_guard(0, "vnf-fc", 1).unwrap();
    tb.enroll(0, &guard).unwrap();

    tb.push_crl().unwrap();
    tb.clock.advance(1);
    tb.open_session(&mut guard).unwrap();

    // Past next_update the fail-closed store treats every credential as
    // unverifiable rather than silently admitting it.
    tb.clock.advance(700);
    assert!(tb.open_session(&mut guard).is_err());

    // A fresh CRL restores service.
    tb.push_crl().unwrap();
    tb.clock.advance(1);
    tb.open_session(&mut guard).unwrap();
}

#[test]
fn fail_open_policy_tolerates_stale_crl() {
    let mut tb = TestbedBuilder::new(b"lifecycle fail open")
        .crl_lifetime(600)
        .build();
    tb.attest_host(0).unwrap();
    let mut guard = tb.deploy_guard(0, "vnf-fo", 1).unwrap();
    tb.enroll(0, &guard).unwrap();
    tb.push_crl().unwrap();
    tb.clock.advance(700);
    tb.open_session(&mut guard).unwrap();
}

// ---------------------------------------------------------------------------
// Crash consistency
// ---------------------------------------------------------------------------

#[test]
fn crash_at_rotation_commit_recovers_to_exactly_the_new_root() {
    // Twin deployments from the same seed: one rotates cleanly, the other
    // crashes at the commit point and recovers. Both must land on the SAME
    // root — the journaled rotation replays byte-identically.
    let mut clean = TestbedBuilder::new(b"lifecycle rotation crash")
        .durable()
        .build();
    let clean_rotation = clean.rotate_ca().unwrap();

    let plan = CrashPlan::seeded(41);
    plan.crash_once("rotation.commit");
    let mut tb = TestbedBuilder::new(b"lifecycle rotation crash")
        .durable()
        .crash_plan(plan)
        .build();
    let err = tb.rotate_ca().unwrap_err();
    assert!(matches!(err, CoreError::VmCrashed(ref site) if site == "rotation.commit"));

    let report = tb.recover_vm().unwrap();
    assert_eq!(report.rotations_restored, 1);
    assert!(!report.rotation_rolled_back);
    assert_eq!(tb.vm.ca_epoch(), 1);
    assert_eq!(
        tb.vm.ca_certificate().encode(),
        clean_rotation.new_root.encode(),
        "recovered incarnation must converge on the committed root"
    );
    assert!(tb.vm.ca_cross_signed().is_some());

    // The fleet continues under the one consistent root: a post-recovery
    // enrollment chains to it.
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-post", 1).unwrap();
    let certificate = tb.enroll(0, &guard).unwrap();
    certificate
        .verify_signature(&tb.vm.ca_certificate().tbs.public_key)
        .unwrap();
}

#[test]
fn crash_at_rotation_prepare_rolls_back() {
    let plan = CrashPlan::seeded(42);
    plan.crash_once("rotation.prepare");
    let mut tb = TestbedBuilder::new(b"lifecycle prepare crash")
        .durable()
        .crash_plan(plan)
        .build();
    let before = tb.vm.ca_certificate().clone();
    let err = tb.rotate_ca().unwrap_err();
    assert!(matches!(err, CoreError::VmCrashed(ref site) if site == "rotation.prepare"));

    let report = tb.recover_vm().unwrap();
    assert!(report.rotation_rolled_back);
    assert_eq!(report.rotations_restored, 0);
    assert_eq!(tb.vm.ca_epoch(), 0);
    assert_eq!(tb.vm.ca_certificate().encode(), before.encode());

    // The rollback leaves the manager ready to rotate again.
    let rotation = tb.rotate_ca().unwrap();
    assert_eq!(rotation.epoch, 1);
    assert_eq!(tb.vm.ca_epoch(), 1);
}

#[test]
fn crl_number_stays_monotonic_across_crash() {
    let plan = CrashPlan::seeded(43);
    plan.crash_once("crl.issue");
    let mut tb = TestbedBuilder::new(b"lifecycle crl crash")
        .durable()
        .crash_plan(plan)
        .build();

    // The crash strikes after the CrlIssued record hits the WAL: number 1
    // is burned even though no CRL was returned.
    let err = tb.push_crl().unwrap_err();
    assert!(matches!(err, CoreError::VmCrashed(ref site) if site == "crl.issue"));

    tb.recover_vm().unwrap();
    let crl = tb.vm.issue_crl().unwrap();
    assert_eq!(
        crl.crl_number, 2,
        "recovered issuer must not reuse the journaled CRL number"
    );
}
