//! The complete Figure-1 workflow and the §5 threat-model matrix.

use vnfguard_container::image::ImageBuilder;
use vnfguard_controller::SecurityMode;
use vnfguard_core::deployment::{TestbedBuilder, ValidationModel};
use vnfguard_core::CoreError;
use vnfguard_encoding::Json;
use vnfguard_ima::appraisal::Verdict;
use vnfguard_net::http::Request;
use vnfguard_pki::crl::RevocationReason;
use vnfguard_vnf::credential_enclave::CredentialEnclave;

#[test]
fn figure1_workflow_end_to_end() {
    let mut testbed = TestbedBuilder::new(b"workflow e2e").build();

    // Steps 1-2: host attestation.
    let verdict = testbed.attest_host(0).unwrap();
    assert_eq!(verdict, Verdict::Trusted);

    // Deploy the VNF container and its credential enclave.
    let image = ImageBuilder::new("vnf-firewall", "1.0")
        .layer(b"fw rootfs")
        .entrypoint(b"fw binary")
        .enclave_image(&CredentialEnclave::image_for("vnf-fw", 1))
        .build();
    testbed.registry.push(image.clone());
    let pulled = testbed.registry.pull("vnf-firewall:1.0").unwrap();
    // Container measurements must be re-attested after deployment.
    testbed.deploy_container(0, &pulled, &pulled).unwrap();
    assert_eq!(testbed.attest_host(0).unwrap(), Verdict::Trusted);

    let mut guard = testbed.deploy_guard(0, "vnf-fw", 1).unwrap();

    // Steps 3-5: VNF attestation + credential provisioning.
    let certificate = testbed.enroll(0, &guard).unwrap();
    assert_eq!(certificate.subject_cn(), "vnf-fw");
    assert_eq!(
        certificate.tbs.enclave_binding,
        Some(*guard.mrenclave().as_bytes())
    );
    assert!(guard.status().unwrap().provisioned);

    // Step 6: mutually-authenticated session to the controller.
    let session = testbed.open_session(&mut guard).unwrap();
    let response = guard
        .request(
            session,
            &Request::post("/wm/core/switch/register").with_json(
                &Json::object()
                    .with("dpid", "0000000000000001")
                    .with("ports", vec![Json::from(1i64)]),
            ),
        )
        .unwrap();
    assert!(response.status.is_success());

    // The controller audit shows the CA-authenticated VNF identity.
    let audit = guard
        .request(session, &Request::get("/wm/core/audit/json"))
        .unwrap()
        .parse_json()
        .unwrap();
    assert!(audit
        .as_array()
        .unwrap()
        .iter()
        .any(|e| e.get("peer").and_then(Json::as_str) == Some("vnf-fw")));

    // The VM recorded the full workflow.
    let events = testbed.vm.events();
    let kinds: Vec<&str> = events.iter().map(|e| e.kind.as_str()).collect();
    for expected in [
        "host_attestation_started",
        "host_attested",
        "vnf_attestation_started",
        "vnf_enrolled",
    ] {
        assert!(kinds.contains(&expected), "missing event {expected}");
    }
}

#[test]
fn use_case_1_tampered_vnf_image_detected() {
    // §3 use case 1: integrity attestation of a VNF.
    let mut testbed = TestbedBuilder::new(b"tampered image").build();
    testbed.attest_host(0).unwrap();

    let clean = ImageBuilder::new("vnf", "1.0")
        .layer(b"rootfs")
        .entrypoint(b"vnf binary")
        .build();
    let trojaned = ImageBuilder::new("vnf", "1.0")
        .layer(b"rootfs")
        .entrypoint(b"vnf binary + implant")
        .build();
    // The orchestrator *believes* the clean image is deployed; the host
    // actually runs the trojaned one.
    testbed.deploy_container(0, &clean, &trojaned).unwrap();

    // Re-attestation flags the mismatch and the host loses trust.
    let verdict = testbed.attest_host(0).unwrap();
    assert_eq!(verdict, Verdict::Mismatch);

    // Enrollment of any VNF on this host is now refused.
    let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    let err = testbed.enroll(0, &guard).unwrap_err();
    assert!(matches!(err, CoreError::WorkflowViolation(_)), "{err}");
}

#[test]
fn tampered_credential_enclave_refused() {
    let mut testbed = TestbedBuilder::new(b"tampered enclave").build();
    testbed.attest_host(0).unwrap();

    // An attacker ships their own enclave image (not whitelisted).
    let guard = testbed
        .deploy_guard_unlisted(0, "evil-vnf", b"backdoored credential enclave")
        .unwrap();
    let err = testbed.enroll(0, &guard).unwrap_err();
    assert!(
        matches!(err, CoreError::AttestationFailed(ref msg) if msg.contains("not whitelisted")),
        "{err}"
    );
    // No credentials were provisioned.
    assert!(!guard.status().unwrap().provisioned);
}

#[test]
fn compromised_host_runtime_blocks_enrollment() {
    let mut testbed = TestbedBuilder::new(b"compromised host").build();
    testbed.attest_host(0).unwrap();
    let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();

    // Container-escape: the docker daemon is replaced by a rootkit build.
    testbed.hosts[0]
        .container_host
        .compromise_runtime(b"docker daemon 1.12.2 + rootkit");

    // The next host attestation detects it...
    assert_eq!(testbed.attest_host(0).unwrap(), Verdict::Mismatch);
    // ...and enrollment on this host is refused.
    assert!(testbed.enroll(0, &guard).is_err());
}

#[test]
fn revoked_platform_attestation_key_blocks_host() {
    let mut testbed = TestbedBuilder::new(b"sigrl").build();
    // The platform's EPID member key lands on the SigRL (e.g. the key was
    // extracted and Intel revoked it).
    let member_id = testbed.hosts[0].platform.quoting_enclave().member_id();
    let gid = testbed.hosts[0].platform.epid_group_id();
    testbed.ias.revoke_member(gid, member_id);

    let err = testbed.attest_host(0).unwrap_err();
    assert!(
        matches!(err, CoreError::AttestationFailed(ref msg) if msg.contains("SIGRL")),
        "{err}"
    );
}

#[test]
fn enrollment_requires_prior_host_attestation() {
    let mut testbed = TestbedBuilder::new(b"ordering").build();
    // Skipping steps 1-2 entirely: step 3 must refuse.
    let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    let err = testbed.enroll(0, &guard).unwrap_err();
    assert!(matches!(err, CoreError::WorkflowViolation(_)));
}

#[test]
fn host_attestation_goes_stale() {
    let mut testbed = TestbedBuilder::new(b"staleness").build();
    testbed.attest_host(0).unwrap();
    let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    // Advance past the freshness horizon (default 3600s).
    testbed.clock.advance(4000);
    let err = testbed.enroll(0, &guard).unwrap_err();
    assert!(matches!(err, CoreError::WorkflowViolation(_)));
    // Re-attesting restores enrollment.
    testbed.attest_host(0).unwrap();
    testbed.enroll(0, &guard).unwrap();
}

#[test]
fn use_case_2_revocation_evicts_vnf() {
    let mut testbed = TestbedBuilder::new(b"revocation").build();
    testbed.attest_host(0).unwrap();
    let mut guard = testbed.deploy_guard(0, "vnf-1", 1).unwrap();
    let certificate = testbed.enroll(0, &guard).unwrap();

    // Working session before revocation.
    let session = testbed.open_session(&mut guard).unwrap();
    let ok = guard
        .request(session, &Request::get("/wm/core/health/json"))
        .unwrap();
    assert!(ok.status.is_success());

    // Revoke and distribute the CRL to the controller.
    testbed
        .vm
        .revoke_credential(certificate.serial(), RevocationReason::KeyCompromise)
        .unwrap();
    testbed.push_crl().unwrap();

    // New sessions are refused at the handshake.
    testbed.clock.advance(1);
    assert!(testbed.open_session(&mut guard).is_err());
}

#[test]
fn host_wide_revocation() {
    let mut testbed = TestbedBuilder::new(b"host revocation").hosts(2).build();
    testbed.attest_host(0).unwrap();
    testbed.attest_host(1).unwrap();
    let g0 = testbed.deploy_guard(0, "vnf-a", 1).unwrap();
    let g1 = testbed.deploy_guard(0, "vnf-b", 1).unwrap();
    let mut g2 = testbed.deploy_guard(1, "vnf-c", 1).unwrap();
    testbed.enroll(0, &g0).unwrap();
    testbed.enroll(0, &g1).unwrap();
    testbed.enroll(1, &g2).unwrap();

    // Host 0 is found compromised: evict everything on it.
    let revoked = testbed.vm.revoke_host("host-0");
    assert_eq!(revoked, 2);
    testbed.push_crl().unwrap();

    // VNFs on host 1 are unaffected.
    testbed.clock.advance(1);
    testbed.open_session(&mut g2).unwrap();
    // Enrollment on host 0 is refused (trust cleared).
    assert!(testbed.enroll(0, &g0).is_err());
}

#[test]
fn plain_http_leaks_what_tls_protects() {
    // The §1 eavesdropping threat, demonstrated both ways.
    let http_bed = TestbedBuilder::new(b"http leak")
        .mode(SecurityMode::Http)
        .build();
    let tap = http_bed.network.tap(&http_bed.controller_addr);
    let mut client = vnfguard_controller::NorthboundClient::connect_plain(
        &http_bed.network,
        &http_bed.controller_addr,
    )
    .unwrap();
    let secret_flow = Json::object()
        .with("dpid", "00000000000000ff")
        .with("ports", vec![Json::from(1i64)]);
    client
        .request(&Request::post("/wm/core/switch/register").with_json(&secret_flow))
        .unwrap();
    // The eavesdropper sees the API payload in clear.
    assert!(tap.contains(b"00000000000000ff"));

    // Same action through the enclave TLS path: ciphertext only.
    let mut tls_bed = TestbedBuilder::new(b"tls no leak").build();
    let tls_tap = tls_bed.network.tap(&tls_bed.controller_addr);
    tls_bed.attest_host(0).unwrap();
    let mut guard = tls_bed.deploy_guard(0, "vnf", 1).unwrap();
    tls_bed.enroll(0, &guard).unwrap();
    let session = tls_bed.open_session(&mut guard).unwrap();
    guard
        .request(
            session,
            &Request::post("/wm/core/switch/register").with_json(&secret_flow),
        )
        .unwrap();
    assert!(!tls_tap.contains(b"00000000000000ff"));
    assert!(tls_tap.frame_count() > 0);
}

#[test]
fn keystore_validation_model_works_but_requires_maintenance() {
    let mut testbed = TestbedBuilder::new(b"keystore model")
        .validation(ValidationModel::Keystore)
        .build();
    testbed.attest_host(0).unwrap();
    let mut guard = testbed.deploy_guard(0, "vnf-ks", 1).unwrap();
    testbed.enroll(0, &guard).unwrap();
    // Enrollment updated the keystore, so the session works.
    let session = testbed.open_session(&mut guard).unwrap();
    let response = guard
        .request(session, &Request::get("/wm/core/health/json"))
        .unwrap();
    assert!(response.status.is_success());

    // Simulate the maintenance failure the paper highlights: the keystore
    // entry is dropped (e.g. a restore from stale state) — the same valid,
    // unexpired, CA-signed certificate is now refused.
    if let Some(validator) = testbed.controller.client_validator() {
        validator.key_store().unwrap().write().remove("vnf-ks");
    }
    assert!(testbed.open_session(&mut guard).is_err());
}

#[test]
fn tpm_extension_defeats_iml_rewrite() {
    // §4 future work: with the TPM anchoring the aggregate, a root-level
    // list rewrite is caught even though the rewritten list is
    // self-consistent.
    let mut testbed = TestbedBuilder::new(b"tpm").with_tpm().build();
    assert_eq!(testbed.attest_host(0).unwrap(), Verdict::Trusted);

    // Compromise the runtime, then "clean" the list by rebooting the host
    // record keeping (rewriting history) — but the TPM remembers.
    testbed.hosts[0]
        .container_host
        .compromise_runtime(b"docker daemon 1.12.2 + rootkit");
    testbed.hosts[0].sync_tpm(); // kernel extended the PCR at exec time

    // The adversary fabricates a clean host state for the next attestation
    // by replacing the container host (fresh, consistent IML)...
    testbed.hosts[0].container_host =
        vnfguard_container::host::ContainerHost::standard("host-0");
    // ...but cannot rewind the TPM. Attestation fails on the divergence.
    let err = testbed.attest_host(0).unwrap_err();
    assert!(
        matches!(err, CoreError::AttestationFailed(ref msg) if msg.contains("TPM")),
        "{err}"
    );
}

#[test]
fn without_tpm_iml_rewrite_succeeds() {
    // The same attack as above against a TPM-less deployment documents the
    // §4 limitation: it goes undetected.
    let mut testbed = TestbedBuilder::new(b"no tpm").build();
    assert_eq!(testbed.attest_host(0).unwrap(), Verdict::Trusted);
    testbed.hosts[0]
        .container_host
        .compromise_runtime(b"docker daemon 1.12.2 + rootkit");
    testbed.hosts[0].container_host =
        vnfguard_container::host::ContainerHost::standard("host-0");
    // The fabricated list passes appraisal — the gap the TPM extension closes.
    assert_eq!(testbed.attest_host(0).unwrap(), Verdict::Trusted);
}

#[test]
fn stale_challenge_rejected() {
    let mut testbed = TestbedBuilder::new(b"challenge expiry").build();
    let host_id = testbed.hosts[0].id.clone();
    let challenge = testbed
        .vm
        .begin_host_attestation(&host_id);
    // Evidence prepared but presented after the challenge lifetime.
    let iml = testbed.hosts[0].container_host.measurement_list().encode();
    let evidence = vnfguard_core::attestation::host_evidence(
        &testbed.hosts[0].platform,
        &testbed.hosts[0].integrity_enclave,
        &iml,
        &challenge.nonce,
        None,
    )
    .unwrap();
    testbed.clock.advance(301);
    let err = testbed
        .vm
        .complete_host_attestation(&mut testbed.ias, challenge.id, &evidence)
        .unwrap_err();
    assert!(matches!(err, CoreError::BadChallenge(_)));
}

#[test]
fn quote_replay_with_wrong_nonce_rejected() {
    let mut testbed = TestbedBuilder::new(b"replay").build();
    let host_id = testbed.hosts[0].id.clone();
    // Attacker records evidence for challenge A...
    let challenge_a = testbed
        .vm
        .begin_host_attestation(&host_id);
    let iml = testbed.hosts[0].container_host.measurement_list().encode();
    let evidence = vnfguard_core::attestation::host_evidence(
        &testbed.hosts[0].platform,
        &testbed.hosts[0].integrity_enclave,
        &iml,
        &challenge_a.nonce,
        None,
    )
    .unwrap();
    // ...and replays it against challenge B.
    let challenge_b = testbed
        .vm
        .begin_host_attestation(&host_id);
    let err = testbed
        .vm
        .complete_host_attestation(&mut testbed.ias, challenge_b.id, &evidence)
        .unwrap_err();
    assert!(matches!(err, CoreError::AttestationFailed(_)), "{err}");
}
