//! Verification Manager policy behavior: TCB policies, challenge
//! lifecycle, HMAC authentication, and record keeping.

use vnfguard_core::deployment::TestbedBuilder;
use vnfguard_core::manager::{ManagerConfig, TcbPolicy, VerificationManager};
use vnfguard_core::CoreError;
use vnfguard_ias::GroupStatus;

#[test]
fn strict_tcb_policy_rejects_out_of_date_platforms() {
    let mut testbed = TestbedBuilder::new(b"tcb strict")
        .tcb_policy(TcbPolicy::Strict)
        .build();
    // Raise the TCB baseline above the platform's QE SVN (2).
    let gid = testbed.hosts[0].platform.epid_group_id();
    testbed.ias.set_tcb_baseline(gid, 5);
    testbed.ias.add_advisory(gid, "INTEL-SA-00161");
    let err = testbed.attest_host(0).unwrap_err();
    assert!(
        matches!(err, CoreError::AttestationFailed(ref msg) if msg.contains("OUT_OF_DATE")),
        "{err}"
    );
}

#[test]
fn lenient_tcb_policy_tolerates_out_of_date_platforms() {
    let mut testbed = TestbedBuilder::new(b"tcb lenient")
        .tcb_policy(TcbPolicy::Lenient)
        .build();
    let gid = testbed.hosts[0].platform.epid_group_id();
    testbed.ias.set_tcb_baseline(gid, 5);
    // Lenient policy accepts GROUP_OUT_OF_DATE and continues the workflow.
    let verdict = testbed.attest_host(0).unwrap();
    assert!(verdict.is_trusted());
    let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    testbed.enroll(0, &guard).unwrap();
}

#[test]
fn group_status_changes_propagate() {
    let mut testbed = TestbedBuilder::new(b"group status").build();
    testbed.attest_host(0).unwrap();
    let gid = testbed.hosts[0].platform.epid_group_id();
    testbed.ias.set_group_status(gid, GroupStatus::Revoked);
    assert!(testbed.attest_host(0).is_err());
    testbed.ias.set_group_status(gid, GroupStatus::Ok);
    testbed.attest_host(0).unwrap();
}

#[test]
fn challenges_are_single_use() {
    let mut testbed = TestbedBuilder::new(b"challenge reuse").build();
    let host_id = testbed.hosts[0].id.clone();
    let challenge = testbed
        .vm
        .begin_host_attestation(&host_id);
    let iml = testbed.hosts[0].container_host.measurement_list().encode();
    let evidence = vnfguard_core::attestation::host_evidence(
        &testbed.hosts[0].platform,
        &testbed.hosts[0].integrity_enclave,
        &iml,
        &challenge.nonce,
        None,
    )
    .unwrap();
    // First presentation succeeds.
    testbed
        .vm
        .complete_host_attestation(&mut testbed.ias, challenge.id, &evidence)
        .unwrap();
    // The same challenge id is consumed: replaying the exchange fails.
    let err = testbed
        .vm
        .complete_host_attestation(&mut testbed.ias, challenge.id, &evidence)
        .unwrap_err();
    assert!(matches!(err, CoreError::BadChallenge(_)));
}

#[test]
fn host_challenge_cannot_complete_vnf_enrollment() {
    let mut testbed = TestbedBuilder::new(b"challenge kind").build();
    testbed.attest_host(0).unwrap();
    let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    let host_id = testbed.hosts[0].id.clone();
    // A *host* challenge presented to the VNF-enrollment endpoint.
    let challenge = testbed
        .vm
        .begin_host_attestation(&host_id);
    let prov = guard.provisioning_key().unwrap();
    let quote = guard
        .quote(&testbed.hosts[0].platform, &challenge.nonce, challenge.nonce)
        .unwrap();
    let err = testbed
        .vm
        .complete_vnf_enrollment(
            &mut testbed.ias,
            challenge.id,
            &quote.encode(),
            &prov,
            "controller",
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::BadChallenge(_)));
}

#[test]
fn hmac_tags_authenticate_vm_messages() {
    let vm_a = VerificationManager::new(ManagerConfig::default(), b"seed-a");
    let vm_b = VerificationManager::new(ManagerConfig::default(), b"seed-b");
    let tag = vm_a.hmac_tag(b"revoke vnf-7");
    assert_eq!(tag, vm_a.hmac_tag(b"revoke vnf-7"));
    assert_ne!(tag, vm_a.hmac_tag(b"revoke vnf-8"));
    assert_ne!(tag, vm_b.hmac_tag(b"revoke vnf-7"));
}

#[test]
fn enrollment_records_track_revocation_state() {
    let mut testbed = TestbedBuilder::new(b"records").build();
    testbed.attest_host(0).unwrap();
    let guard = testbed.deploy_guard(0, "vnf-r", 1).unwrap();
    let cert = testbed.enroll(0, &guard).unwrap();
    let record = testbed
        .vm
        .enrollments()
        .find(|e| e.serial == cert.serial())
        .unwrap()
        .clone();
    assert_eq!(record.vnf_name, "vnf-r");
    assert_eq!(record.host_id, "host-0");
    assert!(!record.revoked);
    assert_eq!(record.mrenclave, guard.mrenclave());

    testbed
        .vm
        .revoke_credential(cert.serial(), vnfguard_pki::crl::RevocationReason::Superseded)
        .unwrap();
    assert!(testbed
        .vm
        .enrollments()
        .find(|e| e.serial == cert.serial())
        .unwrap()
        .revoked);
    // Revoking an unknown serial is a workflow violation.
    assert!(matches!(
        testbed
            .vm
            .revoke_credential(99_999, vnfguard_pki::crl::RevocationReason::Unspecified),
        Err(CoreError::WorkflowViolation(_))
    ));
}

#[test]
fn require_tpm_refuses_hosts_without_quotes() {
    // A TPM-requiring deployment where the host omits the TPM quote.
    let mut testbed = TestbedBuilder::new(b"tpm required").with_tpm().build();
    let host_id = testbed.hosts[0].id.clone();
    let challenge = testbed
        .vm
        .begin_host_attestation(&host_id);
    testbed.hosts[0].sync_tpm();
    let iml = testbed.hosts[0].container_host.measurement_list().encode();
    let evidence = vnfguard_core::attestation::host_evidence(
        &testbed.hosts[0].platform,
        &testbed.hosts[0].integrity_enclave,
        &iml,
        &challenge.nonce,
        None, // no TPM quote despite the policy
    )
    .unwrap();
    let err = testbed
        .vm
        .complete_host_attestation(&mut testbed.ias, challenge.id, &evidence)
        .unwrap_err();
    assert!(
        matches!(err, CoreError::AttestationFailed(ref msg) if msg.contains("TPM")),
        "{err}"
    );
}
