//! # vnfguard-telemetry
//!
//! Zero-dependency observability substrate for the deployment: counters,
//! gauges and log-bucketed latency histograms in a [`MetricsRegistry`],
//! hierarchical spans in a [`Tracer`], and a ring-buffered structured
//! [`Journal`] of audit events — bundled behind one clonable [`Telemetry`]
//! handle that every crate in the workspace can thread through its hot
//! paths.
//!
//! Design rules:
//!
//! - **Two time bases.** Event timestamps come from the deployment's
//!   simulated clock (callers pass unix seconds), so the audit timeline is
//!   deterministic and replayable. Latency measurements use the monotonic
//!   wall clock (`std::time::Instant`) internally, because simulated time
//!   does not advance while code executes.
//! - **Cheap when off.** [`Telemetry::disabled`] returns a handle whose
//!   spans and journal writes are no-ops and whose counters are detached
//!   from any registry; the enrollment-path overhead of the enabled mode is
//!   measured by the `e10_observability` bench and must stay under 5%.
//! - **Shared by clone.** All types are `Arc`-backed; clones observe the
//!   same state, mirroring how `SimClock` and `Network` behave elsewhere
//!   in the workspace.
//!
//! Metric naming convention: `vnfguard_<crate>_<name>`, with `_total` for
//! counters and `_micros` for latency histograms (see DESIGN.md
//! §Observability).

pub mod health;
pub mod journal;
pub mod metrics;
pub mod spans;
pub mod trace;

pub use health::{AlertSnapshot, AlertState, HealthMonitor, SloKind, SloSpec};
pub use journal::{Event, Journal};
pub use metrics::{
    labeled, Counter, Exemplar, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    EXEMPLAR_CAP,
};
pub use spans::{SpanGuard, SpanRecord, Tracer};
pub use trace::{Annotation, TraceCollector, TraceContext, TraceIds, TraceSpan, TraceSummary};

/// One observability handle bundling metrics, spans and the event journal.
///
/// Cloning shares the underlying state. Constructed enabled by
/// [`Telemetry::new`] (or `Default`); [`Telemetry::disabled`] yields a
/// no-op handle for overhead baselines.
#[derive(Clone)]
pub struct Telemetry {
    enabled: bool,
    metrics: MetricsRegistry,
    tracer: Tracer,
    journal: Journal,
    traces: TraceCollector,
    trace_ids: TraceIds,
}

impl Telemetry {
    /// An enabled telemetry bundle with default capacities.
    pub fn new() -> Telemetry {
        Telemetry {
            enabled: true,
            metrics: MetricsRegistry::default(),
            tracer: Tracer::default(),
            journal: Journal::default(),
            traces: TraceCollector::default(),
            trace_ids: TraceIds::default(),
        }
    }

    /// A disabled bundle: spans and journal writes are no-ops, counters and
    /// histograms are detached from the registry (atomic bumps on dead
    /// storage). Used to measure instrumentation overhead.
    pub fn disabled() -> Telemetry {
        Telemetry {
            enabled: false,
            ..Telemetry::new()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The metrics registry backing this handle.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span tracer backing this handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The structured event journal backing this handle.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The distributed-trace collector backing this handle.
    pub fn traces(&self) -> &TraceCollector {
        &self.traces
    }

    /// The seeded trace/span id generator backing this handle.
    pub fn trace_ids(&self) -> &TraceIds {
        &self.trace_ids
    }

    /// Reseed the trace/span id generator (the deployment builder derives
    /// this from its HMAC-DRBG so ids are deterministic per testbed seed).
    pub fn seed_trace_ids(&self, seed: u64) {
        self.trace_ids.seed(seed);
    }

    /// Set the head-based sampling rate for new trace roots.
    pub fn set_trace_sampling(&self, rate: f64) {
        self.trace_ids.set_sample_rate(rate);
    }

    /// Get-or-register a counter. Disabled handles return a detached
    /// counter that never appears in the rendered exposition.
    pub fn counter(&self, name: &str) -> Counter {
        if self.enabled {
            self.metrics.counter(name)
        } else {
            Counter::detached()
        }
    }

    /// Get-or-register a gauge (detached when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        if self.enabled {
            self.metrics.gauge(name)
        } else {
            Gauge::detached()
        }
    }

    /// Get-or-register a histogram (detached when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        if self.enabled {
            self.metrics.histogram(name)
        } else {
            Histogram::detached()
        }
    }

    /// Open a span; it closes (and records its duration) when the returned
    /// guard drops. `unix_now` stamps the span's position on the simulated
    /// timeline; the duration itself is wall-clock microseconds.
    pub fn span(&self, name: &str, unix_now: u64) -> SpanGuard {
        if self.enabled {
            self.tracer.start(name, unix_now)
        } else {
            SpanGuard::noop()
        }
    }

    /// Append a structured event to the journal; returns its sequence
    /// number (0 when disabled).
    pub fn event(&self, time: u64, kind: &str, detail: &str) -> u64 {
        if self.enabled {
            self.journal.record(time, kind, detail)
        } else {
            0
        }
    }

    /// Start a new distributed trace: draws a fresh trace id, makes the
    /// head-based sampling decision, and opens the root span (named `name`,
    /// attributed to `service`). Returns the context to propagate plus the
    /// root's guard. Disabled handles return an invalid context and a noop
    /// guard.
    pub fn trace_root(&self, service: &str, name: &str, unix_now: u64) -> (TraceContext, SpanGuard) {
        if !self.enabled {
            return (TraceContext::disabled(), SpanGuard::noop());
        }
        let ctx = TraceContext {
            trace_id: self.trace_ids.next_trace_id(),
            span_id: self.trace_ids.next_span_id(),
            parent_id: None,
            sampled: self.trace_ids.decide_sampled(),
        };
        let guard = self.open_trace_span(&ctx, service, name, unix_now);
        (ctx, guard)
    }

    /// Open a span as a child of `parent` within the same trace. When the
    /// parent is not recording (invalid, unsampled, or disabled telemetry)
    /// the span still lands in the local [`Tracer`] but not in the trace
    /// collector, and the parent context is propagated unchanged.
    pub fn trace_child(
        &self,
        parent: &TraceContext,
        service: &str,
        name: &str,
        unix_now: u64,
    ) -> (TraceContext, SpanGuard) {
        if !self.enabled {
            return (parent.clone(), SpanGuard::noop());
        }
        if !parent.is_recording() {
            return (parent.clone(), self.tracer.start(name, unix_now));
        }
        let ctx = TraceContext {
            trace_id: parent.trace_id,
            span_id: self.trace_ids.next_span_id(),
            parent_id: Some(parent.span_id),
            sampled: true,
        };
        let guard = self.open_trace_span(&ctx, service, name, unix_now);
        (ctx, guard)
    }

    fn open_trace_span(
        &self,
        ctx: &TraceContext,
        service: &str,
        name: &str,
        unix_now: u64,
    ) -> SpanGuard {
        let guard = self.tracer.start(name, unix_now);
        if !ctx.is_recording() {
            return guard;
        }
        guard.with_trace(spans::OpenTraceSpan {
            collector: self.traces.clone(),
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            service: service.to_string(),
            name: name.to_string(),
            started_at: unix_now,
            offset_micros: self.traces.offset_micros(),
        })
    }

    /// Attach an annotation (fault, retry, breaker transition, crash,
    /// recovery, ...) to the span identified by `ctx`. No-op when disabled
    /// or when the context is not recording.
    pub fn trace_annotate(&self, ctx: &TraceContext, time: u64, kind: &str, detail: &str) {
        if self.enabled && ctx.is_recording() {
            self.traces.annotate(ctx.span_id, time, kind, detail);
        }
    }

    /// Render every registered metric in Prometheus text exposition format,
    /// plus the telemetry subsystem's own data-loss counters (journal and
    /// span ring-buffer evictions) so scrape-side can detect observability
    /// data loss.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.metrics.render_prometheus();
        if !self.enabled {
            return out;
        }
        for (name, value) in [
            ("vnfguard_telemetry_journal_dropped_total", self.journal.dropped()),
            ("vnfguard_telemetry_spans_dropped_total", self.tracer.dropped()),
            (
                "vnfguard_telemetry_trace_spans_dropped_total",
                self.traces.dropped(),
            ),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        out
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("journal_len", &self.journal.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_bundle_registers_and_renders() {
        let tele = Telemetry::new();
        tele.counter("vnfguard_test_ops_total").add(3);
        tele.histogram("vnfguard_test_latency_micros").record(100);
        tele.event(1_600_000_000, "test_event", "detail");
        let text = tele.render_prometheus();
        assert!(text.contains("vnfguard_test_ops_total 3"));
        assert!(text.contains("vnfguard_test_latency_micros_count 1"));
        assert_eq!(tele.journal().len(), 1);
    }

    #[test]
    fn disabled_bundle_is_inert() {
        let tele = Telemetry::disabled();
        tele.counter("vnfguard_test_ops_total").add(3);
        {
            let _span = tele.span("invisible", 0);
        }
        tele.event(0, "invisible", "");
        assert_eq!(tele.render_prometheus(), "");
        assert_eq!(tele.journal().len(), 0);
        assert!(tele.tracer().finished().is_empty());
    }

    #[test]
    fn trace_root_and_children_assemble_one_tree() {
        let tele = Telemetry::new();
        let (root, root_guard) = tele.trace_root("operator", "drill", 100);
        assert!(root.is_recording());
        {
            let (child, _guard) = tele.trace_child(&root, "vm", "attest", 101);
            assert_eq!(child.trace_id, root.trace_id);
            assert_eq!(child.parent_id, Some(root.span_id));
            tele.trace_annotate(&child, 101, "fault", "ias:443 refused");
        }
        drop(root_guard);
        let spans = tele.traces().trace(root.trace_id);
        assert_eq!(spans.len(), 2);
        let child = spans.iter().find(|s| s.name == "attest").unwrap();
        assert_eq!(child.annotations.len(), 1);
        assert_eq!(child.annotations[0].detail, "ias:443 refused");
        // the local tracer sees the same spans (dual recording)
        assert_eq!(tele.tracer().finished().len(), 2);
    }

    #[test]
    fn unsampled_and_disabled_traces_record_nothing() {
        let tele = Telemetry::new();
        tele.set_trace_sampling(0.0);
        let (root, guard) = tele.trace_root("operator", "quiet", 0);
        assert!(root.is_valid() && !root.sampled);
        drop(guard);
        assert_eq!(tele.traces().span_count(), 0);
        // the plain tracer still recorded the span locally
        assert_eq!(tele.tracer().finished().len(), 1);

        let off = Telemetry::disabled();
        let (ctx, guard) = off.trace_root("operator", "void", 0);
        assert!(!ctx.is_valid());
        drop(guard);
        assert_eq!(off.traces().span_count(), 0);
    }

    #[test]
    fn render_exposes_drop_counters() {
        let tele = Telemetry::new();
        let text = tele.render_prometheus();
        assert!(text.contains("vnfguard_telemetry_journal_dropped_total 0"));
        assert!(text.contains("vnfguard_telemetry_spans_dropped_total 0"));
        assert!(text.contains("vnfguard_telemetry_trace_spans_dropped_total 0"));
        assert_eq!(Telemetry::disabled().render_prometheus(), "");
    }

    #[test]
    fn clones_share_state() {
        let tele = Telemetry::new();
        let other = tele.clone();
        other.counter("vnfguard_test_shared_total").inc();
        assert_eq!(
            tele.metrics().counter_value("vnfguard_test_shared_total"),
            Some(1)
        );
    }
}
