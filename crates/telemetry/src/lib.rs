//! # vnfguard-telemetry
//!
//! Zero-dependency observability substrate for the deployment: counters,
//! gauges and log-bucketed latency histograms in a [`MetricsRegistry`],
//! hierarchical spans in a [`Tracer`], and a ring-buffered structured
//! [`Journal`] of audit events — bundled behind one clonable [`Telemetry`]
//! handle that every crate in the workspace can thread through its hot
//! paths.
//!
//! Design rules:
//!
//! - **Two time bases.** Event timestamps come from the deployment's
//!   simulated clock (callers pass unix seconds), so the audit timeline is
//!   deterministic and replayable. Latency measurements use the monotonic
//!   wall clock (`std::time::Instant`) internally, because simulated time
//!   does not advance while code executes.
//! - **Cheap when off.** [`Telemetry::disabled`] returns a handle whose
//!   spans and journal writes are no-ops and whose counters are detached
//!   from any registry; the enrollment-path overhead of the enabled mode is
//!   measured by the `e10_observability` bench and must stay under 5%.
//! - **Shared by clone.** All types are `Arc`-backed; clones observe the
//!   same state, mirroring how `SimClock` and `Network` behave elsewhere
//!   in the workspace.
//!
//! Metric naming convention: `vnfguard_<crate>_<name>`, with `_total` for
//! counters and `_micros` for latency histograms (see DESIGN.md
//! §Observability).

pub mod journal;
pub mod metrics;
pub mod spans;

pub use journal::{Event, Journal};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use spans::{SpanGuard, SpanRecord, Tracer};

/// One observability handle bundling metrics, spans and the event journal.
///
/// Cloning shares the underlying state. Constructed enabled by
/// [`Telemetry::new`] (or `Default`); [`Telemetry::disabled`] yields a
/// no-op handle for overhead baselines.
#[derive(Clone)]
pub struct Telemetry {
    enabled: bool,
    metrics: MetricsRegistry,
    tracer: Tracer,
    journal: Journal,
}

impl Telemetry {
    /// An enabled telemetry bundle with default capacities.
    pub fn new() -> Telemetry {
        Telemetry {
            enabled: true,
            metrics: MetricsRegistry::default(),
            tracer: Tracer::default(),
            journal: Journal::default(),
        }
    }

    /// A disabled bundle: spans and journal writes are no-ops, counters and
    /// histograms are detached from the registry (atomic bumps on dead
    /// storage). Used to measure instrumentation overhead.
    pub fn disabled() -> Telemetry {
        Telemetry {
            enabled: false,
            ..Telemetry::new()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The metrics registry backing this handle.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span tracer backing this handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The structured event journal backing this handle.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Get-or-register a counter. Disabled handles return a detached
    /// counter that never appears in the rendered exposition.
    pub fn counter(&self, name: &str) -> Counter {
        if self.enabled {
            self.metrics.counter(name)
        } else {
            Counter::detached()
        }
    }

    /// Get-or-register a gauge (detached when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        if self.enabled {
            self.metrics.gauge(name)
        } else {
            Gauge::detached()
        }
    }

    /// Get-or-register a histogram (detached when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        if self.enabled {
            self.metrics.histogram(name)
        } else {
            Histogram::detached()
        }
    }

    /// Open a span; it closes (and records its duration) when the returned
    /// guard drops. `unix_now` stamps the span's position on the simulated
    /// timeline; the duration itself is wall-clock microseconds.
    pub fn span(&self, name: &str, unix_now: u64) -> SpanGuard {
        if self.enabled {
            self.tracer.start(name, unix_now)
        } else {
            SpanGuard::noop()
        }
    }

    /// Append a structured event to the journal; returns its sequence
    /// number (0 when disabled).
    pub fn event(&self, time: u64, kind: &str, detail: &str) -> u64 {
        if self.enabled {
            self.journal.record(time, kind, detail)
        } else {
            0
        }
    }

    /// Render every registered metric in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.metrics.render_prometheus()
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("journal_len", &self.journal.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_bundle_registers_and_renders() {
        let tele = Telemetry::new();
        tele.counter("vnfguard_test_ops_total").add(3);
        tele.histogram("vnfguard_test_latency_micros").record(100);
        tele.event(1_600_000_000, "test_event", "detail");
        let text = tele.render_prometheus();
        assert!(text.contains("vnfguard_test_ops_total 3"));
        assert!(text.contains("vnfguard_test_latency_micros_count 1"));
        assert_eq!(tele.journal().len(), 1);
    }

    #[test]
    fn disabled_bundle_is_inert() {
        let tele = Telemetry::disabled();
        tele.counter("vnfguard_test_ops_total").add(3);
        {
            let _span = tele.span("invisible", 0);
        }
        tele.event(0, "invisible", "");
        assert_eq!(tele.render_prometheus(), "");
        assert_eq!(tele.journal().len(), 0);
        assert!(tele.tracer().finished().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let tele = Telemetry::new();
        let other = tele.clone();
        other.counter("vnfguard_test_shared_total").inc();
        assert_eq!(
            tele.metrics().counter_value("vnfguard_test_shared_total"),
            Some(1)
        );
    }
}
