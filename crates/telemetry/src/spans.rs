//! Hierarchical spans: RAII-timed regions with parent/child structure.

use crate::metrics::Histogram;
use crate::trace::{TraceCollector, TraceSpan};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub id: u64,
    /// The span that was open when this one started, if any.
    pub parent: Option<u64>,
    pub name: String,
    /// Position on the simulated timeline (unix seconds), supplied by the
    /// caller at open time.
    pub started_at: u64,
    /// Wall-clock duration in microseconds.
    pub duration_micros: u64,
    /// Nesting depth at open time (0 = root).
    pub depth: usize,
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    started_at: u64,
    depth: usize,
}

struct TracerInner {
    next_id: u64,
    stack: Vec<u64>,
    open: Vec<OpenSpan>,
    finished: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

impl Default for TracerInner {
    fn default() -> TracerInner {
        TracerInner {
            next_id: 1,
            stack: Vec::new(),
            open: Vec::new(),
            finished: VecDeque::new(),
            capacity: 4096,
            dropped: 0,
        }
    }
}

/// Span collector. Spans nest along the caller's control flow: the span
/// open at `start` time becomes the parent of the new one. Finished spans
/// land in a bounded ring buffer (oldest evicted first).
///
/// Nesting tracks one logical flow — the common case in this workspace,
/// where the manager's workflow runs a step at a time. Guards dropped out
/// of LIFO order simply truncate the deeper part of the stack.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// Open a span named `name` at simulated time `unix_now`.
    pub fn start(&self, name: &str, unix_now: u64) -> SpanGuard {
        let mut inner = self.inner.lock().expect("tracer poisoned");
        let id = inner.next_id;
        inner.next_id += 1;
        let parent = inner.stack.last().copied();
        let depth = inner.stack.len();
        inner.stack.push(id);
        inner.open.push(OpenSpan {
            id,
            parent,
            name: name.to_string(),
            started_at: unix_now,
            depth,
        });
        SpanGuard {
            tracer: Some(self.clone()),
            id,
            begun: Instant::now(),
            histogram: None,
            trace: None,
        }
    }

    fn finish(&self, id: u64, duration_micros: u64) {
        let mut inner = self.inner.lock().expect("tracer poisoned");
        if let Some(pos) = inner.stack.iter().rposition(|&open| open == id) {
            inner.stack.truncate(pos);
        }
        if let Some(pos) = inner.open.iter().position(|open| open.id == id) {
            let open = inner.open.remove(pos);
            if inner.finished.len() >= inner.capacity {
                inner.finished.pop_front();
                inner.dropped += 1;
            }
            inner.finished.push_back(SpanRecord {
                id: open.id,
                parent: open.parent,
                name: open.name,
                started_at: open.started_at,
                duration_micros,
                depth: open.depth,
            });
        }
    }

    /// Completed spans, in completion order (children before parents).
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .expect("tracer poisoned")
            .finished
            .iter()
            .cloned()
            .collect()
    }

    /// Number of spans currently open.
    pub fn open_count(&self) -> usize {
        self.inner.lock().expect("tracer poisoned").open.len()
    }

    /// Number of finished spans evicted from the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("tracer poisoned").dropped
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("tracer poisoned");
        f.debug_struct("Tracer")
            .field("open", &inner.open.len())
            .field("finished", &inner.finished.len())
            .finish()
    }
}

/// The trace-side half of an open span: where and as-what to record it in
/// the [`TraceCollector`] when the guard drops.
pub(crate) struct OpenTraceSpan {
    pub collector: TraceCollector,
    pub trace_id: u128,
    pub span_id: u64,
    pub parent_id: Option<u64>,
    pub service: String,
    pub name: String,
    pub started_at: u64,
    pub offset_micros: u64,
}

/// RAII guard for an open span; records the span (and optionally a
/// histogram sample of its duration, and optionally a distributed-trace
/// span) on drop.
pub struct SpanGuard {
    tracer: Option<Tracer>,
    id: u64,
    begun: Instant,
    histogram: Option<Histogram>,
    trace: Option<OpenTraceSpan>,
}

impl SpanGuard {
    /// A guard that records nothing (disabled telemetry).
    pub fn noop() -> SpanGuard {
        SpanGuard {
            tracer: None,
            id: 0,
            begun: Instant::now(),
            histogram: None,
            trace: None,
        }
    }

    /// Also record the span's duration into `histogram` on drop.
    pub fn with_histogram(mut self, histogram: Histogram) -> SpanGuard {
        self.histogram = Some(histogram);
        self
    }

    /// Also record the span into a trace collector on drop.
    pub(crate) fn with_trace(mut self, trace: OpenTraceSpan) -> SpanGuard {
        self.trace = Some(trace);
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let micros = self.begun.elapsed().as_micros() as u64;
        if let Some(histogram) = &self.histogram {
            // A traced span leaves its trace id behind as an exemplar, so a
            // breached latency series links back to a concrete waterfall.
            match &self.trace {
                Some(trace) => histogram.record_with_exemplar(micros, trace.trace_id),
                None => histogram.record(micros),
            }
        }
        if let Some(tracer) = &self.tracer {
            tracer.finish(self.id, micros);
        }
        if let Some(trace) = self.trace.take() {
            trace.collector.record(TraceSpan {
                trace_id: trace.trace_id,
                span_id: trace.span_id,
                parent_id: trace.parent_id,
                service: trace.service,
                name: trace.name,
                started_at: trace.started_at,
                offset_micros: trace.offset_micros,
                duration_micros: micros,
                annotations: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_assigns_parents_and_depths() {
        let tracer = Tracer::default();
        {
            let _outer = tracer.start("enrollment", 100);
            {
                let _mid = tracer.start("ias_verify", 101);
                let _inner = tracer.start("signature_check", 101);
            }
            let _sibling = tracer.start("wrap_credentials", 102);
        }
        let spans = tracer.finished();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let outer = by_name("enrollment");
        let mid = by_name("ias_verify");
        let inner = by_name("signature_check");
        let sibling = by_name("wrap_credentials");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 0);
        assert_eq!(mid.parent, Some(outer.id));
        assert_eq!(mid.depth, 1);
        assert_eq!(inner.parent, Some(mid.id));
        assert_eq!(inner.depth, 2);
        // The sibling opened after the first child closed: same parent.
        assert_eq!(sibling.parent, Some(outer.id));
        assert_eq!(sibling.depth, 1);
        assert_eq!(tracer.open_count(), 0);
    }

    #[test]
    fn completion_order_is_children_first() {
        let tracer = Tracer::default();
        {
            let _outer = tracer.start("outer", 0);
            let _inner = tracer.start("inner", 0);
        }
        let names: Vec<String> = tracer.finished().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["inner", "outer"]);
    }

    #[test]
    fn span_records_into_histogram() {
        let tracer = Tracer::default();
        let histogram = Histogram::default();
        {
            let _span = tracer.start("timed", 0).with_histogram(histogram.clone());
        }
        assert_eq!(histogram.count(), 1);
    }

    #[test]
    fn noop_guard_records_nothing() {
        let tracer = Tracer::default();
        {
            let _span = SpanGuard::noop();
        }
        assert!(tracer.finished().is_empty());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let tracer = Tracer::default();
        for i in 0..5000u64 {
            let _span = tracer.start(&format!("s{i}"), i);
        }
        let spans = tracer.finished();
        assert_eq!(spans.len(), 4096);
        assert_eq!(spans.first().unwrap().name, "s904");
        assert_eq!(spans.last().unwrap().name, "s4999");
        assert_eq!(tracer.dropped(), 904);
    }
}
