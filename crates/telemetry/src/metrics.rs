//! Counters, gauges, and log-bucketed latency histograms, collected in a
//! [`MetricsRegistry`] and rendered as Prometheus text exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry (used by disabled telemetry:
    /// increments land on dead storage and are never rendered).
    pub fn detached() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge. Cloning shares the same cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets; one more holds the overflow.
pub const FINITE_BUCKETS: usize = 32;

/// How many exemplars a histogram (or a merged snapshot) retains.
pub const EXEMPLAR_CAP: usize = 8;

/// Upper bound (inclusive) of finite bucket `idx`: `2^idx`.
pub fn bucket_bound(idx: usize) -> u64 {
    1u64 << idx
}

/// A sampled observation that links a histogram bucket back to the
/// distributed trace that produced it: the operator path from "p99
/// breached" to the exact `/vm/traces/{id}` waterfall to blame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// The recorded sample (typically microseconds).
    pub value: u64,
    /// The 128-bit trace id of the request that produced the sample.
    pub trace_id: u128,
    /// Index of the log₂ bucket the sample landed in.
    pub bucket: usize,
}

impl Exemplar {
    /// Strict total order used for retention: slowest samples first, ties
    /// broken by trace id then bucket. A *total* order (no equal distinct
    /// elements survive ambiguously) is what makes top-K retention under
    /// merge associative and commutative.
    fn rank(&self) -> (u64, u128, usize) {
        (self.value, self.trace_id, self.bucket)
    }
}

/// Keep only the top-[`EXEMPLAR_CAP`] exemplars by [`Exemplar::rank`],
/// descending. Shared by live recording and snapshot merge so both sides
/// agree on which exemplars survive.
fn retain_top_exemplars(exemplars: &mut Vec<Exemplar>) {
    exemplars.sort_by_key(|e| std::cmp::Reverse(e.rank()));
    exemplars.dedup_by(|a, b| a.rank() == b.rank());
    exemplars.truncate(EXEMPLAR_CAP);
}

struct HistogramInner {
    buckets: [AtomicU64; FINITE_BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    // Only traced requests pay for this lock, and only rarely: the hot
    // untraced path stays lock-free atomics.
    exemplars: Mutex<Vec<Exemplar>>,
}

/// A log₂-bucketed histogram of `u64` samples (typically microseconds).
///
/// Finite bucket `i` holds samples in `(2^(i-1), 2^i]` (bucket 0 holds 0
/// and 1); samples above `2^31` land in the overflow bucket. Tracks exact
/// count, sum and max alongside the buckets, so `max` is precise while
/// `p50/p90/p99` are bucket-bound estimates.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                exemplars: Mutex::new(Vec::new()),
            }),
        }
    }
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(FINITE_BUCKETS)
        }
    }

    pub fn record(&self, v: u64) {
        let inner = &self.inner;
        inner.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a sample that came from a traced request, keeping its trace
    /// id as an [`Exemplar`] so the rendered series links back to the
    /// waterfall that produced it.
    pub fn record_with_exemplar(&self, v: u64, trace_id: u128) {
        self.record(v);
        let mut exemplars = self
            .inner
            .exemplars
            .lock()
            .expect("histogram exemplars poisoned");
        exemplars.push(Exemplar {
            value: v,
            trace_id,
            bucket: Self::bucket_index(v),
        });
        retain_top_exemplars(&mut exemplars);
    }

    /// The retained exemplars, slowest first.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        self.inner
            .exemplars
            .lock()
            .expect("histogram exemplars poisoned")
            .clone()
    }

    /// A point-in-time copy of the full distribution — buckets, exact
    /// aggregates, and exemplars — suitable for exact cross-node merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.bucket_counts(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            exemplars: self.exemplars(),
        }
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (finite buckets then overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimate the `q`-quantile (0 < q ≤ 1) as the upper bound of the
    /// bucket containing the target rank, clamped to the exact observed
    /// max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (idx, bucket) in self.inner.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return if idx < FINITE_BUCKETS {
                    bucket_bound(idx).min(self.max())
                } else {
                    self.max()
                };
            }
        }
        self.max()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

/// A detached copy of a [`Histogram`]'s state. Because the buckets are
/// exact log₂ counts (not sketches), merging two snapshots elementwise is
/// *exact*: the merge of N nodes' snapshots is bit-identical to the
/// histogram a single node would have produced observing all N streams.
/// Merge is associative and commutative, so fleet aggregation order never
/// changes the answer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts: [`FINITE_BUCKETS`] finite buckets then overflow.
    pub buckets: Vec<u64>,
    /// Exact total sample count.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Retained trace exemplars, slowest first (top-[`EXEMPLAR_CAP`]).
    pub exemplars: Vec<Exemplar>,
}

impl HistogramSnapshot {
    /// An empty snapshot — the identity element for [`merge`](Self::merge).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; FINITE_BUCKETS + 1],
            ..HistogramSnapshot::default()
        }
    }

    /// Fold another snapshot into this one: buckets, count and sum add;
    /// max takes the max; exemplars keep the global top-[`EXEMPLAR_CAP`]
    /// under a strict total-order rank, so an exemplar recorded on any node
    /// survives every merge order the fleet aggregator might use.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.exemplars.extend(other.exemplars.iter().copied());
        retain_top_exemplars(&mut self.exemplars);
    }

    /// Bucket-bound quantile estimate, mirroring [`Histogram::quantile`]:
    /// the upper bound of the bucket holding the target rank, clamped to
    /// the exact observed max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return if idx < FINITE_BUCKETS {
                    bucket_bound(idx).min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Compose a registry key carrying one label dimension, e.g.
/// `labeled("vnfguard_core_enrollments_total", "shard", "2")` →
/// `vnfguard_core_enrollments_total{shard="2"}`. The registry treats each
/// labeled key as its own series; [`MetricsRegistry::render_prometheus`]
/// folds every series of a family under a single `# TYPE` header and
/// merges the labels into histogram companion lines.
pub fn labeled(family: &str, key: &str, value: &str) -> String {
    format!("{family}{{{key}=\"{value}\"}}")
}

/// Split a registry key into its metric family and the label body (the
/// text between the braces), if any.
fn split_series(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(pos) => (
            &name[..pos],
            Some(name[pos + 1..].trim_end_matches('}')),
        ),
        None => (name, None),
    }
}

/// A companion series line (`_sum`, `_count`, …) for a possibly-labeled
/// histogram: the suffix attaches to the family, the labels re-attach
/// after it.
fn companion(family: &str, suffix: &str, labels: Option<&str>) -> String {
    match labels {
        Some(labels) => format!("{family}{suffix}{{{labels}}}"),
        None => format!("{family}{suffix}"),
    }
}

/// A `_bucket` line for a possibly-labeled histogram: `le` merges after
/// any existing labels, matching Prometheus exposition conventions.
fn bucket_series(family: &str, labels: Option<&str>, le: &str) -> String {
    match labels {
        Some(labels) => format!("{family}_bucket{{{labels},le=\"{le}\"}}"),
        None => format!("{family}_bucket{{le=\"{le}\"}}"),
    }
}

/// A registry of named metrics. Get-or-register by name; cloning shares
/// the registry. Rendering emits Prometheus text exposition, with
/// `_p50/_p90/_p99/_max` companion lines for each histogram.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Current value of a registered counter (None if never registered).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .counters
            .get(name)
            .map(Counter::get)
    }

    /// Snapshot of a registered histogram (None if never registered).
    pub fn histogram_snapshot(&self, name: &str) -> Option<Histogram> {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .histograms
            .get(name)
            .cloned()
    }

    /// Render every metric in Prometheus text exposition format, sorted by
    /// name. Labeled series (registered via [`labeled`] keys) share one
    /// `# TYPE` header per family. Histogram bucket lines stop at the
    /// highest occupied finite bucket (plus the mandatory `+Inf` line) to
    /// keep the surface compact; a bucket holding a retained exemplar
    /// carries it OpenMetrics-style after a `#`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        // Families can interleave with unrelated names in key order (`{`
        // sorts after `_`), so track emitted TYPE headers by family rather
        // than by adjacency.
        let mut typed = std::collections::BTreeSet::new();
        for (name, counter) in &inner.counters {
            let (family, _) = split_series(name);
            if typed.insert(family.to_string()) {
                out.push_str(&format!("# TYPE {family} counter\n"));
            }
            out.push_str(&format!("{name} {}\n", counter.get()));
        }
        for (name, gauge) in &inner.gauges {
            let (family, _) = split_series(name);
            if typed.insert(family.to_string()) {
                out.push_str(&format!("# TYPE {family} gauge\n"));
            }
            out.push_str(&format!("{name} {}\n", gauge.get()));
        }
        for (name, histogram) in &inner.histograms {
            let (family, labels) = split_series(name);
            if typed.insert(family.to_string()) {
                out.push_str(&format!("# TYPE {family} histogram\n"));
            }
            let counts = histogram.bucket_counts();
            let exemplars = histogram.exemplars();
            let last_occupied = counts[..FINITE_BUCKETS]
                .iter()
                .rposition(|&c| c > 0)
                .unwrap_or(0);
            let mut cumulative = 0u64;
            for (idx, &count) in counts.iter().take(last_occupied + 1).enumerate() {
                cumulative += count;
                out.push_str(&format!(
                    "{} {cumulative}",
                    bucket_series(family, labels, &bucket_bound(idx).to_string())
                ));
                if let Some(ex) = exemplars.iter().find(|e| e.bucket == idx) {
                    out.push_str(&format!(
                        " # {{trace_id=\"{:032x}\"}} {}",
                        ex.trace_id, ex.value
                    ));
                }
                out.push('\n');
            }
            out.push_str(&format!(
                "{} {}\n",
                bucket_series(family, labels, "+Inf"),
                histogram.count()
            ));
            out.push_str(&format!(
                "{} {}\n",
                companion(family, "_sum", labels),
                histogram.sum()
            ));
            out.push_str(&format!(
                "{} {}\n",
                companion(family, "_count", labels),
                histogram.count()
            ));
            out.push_str(&format!(
                "{} {}\n",
                companion(family, "_p50", labels),
                histogram.quantile(0.50)
            ));
            out.push_str(&format!(
                "{} {}\n",
                companion(family, "_p90", labels),
                histogram.quantile(0.90)
            ));
            out.push_str(&format!(
                "{} {}\n",
                companion(family, "_p99", labels),
                histogram.quantile(0.99)
            ));
            out.push_str(&format!(
                "{} {}\n",
                companion(family, "_max", labels),
                histogram.max()
            ));
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let registry = MetricsRegistry::default();
        let c = registry.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("c_total").get(), 5);
        let g = registry.gauge("g");
        g.set(-3);
        g.add(10);
        assert_eq!(registry.gauge("g").get(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i holds (2^(i-1), 2^i]; bucket 0 holds {0, 1}.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 10), 10);
        assert_eq!(Histogram::bucket_index((1 << 10) + 1), 11);
        assert_eq!(Histogram::bucket_index(1 << 31), 31);
        assert_eq!(Histogram::bucket_index((1u64 << 31) + 1), FINITE_BUCKETS);
        assert_eq!(Histogram::bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn histogram_exact_aggregates_and_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 6106);
        assert_eq!(h.max(), 5000);
        // p50: rank 3 of 6 → the bucket holding 3 (bound 4).
        assert_eq!(h.quantile(0.50), 4);
        // p99: rank 6 → bucket holding 5000 (bound 8192), clamped to max.
        assert_eq!(h.quantile(0.99), 5000);
        assert_eq!(h.quantile(1.0), 5000);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::default().quantile(0.99), 0);
    }

    #[test]
    fn overflow_bucket_quantile_returns_max() {
        let h = Histogram::default();
        h.record(u64::MAX / 2);
        assert_eq!(h.quantile(0.5), u64::MAX / 2);
    }

    #[test]
    fn quantile_clamped_to_observed_max() {
        let h = Histogram::default();
        h.record(5); // bucket bound 8, but max is 5
        assert_eq!(h.quantile(0.5), 5);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let registry = MetricsRegistry::default();
        registry.counter("vnfguard_x_ops_total").add(2);
        registry.gauge("vnfguard_x_depth").set(4);
        let h = registry.histogram("vnfguard_x_micros");
        h.record(3);
        h.record(300);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE vnfguard_x_ops_total counter"));
        assert!(text.contains("vnfguard_x_ops_total 2"));
        assert!(text.contains("vnfguard_x_depth 4"));
        assert!(text.contains("vnfguard_x_micros_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("vnfguard_x_micros_sum 303"));
        assert!(text.contains("vnfguard_x_micros_count 2"));
        assert!(text.contains("vnfguard_x_micros_p50 "));
        assert!(text.contains("vnfguard_x_micros_max 300"));
        // Cumulative bucket counts are monotone: the le="4" line counts the
        // sample 3, the last finite line counts both.
        assert!(text.contains("vnfguard_x_micros_bucket{le=\"4\"} 1"));
        assert!(text.contains("vnfguard_x_micros_bucket{le=\"512\"} 2"));
    }

    #[test]
    fn detached_metrics_never_render() {
        let registry = MetricsRegistry::default();
        let c = Counter::detached();
        c.add(10);
        assert_eq!(registry.render_prometheus(), "");
    }

    #[test]
    fn labeled_series_share_one_type_header() {
        let registry = MetricsRegistry::default();
        registry
            .counter(&labeled("vnfguard_x_ops_total", "shard", "0"))
            .add(2);
        registry
            .counter(&labeled("vnfguard_x_ops_total", "shard", "1"))
            .add(5);
        let text = registry.render_prometheus();
        assert_eq!(text.matches("# TYPE vnfguard_x_ops_total counter").count(), 1);
        assert!(text.contains("vnfguard_x_ops_total{shard=\"0\"} 2"));
        assert!(text.contains("vnfguard_x_ops_total{shard=\"1\"} 5"));
    }

    #[test]
    fn labeled_histogram_merges_labels_into_companion_lines() {
        let registry = MetricsRegistry::default();
        let h = registry.histogram(&labeled("vnfguard_x_micros", "shard", "2"));
        h.record(3);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE vnfguard_x_micros histogram"));
        assert!(text.contains("vnfguard_x_micros_bucket{shard=\"2\",le=\"4\"} 1"));
        assert!(text.contains("vnfguard_x_micros_bucket{shard=\"2\",le=\"+Inf\"} 1"));
        assert!(text.contains("vnfguard_x_micros_sum{shard=\"2\"} 3"));
        assert!(text.contains("vnfguard_x_micros_count{shard=\"2\"} 1"));
        assert!(text.contains("vnfguard_x_micros_max{shard=\"2\"} 3"));
    }

    #[test]
    fn exemplars_retained_slowest_first_and_rendered() {
        let h = Histogram::default();
        for v in 0..(EXEMPLAR_CAP as u64 + 4) {
            h.record_with_exemplar(v * 100, 0xAB00 + v as u128);
        }
        let exemplars = h.exemplars();
        assert_eq!(exemplars.len(), EXEMPLAR_CAP);
        // Slowest survive; the 4 fastest were evicted.
        assert_eq!(exemplars[0].value, (EXEMPLAR_CAP as u64 + 3) * 100);
        assert!(exemplars.iter().all(|e| e.value >= 400));
        let registry = MetricsRegistry::default();
        let h = registry.histogram("vnfguard_x_micros");
        h.record_with_exemplar(300, 0xDEAD);
        let text = registry.render_prometheus();
        assert!(text.contains(&format!(" # {{trace_id=\"{:032x}\"}} 300", 0xDEADu128)));
    }

    #[test]
    fn snapshot_merge_is_exact() {
        let a = Histogram::default();
        let b = Histogram::default();
        let whole = Histogram::default();
        for v in [1u64, 7, 300, 9000] {
            a.record(v);
            whole.record(v);
        }
        for v in [2u64, 300, 40_000] {
            b.record(v);
            whole.record(v);
        }
        b.record_with_exemplar(1_000_000, 0x77);
        whole.record(1_000_000);
        let mut merged = HistogramSnapshot::empty();
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(merged.buckets, whole.snapshot().buckets);
        assert_eq!(merged.count, whole.count());
        assert_eq!(merged.sum, whole.sum());
        assert_eq!(merged.max, whole.max());
        assert_eq!(merged.quantile(0.5), whole.quantile(0.5));
        assert_eq!(merged.quantile(0.99), whole.quantile(0.99));
        // The exemplar recorded on node b survives the merge.
        assert!(merged.exemplars.iter().any(|e| e.trace_id == 0x77));
    }
}
