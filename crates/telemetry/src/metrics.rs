//! Counters, gauges, and log-bucketed latency histograms, collected in a
//! [`MetricsRegistry`] and rendered as Prometheus text exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry (used by disabled telemetry:
    /// increments land on dead storage and are never rendered).
    pub fn detached() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge. Cloning shares the same cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets; one more holds the overflow.
pub const FINITE_BUCKETS: usize = 32;

/// Upper bound (inclusive) of finite bucket `idx`: `2^idx`.
pub fn bucket_bound(idx: usize) -> u64 {
    1u64 << idx
}

struct HistogramInner {
    buckets: [AtomicU64; FINITE_BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log₂-bucketed histogram of `u64` samples (typically microseconds).
///
/// Finite bucket `i` holds samples in `(2^(i-1), 2^i]` (bucket 0 holds 0
/// and 1); samples above `2^31` land in the overflow bucket. Tracks exact
/// count, sum and max alongside the buckets, so `max` is precise while
/// `p50/p90/p99` are bucket-bound estimates.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(FINITE_BUCKETS)
        }
    }

    pub fn record(&self, v: u64) {
        let inner = &self.inner;
        inner.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (finite buckets then overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimate the `q`-quantile (0 < q ≤ 1) as the upper bound of the
    /// bucket containing the target rank, clamped to the exact observed
    /// max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (idx, bucket) in self.inner.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return if idx < FINITE_BUCKETS {
                    bucket_bound(idx).min(self.max())
                } else {
                    self.max()
                };
            }
        }
        self.max()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named metrics. Get-or-register by name; cloning shares
/// the registry. Rendering emits Prometheus text exposition, with
/// `_p50/_p90/_p99/_max` companion lines for each histogram.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Current value of a registered counter (None if never registered).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .counters
            .get(name)
            .map(Counter::get)
    }

    /// Snapshot of a registered histogram (None if never registered).
    pub fn histogram_snapshot(&self, name: &str) -> Option<Histogram> {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .histograms
            .get(name)
            .cloned()
    }

    /// Render every metric in Prometheus text exposition format, sorted by
    /// name. Histogram bucket lines stop at the highest occupied finite
    /// bucket (plus the mandatory `+Inf` line) to keep the surface compact.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, counter) in &inner.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", counter.get()));
        }
        for (name, gauge) in &inner.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", gauge.get()));
        }
        for (name, histogram) in &inner.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let counts = histogram.bucket_counts();
            let last_occupied = counts[..FINITE_BUCKETS]
                .iter()
                .rposition(|&c| c > 0)
                .unwrap_or(0);
            let mut cumulative = 0u64;
            for (idx, &count) in counts.iter().take(last_occupied + 1).enumerate() {
                cumulative += count;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_bound(idx)
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {}\n",
                histogram.count()
            ));
            out.push_str(&format!("{name}_sum {}\n", histogram.sum()));
            out.push_str(&format!("{name}_count {}\n", histogram.count()));
            out.push_str(&format!("{name}_p50 {}\n", histogram.quantile(0.50)));
            out.push_str(&format!("{name}_p90 {}\n", histogram.quantile(0.90)));
            out.push_str(&format!("{name}_p99 {}\n", histogram.quantile(0.99)));
            out.push_str(&format!("{name}_max {}\n", histogram.max()));
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let registry = MetricsRegistry::default();
        let c = registry.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("c_total").get(), 5);
        let g = registry.gauge("g");
        g.set(-3);
        g.add(10);
        assert_eq!(registry.gauge("g").get(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i holds (2^(i-1), 2^i]; bucket 0 holds {0, 1}.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 10), 10);
        assert_eq!(Histogram::bucket_index((1 << 10) + 1), 11);
        assert_eq!(Histogram::bucket_index(1 << 31), 31);
        assert_eq!(Histogram::bucket_index((1u64 << 31) + 1), FINITE_BUCKETS);
        assert_eq!(Histogram::bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn histogram_exact_aggregates_and_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 6106);
        assert_eq!(h.max(), 5000);
        // p50: rank 3 of 6 → the bucket holding 3 (bound 4).
        assert_eq!(h.quantile(0.50), 4);
        // p99: rank 6 → bucket holding 5000 (bound 8192), clamped to max.
        assert_eq!(h.quantile(0.99), 5000);
        assert_eq!(h.quantile(1.0), 5000);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::default().quantile(0.99), 0);
    }

    #[test]
    fn overflow_bucket_quantile_returns_max() {
        let h = Histogram::default();
        h.record(u64::MAX / 2);
        assert_eq!(h.quantile(0.5), u64::MAX / 2);
    }

    #[test]
    fn quantile_clamped_to_observed_max() {
        let h = Histogram::default();
        h.record(5); // bucket bound 8, but max is 5
        assert_eq!(h.quantile(0.5), 5);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let registry = MetricsRegistry::default();
        registry.counter("vnfguard_x_ops_total").add(2);
        registry.gauge("vnfguard_x_depth").set(4);
        let h = registry.histogram("vnfguard_x_micros");
        h.record(3);
        h.record(300);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE vnfguard_x_ops_total counter"));
        assert!(text.contains("vnfguard_x_ops_total 2"));
        assert!(text.contains("vnfguard_x_depth 4"));
        assert!(text.contains("vnfguard_x_micros_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("vnfguard_x_micros_sum 303"));
        assert!(text.contains("vnfguard_x_micros_count 2"));
        assert!(text.contains("vnfguard_x_micros_p50 "));
        assert!(text.contains("vnfguard_x_micros_max 300"));
        // Cumulative bucket counts are monotone: the le="4" line counts the
        // sample 3, the last finite line counts both.
        assert!(text.contains("vnfguard_x_micros_bucket{le=\"4\"} 1"));
        assert!(text.contains("vnfguard_x_micros_bucket{le=\"512\"} 2"));
    }

    #[test]
    fn detached_metrics_never_render() {
        let registry = MetricsRegistry::default();
        let c = Counter::detached();
        c.add(10);
        assert_eq!(registry.render_prometheus(), "");
    }
}
